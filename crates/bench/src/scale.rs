//! Problem scales for the benchmark harness.

use qdn_net::NetworkConfig;
use qdn_sim::engine::SimConfig;
use qdn_sim::trial::TrialConfig;

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's configuration: 5 trials × 200 slots on the 20-node
    /// Waxman topology.
    Paper,
    /// A scaled-down configuration for CI and Criterion timing loops:
    /// 2 trials × 60 slots. The *shape* conclusions (who wins, directions
    /// of trends) already hold at this size; absolute numbers are noisier.
    Quick,
    /// The stress scale past the paper's setup: a 50-node Waxman network
    /// with up to 25 concurrent SD pairs (2 trials × 60 slots, like
    /// `Quick`, so sweeps stay benchable). Exercised by the
    /// `profile_eval_wax50` bench rows and the Fig. 6 large point.
    Large,
}

impl Scale {
    /// Trials per data point.
    pub fn trials(self) -> usize {
        match self {
            Scale::Paper => 5,
            Scale::Quick | Scale::Large => 2,
        }
    }

    /// Slots per trial.
    pub fn horizon(self) -> u64 {
        match self {
            Scale::Paper => 200,
            Scale::Quick | Scale::Large => 60,
        }
    }

    /// Nodes of this scale's Waxman topology.
    pub fn nodes(self) -> usize {
        match self {
            Scale::Paper | Scale::Quick => 20,
            Scale::Large => 50,
        }
    }

    /// Maximum concurrent SD pairs this scale is meant to stress (the
    /// paper evaluates up to 10; `Large` pushes to 25).
    pub fn max_pairs(self) -> usize {
        match self {
            Scale::Paper | Scale::Quick => 10,
            Scale::Large => 25,
        }
    }

    /// The paper's network configuration at this scale's node count
    /// (Waxman density recalibrated to average degree ≈ 4).
    pub fn network_config(self) -> NetworkConfig {
        NetworkConfig::paper_default().with_nodes(self.nodes())
    }

    /// The corresponding trial configuration (fixed base seed so the
    /// harness is reproducible run-to-run).
    pub fn trial_config(self) -> TrialConfig {
        TrialConfig {
            trials: self.trials(),
            base_seed: 0x0DD5_EED5,
            threads: 0,
            sim: SimConfig {
                horizon: self.horizon(),
                realize_outcomes: true,
            },
        }
    }

    /// Scales a total budget to the horizon so `C/T` stays at the paper's
    /// 25 units/slot when the horizon shrinks.
    pub fn scaled_budget(self, paper_budget: f64) -> f64 {
        paper_budget * self.horizon() as f64 / 200.0
    }

    /// Parses `--paper` / `--quick` / `--large` style CLI arguments
    /// (defaults to `Paper` for binaries).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else if std::env::args().any(|a| a == "--large") {
            Scale::Large
        } else {
            Scale::Paper
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_evaluation_setup() {
        assert_eq!(Scale::Paper.trials(), 5);
        assert_eq!(Scale::Paper.horizon(), 200);
        assert_eq!(Scale::Paper.nodes(), 20);
        assert_eq!(Scale::Paper.max_pairs(), 10);
        let tc = Scale::Paper.trial_config();
        assert_eq!(tc.sim.horizon, 200);
    }

    #[test]
    fn budget_scaling_keeps_allowance() {
        let b = Scale::Quick.scaled_budget(5000.0);
        assert!((b / Scale::Quick.horizon() as f64 - 25.0).abs() < 1e-9);
        assert_eq!(Scale::Paper.scaled_budget(5000.0), 5000.0);
    }

    #[test]
    fn large_scale_is_50_nodes_25_pairs() {
        assert_eq!(Scale::Large.nodes(), 50);
        assert_eq!(Scale::Large.max_pairs(), 25);
        assert_eq!(Scale::Large.network_config().topology.node_count(), 50);
        // Bench-friendly trial shape, like Quick.
        assert_eq!(Scale::Large.trials(), Scale::Quick.trials());
        assert_eq!(Scale::Large.horizon(), Scale::Quick.horizon());
    }
}
