//! Problem scales for the benchmark harness.

use qdn_sim::engine::SimConfig;
use qdn_sim::trial::TrialConfig;

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's configuration: 5 trials × 200 slots.
    Paper,
    /// A scaled-down configuration for CI and Criterion timing loops:
    /// 2 trials × 60 slots. The *shape* conclusions (who wins, directions
    /// of trends) already hold at this size; absolute numbers are noisier.
    Quick,
}

impl Scale {
    /// Trials per data point.
    pub fn trials(self) -> usize {
        match self {
            Scale::Paper => 5,
            Scale::Quick => 2,
        }
    }

    /// Slots per trial.
    pub fn horizon(self) -> u64 {
        match self {
            Scale::Paper => 200,
            Scale::Quick => 60,
        }
    }

    /// The corresponding trial configuration (fixed base seed so the
    /// harness is reproducible run-to-run).
    pub fn trial_config(self) -> TrialConfig {
        TrialConfig {
            trials: self.trials(),
            base_seed: 0x0DD5_EED5,
            sim: SimConfig {
                horizon: self.horizon(),
                realize_outcomes: true,
            },
        }
    }

    /// Scales a total budget to the horizon so `C/T` stays at the paper's
    /// 25 units/slot when the horizon shrinks.
    pub fn scaled_budget(self, paper_budget: f64) -> f64 {
        paper_budget * self.horizon() as f64 / 200.0
    }

    /// Parses `--paper` / `--quick` style CLI arguments (defaults to
    /// `Paper` for binaries).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_evaluation_setup() {
        assert_eq!(Scale::Paper.trials(), 5);
        assert_eq!(Scale::Paper.horizon(), 200);
        let tc = Scale::Paper.trial_config();
        assert_eq!(tc.sim.horizon, 200);
    }

    #[test]
    fn budget_scaling_keeps_allowance() {
        let b = Scale::Quick.scaled_budget(5000.0);
        assert!((b / Scale::Quick.horizon() as f64 - 25.0).abs() < 1e-9);
        assert_eq!(Scale::Paper.scaled_budget(5000.0), 5000.0);
    }
}
