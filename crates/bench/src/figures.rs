//! Experiment builders — one per paper figure plus the ablations.

use qdn_core::allocation::AllocationMethod;
use qdn_core::baselines::{BudgetSplit, MyopicConfig};
use qdn_core::oscar::OscarConfig;
use qdn_core::profile_eval::EvalOptions;
use qdn_core::route_selection::{GibbsConfig, RouteSelector};
use qdn_net::config::TopologyConfig;
use qdn_net::dynamics::DynamicsConfig;
use qdn_net::workload::WorkloadConfig;
use qdn_net::NetworkConfig;
use qdn_sim::experiment::{Experiment, PolicySpec};
use qdn_sim::stats::Histogram;

use crate::scale::Scale;

/// The paper's default total budget.
pub const PAPER_BUDGET: f64 = 5000.0;

/// OSCAR at this scale with paper parameters (budget pro-rated so the
/// per-slot allowance stays 25).
pub fn oscar_config(scale: Scale) -> OscarConfig {
    let mut cfg = OscarConfig::paper_default();
    cfg.horizon = scale.horizon();
    cfg.total_budget = scale.scaled_budget(PAPER_BUDGET);
    cfg
}

/// MF/MA at this scale with paper parameters.
pub fn myopic_config(scale: Scale, split: BudgetSplit) -> MyopicConfig {
    let mut cfg = MyopicConfig::paper_default(split);
    cfg.horizon = scale.horizon();
    cfg.total_budget = scale.scaled_budget(PAPER_BUDGET);
    cfg
}

/// The paper's three policies (OSCAR, MF, MA) at this scale.
pub fn paper_policies(scale: Scale) -> Vec<PolicySpec> {
    vec![
        PolicySpec::Oscar(oscar_config(scale)),
        PolicySpec::Myopic(myopic_config(scale, BudgetSplit::Fixed)),
        PolicySpec::Myopic(myopic_config(scale, BudgetSplit::Adaptive)),
    ]
}

fn base_experiment(name: &str, scale: Scale, policies: Vec<PolicySpec>) -> Experiment {
    let mut e = Experiment::paper_default(name);
    e.trials = scale.trial_config();
    e.policies = policies;
    e
}

// ---------------------------------------------------------------------------
// Fig. 3 — time-evolving performance
// ---------------------------------------------------------------------------

/// One policy's trial-averaged time series.
#[derive(Debug, Clone)]
pub struct PolicySeries {
    /// Policy name.
    pub policy: String,
    /// Running average utility (Fig. 3a).
    pub avg_utility: Vec<f64>,
    /// Running average EC success probability (Fig. 3b).
    pub avg_success: Vec<f64>,
    /// Cumulative qubit usage (Fig. 3c).
    pub cumulative_cost: Vec<f64>,
}

/// Output of the Fig. 3 experiment.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// The budget `C` (the dashed line of Fig. 3c).
    pub budget: f64,
    /// One series per policy (OSCAR, MF, MA).
    pub series: Vec<PolicySeries>,
}

/// Runs the Fig. 3 experiment: OSCAR vs MF vs MA over the horizon.
pub fn fig3(scale: Scale) -> Fig3 {
    let results = base_experiment("fig3", scale, paper_policies(scale)).run();
    let series = results
        .runs
        .iter()
        .map(|p| PolicySeries {
            policy: p.policy.clone(),
            avg_utility: p.mean_series_of(|r| r.running_avg_utility()),
            avg_success: p.mean_series_of(|r| r.running_avg_success()),
            cumulative_cost: p
                .mean_series_of(|r| r.cumulative_cost().iter().map(|&c| c as f64).collect()),
        })
        .collect();
    Fig3 {
        budget: scale.scaled_budget(PAPER_BUDGET),
        series,
    }
}

impl Fig3 {
    /// Final value of a policy's success series.
    pub fn final_success(&self, policy: &str) -> f64 {
        self.series
            .iter()
            .find(|s| s.policy == policy)
            .and_then(|s| s.avg_success.last().copied())
            .unwrap_or(0.0)
    }

    /// Final cumulative usage of a policy.
    pub fn final_usage(&self, policy: &str) -> f64 {
        self.series
            .iter()
            .find(|s| s.policy == policy)
            .and_then(|s| s.cumulative_cost.last().copied())
            .unwrap_or(0.0)
    }

    /// Checks the paper's qualitative claims: OSCAR's success beats both
    /// baselines, MF under-spends, and OSCAR's spending is within 20% of
    /// the budget.
    pub fn shape_holds(&self) -> Result<(), String> {
        let oscar = self.final_success("OSCAR");
        let mf = self.final_success("MF");
        let ma = self.final_success("MA");
        if oscar <= mf {
            return Err(format!("OSCAR success {oscar:.4} <= MF {mf:.4}"));
        }
        if oscar <= ma {
            return Err(format!("OSCAR success {oscar:.4} <= MA {ma:.4}"));
        }
        let mf_usage = self.final_usage("MF");
        if mf_usage >= self.budget {
            return Err(format!(
                "MF usage {mf_usage:.0} should under-spend {}",
                self.budget
            ));
        }
        let oscar_usage = self.final_usage("OSCAR");
        if (oscar_usage - self.budget).abs() > 0.2 * self.budget {
            return Err(format!(
                "OSCAR usage {oscar_usage:.0} not within 20% of budget {}",
                self.budget
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fig. 4 — success-rate distribution (fairness)
// ---------------------------------------------------------------------------

/// One policy's success-probability distribution.
#[derive(Debug, Clone)]
pub struct DistributionRow {
    /// Policy name.
    pub policy: String,
    /// Fraction of requests per bin over `[0, 1]`.
    pub fractions: Vec<f64>,
    /// Jain fairness index of the per-request success probabilities.
    pub jain: f64,
    /// Mean success probability.
    pub mean: f64,
}

/// Output of the Fig. 4 experiment.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Bin centers over `[0, 1]`.
    pub bin_centers: Vec<f64>,
    /// One distribution per policy.
    pub rows: Vec<DistributionRow>,
}

/// Number of histogram bins used for Fig. 4.
pub const FIG4_BINS: usize = 10;

/// Runs the Fig. 4 experiment: per-pair success distribution.
pub fn fig4(scale: Scale) -> Fig4 {
    let results = base_experiment("fig4", scale, paper_policies(scale)).run();
    let mut bin_centers = Vec::new();
    let rows = results
        .runs
        .iter()
        .map(|p| {
            let probs = p.pooled_success_probs();
            let hist = Histogram::new(&probs, 0.0, 1.0, FIG4_BINS);
            if bin_centers.is_empty() {
                bin_centers = hist.bars().iter().map(|&(c, _)| c).collect();
            }
            let n = probs.len().max(1) as f64;
            let mean = probs.iter().sum::<f64>() / n;
            let jain = {
                let sum: f64 = probs.iter().sum();
                let sum_sq: f64 = probs.iter().map(|x| x * x).sum();
                if sum_sq == 0.0 {
                    1.0
                } else {
                    sum * sum / (probs.len() as f64 * sum_sq)
                }
            };
            DistributionRow {
                policy: p.policy.clone(),
                fractions: hist.fractions(),
                jain,
                mean,
            }
        })
        .collect();
    Fig4 { bin_centers, rows }
}

impl Fig4 {
    /// OSCAR's distribution should be at least as fair (Jain) as both
    /// baselines' and have the highest mean.
    pub fn shape_holds(&self) -> Result<(), String> {
        let get = |name: &str| {
            self.rows
                .iter()
                .find(|r| r.policy == name)
                .ok_or_else(|| format!("missing policy {name}"))
        };
        let oscar = get("OSCAR")?;
        let mf = get("MF")?;
        let ma = get("MA")?;
        if oscar.mean <= mf.mean || oscar.mean <= ma.mean {
            return Err(format!(
                "OSCAR mean {:.4} should exceed MF {:.4} and MA {:.4}",
                oscar.mean, mf.mean, ma.mean
            ));
        }
        if oscar.jain + 1e-6 < mf.jain.min(ma.jain) {
            return Err(format!(
                "OSCAR Jain {:.4} should not be worse than both baselines ({:.4}, {:.4})",
                oscar.jain, mf.jain, ma.jain
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sweep scaffolding shared by Figs. 5–8 and the ablations
// ---------------------------------------------------------------------------

/// One (x, per-policy outcomes) row of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The sweep coordinate (budget, network size, V, q0, γ, …).
    pub x: f64,
    /// Per-policy `(name, avg_success, avg_utility, total_usage)`.
    pub outcomes: Vec<SweepOutcome>,
}

/// One policy's outcome at one sweep point.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Policy (or variant) name.
    pub policy: String,
    /// Mean per-request success probability.
    pub avg_success: f64,
    /// Mean per-slot utility.
    pub avg_utility: f64,
    /// Mean total qubit usage over the run.
    pub total_usage: f64,
}

fn run_sweep_point(name: &str, scale: Scale, x: f64, experiment: Experiment) -> SweepPoint {
    let _ = (name, scale);
    let results = experiment.run();
    let outcomes = results
        .runs
        .iter()
        .map(|p| SweepOutcome {
            policy: p.policy.clone(),
            avg_success: p.mean_of(|r| r.avg_success()),
            avg_utility: p.mean_of(|r| r.avg_utility()),
            total_usage: p.mean_of(|r| r.total_cost() as f64),
        })
        .collect();
    SweepPoint { x, outcomes }
}

impl SweepPoint {
    /// The outcome of a given policy at this point.
    pub fn outcome(&self, policy: &str) -> Option<&SweepOutcome> {
        self.outcomes.iter().find(|o| o.policy == policy)
    }
}

// ---------------------------------------------------------------------------
// Fig. 5 — impact of budget
// ---------------------------------------------------------------------------

/// The budget values swept by Fig. 5 (paper scale; pro-rated for Quick).
pub const FIG5_BUDGETS: [f64; 6] = [3000.0, 4000.0, 5000.0, 6000.0, 7000.0, 8000.0];

/// Runs the Fig. 5 sweep: success rate and usage vs budget `C`.
pub fn fig5(scale: Scale) -> Vec<SweepPoint> {
    FIG5_BUDGETS
        .iter()
        .map(|&budget| {
            let scaled = scale.scaled_budget(budget);
            let policies = vec![
                PolicySpec::Oscar(oscar_config(scale).with_budget(scaled)),
                PolicySpec::Myopic(myopic_config(scale, BudgetSplit::Fixed).with_budget(scaled)),
                PolicySpec::Myopic(myopic_config(scale, BudgetSplit::Adaptive).with_budget(scaled)),
            ];
            run_sweep_point(
                "fig5",
                scale,
                budget,
                base_experiment("fig5", scale, policies),
            )
        })
        .collect()
}

/// Fig. 5 qualitative checks: success grows with the budget for every
/// policy; OSCAR dominates at every budget.
pub fn fig5_shape_holds(points: &[SweepPoint]) -> Result<(), String> {
    for w in points.windows(2) {
        for policy in ["OSCAR", "MF", "MA"] {
            let lo = w[0].outcome(policy).unwrap().avg_success;
            let hi = w[1].outcome(policy).unwrap().avg_success;
            if hi + 0.03 < lo {
                return Err(format!(
                    "{policy} success should not drop with budget: {lo:.4} -> {hi:.4}"
                ));
            }
        }
    }
    for p in points {
        let oscar = p.outcome("OSCAR").unwrap().avg_success;
        let mf = p.outcome("MF").unwrap().avg_success;
        let ma = p.outcome("MA").unwrap().avg_success;
        if oscar + 0.01 < mf || oscar + 0.01 < ma {
            return Err(format!(
                "at C={}: OSCAR {oscar:.4} should dominate MF {mf:.4} / MA {ma:.4}",
                p.x
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 6 — impact of network size
// ---------------------------------------------------------------------------

/// Node counts swept by Fig. 6.
pub const FIG6_SIZES: [usize; 5] = [10, 15, 20, 25, 30];

/// Runs the Fig. 6 sweep: success rate and usage vs network size, with
/// the Waxman density recalibrated to average degree ≈ 4 per size.
pub fn fig6(scale: Scale) -> Vec<SweepPoint> {
    FIG6_SIZES
        .iter()
        .map(|&nodes| {
            let mut e = base_experiment("fig6", scale, paper_policies(scale));
            e.network = NetworkConfig::paper_default().with_nodes(nodes);
            run_sweep_point("fig6", scale, nodes as f64, e)
        })
        .collect()
}

/// One extra Fig. 6 sweep point at [`Scale::Large`]'s shape — a 50-node
/// Waxman network under a 25-pair workload — extending the paper's
/// network-size sweep past its 30-node top end. `scale` controls the
/// trial shape (trials × horizon) as everywhere else; the network and
/// workload always come from `Scale::Large`, so the point is comparable
/// across quick and paper runs.
pub fn fig6_large_point(scale: Scale) -> SweepPoint {
    use qdn_net::workload::WorkloadConfig;
    let mut e = base_experiment("fig6_large", scale, paper_policies(scale));
    e.network = Scale::Large.network_config();
    e.workload = WorkloadConfig::Uniform {
        min_pairs: 1,
        max_pairs: Scale::Large.max_pairs(),
    };
    run_sweep_point("fig6_large", scale, Scale::Large.nodes() as f64, e)
}

/// Fig. 6 qualitative checks: success degrades with size; OSCAR
/// dominates at every size.
pub fn fig6_shape_holds(points: &[SweepPoint]) -> Result<(), String> {
    let first = points.first().ok_or("empty sweep")?;
    let last = points.last().ok_or("empty sweep")?;
    for policy in ["OSCAR", "MF", "MA"] {
        let small = first.outcome(policy).unwrap().avg_success;
        let large = last.outcome(policy).unwrap().avg_success;
        if large > small + 0.02 {
            return Err(format!(
                "{policy}: success should fall with size ({small:.4} @ {} vs {large:.4} @ {})",
                first.x, last.x
            ));
        }
    }
    for p in points {
        let oscar = p.outcome("OSCAR").unwrap().avg_success;
        let mf = p.outcome("MF").unwrap().avg_success;
        let ma = p.outcome("MA").unwrap().avg_success;
        if oscar + 0.02 < mf.max(ma) {
            return Err(format!(
                "at n={}: OSCAR {oscar:.4} should dominate MF {mf:.4} / MA {ma:.4}",
                p.x
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 7 — impact of the Lyapunov weight V
// ---------------------------------------------------------------------------

/// V values swept by Fig. 7.
pub const FIG7_VS: [f64; 5] = [500.0, 1000.0, 2500.0, 5000.0, 10000.0];

/// Runs the Fig. 7 sweep: OSCAR's utility and usage vs `V`.
pub fn fig7(scale: Scale) -> Vec<SweepPoint> {
    FIG7_VS
        .iter()
        .map(|&v| {
            let policies = vec![PolicySpec::Oscar(oscar_config(scale).with_v(v))];
            run_sweep_point("fig7", scale, v, base_experiment("fig7", scale, policies))
        })
        .collect()
}

/// Fig. 7 qualitative checks: utility rises with `V` and so does usage
/// (the budget-violation trade-off of Theorem 1).
pub fn fig7_shape_holds(points: &[SweepPoint]) -> Result<(), String> {
    let first = points.first().ok_or("empty sweep")?;
    let last = points.last().ok_or("empty sweep")?;
    let u_first = first.outcomes[0].avg_utility;
    let u_last = last.outcomes[0].avg_utility;
    if u_last + 1e-9 < u_first {
        return Err(format!(
            "utility should rise with V: {u_first:.4} @ V={} vs {u_last:.4} @ V={}",
            first.x, last.x
        ));
    }
    let c_first = first.outcomes[0].total_usage;
    let c_last = last.outcomes[0].total_usage;
    if c_last + 1e-9 < c_first {
        return Err(format!(
            "usage should rise with V: {c_first:.0} @ V={} vs {c_last:.0} @ V={}",
            first.x, last.x
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fig. 8 — impact of the initial virtual queue q0
// ---------------------------------------------------------------------------

/// q0 values swept by Fig. 8.
pub const FIG8_Q0S: [f64; 5] = [0.0, 10.0, 50.0, 100.0, 200.0];

/// Runs the Fig. 8 sweep: OSCAR's utility and usage vs `q0`.
pub fn fig8(scale: Scale) -> Vec<SweepPoint> {
    FIG8_Q0S
        .iter()
        .map(|&q0| {
            let policies = vec![PolicySpec::Oscar(oscar_config(scale).with_q0(q0))];
            run_sweep_point("fig8", scale, q0, base_experiment("fig8", scale, policies))
        })
        .collect()
}

/// Fig. 8 qualitative checks: larger `q0` never increases usage, and a
/// small `q0` keeps utility within a few percent of `q0 = 0`.
pub fn fig8_shape_holds(points: &[SweepPoint]) -> Result<(), String> {
    for w in points.windows(2) {
        let lo = w[0].outcomes[0].total_usage;
        let hi = w[1].outcomes[0].total_usage;
        if hi > lo * 1.05 + 1.0 {
            return Err(format!(
                "usage should fall with q0: {lo:.0} @ q0={} vs {hi:.0} @ q0={}",
                w[0].x, w[1].x
            ));
        }
    }
    let at0 = points
        .iter()
        .find(|p| p.x == 0.0)
        .ok_or("missing q0=0 point")?;
    let at10 = points
        .iter()
        .find(|p| p.x == 10.0)
        .ok_or("missing q0=10 point")?;
    let drop = (at0.outcomes[0].avg_utility - at10.outcomes[0].avg_utility).abs();
    let magnitude = at0.outcomes[0].avg_utility.abs().max(1e-9);
    if drop / magnitude > 0.15 {
        return Err(format!(
            "small q0 should keep utility nearly stable (relative change {:.3})",
            drop / magnitude
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §3)
// ---------------------------------------------------------------------------

/// Route-selection ablation: OSCAR with different selectors.
pub fn ablation_route_selection(scale: Scale) -> Vec<SweepPoint> {
    let selectors: Vec<(&str, RouteSelector)> = vec![
        ("gibbs", RouteSelector::Gibbs(GibbsConfig::paper_default())),
        (
            "gibbs-parallel",
            RouteSelector::Gibbs(GibbsConfig {
                parallel_isolated: true,
                ..GibbsConfig::paper_default()
            }),
        ),
        (
            "greedy-local",
            RouteSelector::GreedyLocal {
                max_rounds: 4,
                evaluator: EvalOptions::default(),
            },
        ),
        ("first-route", RouteSelector::First),
        ("random", RouteSelector::Random),
    ];
    selectors
        .into_iter()
        .enumerate()
        .map(|(i, (_, selector))| {
            let mut cfg = oscar_config(scale);
            cfg.selector = selector;
            let policies = vec![PolicySpec::Oscar(cfg)];
            let mut point = run_sweep_point(
                "ablation_route_selection",
                scale,
                i as f64,
                base_experiment("ablation_route_selection", scale, policies),
            );
            point.outcomes[0].policy = ABLATION_SELECTOR_LABELS[i].to_string();
            point
        })
        .collect()
}

/// Labels of [`ablation_route_selection`] rows, in order.
pub const ABLATION_SELECTOR_LABELS: [&str; 5] = [
    "gibbs",
    "gibbs-parallel",
    "greedy-local",
    "first-route",
    "random",
];

/// Gibbs temperature ablation: OSCAR with different γ (Eq. 15).
pub fn ablation_gamma(scale: Scale) -> Vec<SweepPoint> {
    ABLATION_GAMMAS
        .iter()
        .map(|&gamma| {
            let mut cfg = oscar_config(scale);
            cfg.selector = RouteSelector::Gibbs(GibbsConfig {
                gamma,
                ..GibbsConfig::paper_default()
            });
            let policies = vec![PolicySpec::Oscar(cfg)];
            run_sweep_point(
                "ablation_gamma",
                scale,
                gamma,
                base_experiment("ablation_gamma", scale, policies),
            )
        })
        .collect()
}

/// γ values swept by [`ablation_gamma`].
pub const ABLATION_GAMMAS: [f64; 5] = [10.0, 100.0, 500.0, 2000.0, 10000.0];

/// Allocation-method ablation: Algorithm 2 vs greedy vs minimal.
pub fn ablation_allocation(scale: Scale) -> Vec<SweepPoint> {
    let methods = [
        AllocationMethod::relax_and_round(),
        AllocationMethod::Greedy,
        AllocationMethod::Minimal,
    ];
    methods
        .iter()
        .enumerate()
        .map(|(i, method)| {
            let mut cfg = oscar_config(scale);
            cfg.allocation = *method;
            let policies = vec![PolicySpec::Oscar(cfg)];
            let mut point = run_sweep_point(
                "ablation_allocation",
                scale,
                i as f64,
                base_experiment("ablation_allocation", scale, policies),
            );
            point.outcomes[0].policy = method.label().to_string();
            point
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Extension experiments (beyond the paper's evaluation; DESIGN.md §3)
// ---------------------------------------------------------------------------

/// Swap success probabilities swept by [`extension_swap`].
pub const EXT_SWAP_SUCCESSES: [f64; 5] = [0.80, 0.90, 0.95, 0.98, 1.00];

/// Imperfect-swapping extension: the paper assumes swap success ≈ 1 but
/// notes (§II-4, §III-C) that a swap failure probability "can also be
/// considered as part of the overall failure probability … incorporating
/// a product term in Equation 2". Our link model folds exactly that term
/// in; this sweep quantifies how the three policies degrade as swapping
/// becomes lossy.
pub fn extension_swap(scale: Scale) -> Vec<SweepPoint> {
    EXT_SWAP_SUCCESSES
        .iter()
        .map(|&q| {
            let mut e = base_experiment("ext_swap", scale, paper_policies(scale));
            e.network = NetworkConfig {
                swap_success: q,
                ..NetworkConfig::paper_default()
            };
            run_sweep_point("ext_swap", scale, q, e)
        })
        .collect()
}

/// Extension-swap qualitative checks: success improves with swap
/// reliability for every policy, and OSCAR dominates at every point.
pub fn extension_swap_shape_holds(points: &[SweepPoint]) -> Result<(), String> {
    let first = points.first().ok_or("empty sweep")?;
    let last = points.last().ok_or("empty sweep")?;
    for policy in ["OSCAR", "MF", "MA"] {
        let lossy = first.outcome(policy).unwrap().avg_success;
        let perfect = last.outcome(policy).unwrap().avg_success;
        if perfect + 0.01 < lossy {
            return Err(format!(
                "{policy}: success should rise with swap reliability \
                 ({lossy:.4} @ q={} vs {perfect:.4} @ q={})",
                first.x, last.x
            ));
        }
    }
    for p in points {
        let oscar = p.outcome("OSCAR").unwrap().avg_success;
        let mf = p.outcome("MF").unwrap().avg_success;
        let ma = p.outcome("MA").unwrap().avg_success;
        if oscar + 0.02 < mf.max(ma) {
            return Err(format!(
                "at q={}: OSCAR {oscar:.4} should dominate MF {mf:.4} / MA {ma:.4}",
                p.x
            ));
        }
    }
    Ok(())
}

/// Labels of the [`extension_dynamics`] rows, in sweep order.
pub const EXT_DYNAMICS_LABELS: [&str; 3] = ["static", "uniform", "markov"];

/// Time-varying-resource extension: the paper's model section lets
/// `Q_v^t` and `W_e^t` vary with exogenous occupancy, but its evaluation
/// draws them once. This experiment runs the three policies under the
/// static draw, i.i.d. uniform occupancy (up to 40% of each capacity
/// held by other users per slot), and a bursty Markov on/off occupancy,
/// verifying OSCAR's advantage survives genuine resource dynamics.
pub fn extension_dynamics(scale: Scale) -> Vec<SweepPoint> {
    let models: [DynamicsConfig; 3] = [
        DynamicsConfig::Static,
        DynamicsConfig::Uniform {
            max_occupied_fraction: 0.4,
        },
        DynamicsConfig::Markov {
            p_busy: 0.2,
            p_free: 0.5,
            busy_fraction: 0.5,
        },
    ];
    models
        .into_iter()
        .enumerate()
        .map(|(i, dynamics)| {
            let mut e = base_experiment("ext_dynamics", scale, paper_policies(scale));
            e.dynamics = dynamics;
            run_sweep_point("ext_dynamics", scale, i as f64, e)
        })
        .collect()
}

/// Extension-dynamics qualitative checks: OSCAR dominates the baselines
/// under every occupancy model, and contention does not *raise* success
/// relative to the static environment.
pub fn extension_dynamics_shape_holds(points: &[SweepPoint]) -> Result<(), String> {
    if points.len() != EXT_DYNAMICS_LABELS.len() {
        return Err(format!("expected {} points", EXT_DYNAMICS_LABELS.len()));
    }
    for (p, label) in points.iter().zip(EXT_DYNAMICS_LABELS) {
        let oscar = p.outcome("OSCAR").unwrap().avg_success;
        let mf = p.outcome("MF").unwrap().avg_success;
        let ma = p.outcome("MA").unwrap().avg_success;
        if oscar + 0.02 < mf.max(ma) {
            return Err(format!(
                "{label}: OSCAR {oscar:.4} should dominate MF {mf:.4} / MA {ma:.4}"
            ));
        }
    }
    let static_oscar = points[0].outcome("OSCAR").unwrap().avg_success;
    for (p, label) in points.iter().zip(EXT_DYNAMICS_LABELS).skip(1) {
        let contended = p.outcome("OSCAR").unwrap().avg_success;
        if contended > static_oscar + 0.03 {
            return Err(format!(
                "{label}: occupied resources should not beat the static draw \
                 ({contended:.4} vs {static_oscar:.4})"
            ));
        }
    }
    Ok(())
}

/// Per-pair request multiplicities swept by [`extension_multi_ec`].
pub const EXT_MULTI_EC_COUNTS: [usize; 3] = [1, 2, 3];

/// Multi-EC extension (paper §III-C): each SD pair issues up to `k` EC
/// requests per slot, modelled as repeated pairs. With the budget held
/// fixed, heavier request load must spread the same qubits thinner, so
/// success falls with `k` while OSCAR keeps its lead.
pub fn extension_multi_ec(scale: Scale) -> Vec<SweepPoint> {
    EXT_MULTI_EC_COUNTS
        .iter()
        .map(|&k| {
            let mut e = base_experiment("ext_multi_ec", scale, paper_policies(scale));
            e.workload = WorkloadConfig::MultiEc {
                base: Box::new(WorkloadConfig::paper_default()),
                max_requests_per_pair: k,
            };
            run_sweep_point("ext_multi_ec", scale, k as f64, e)
        })
        .collect()
}

/// Extension-multi-EC qualitative checks: success falls as the per-pair
/// request multiplicity grows; OSCAR dominates at every load.
pub fn extension_multi_ec_shape_holds(points: &[SweepPoint]) -> Result<(), String> {
    let first = points.first().ok_or("empty sweep")?;
    let last = points.last().ok_or("empty sweep")?;
    for policy in ["OSCAR", "MF", "MA"] {
        let light = first.outcome(policy).unwrap().avg_success;
        let heavy = last.outcome(policy).unwrap().avg_success;
        if heavy > light + 0.02 {
            return Err(format!(
                "{policy}: success should fall with request multiplicity \
                 ({light:.4} @ k={} vs {heavy:.4} @ k={})",
                first.x, last.x
            ));
        }
    }
    for p in points {
        let oscar = p.outcome("OSCAR").unwrap().avg_success;
        let mf = p.outcome("MF").unwrap().avg_success;
        let ma = p.outcome("MA").unwrap().avg_success;
        if oscar + 0.02 < mf.max(ma) {
            return Err(format!(
                "at k={}: OSCAR {oscar:.4} should dominate MF {mf:.4} / MA {ma:.4}",
                p.x
            ));
        }
    }
    Ok(())
}

/// Fidelity targets swept by [`extension_fidelity`]; `0.0` means no
/// constraint.
pub const EXT_FIDELITY_TARGETS: [f64; 4] = [0.0, 0.80, 0.85, 0.90];

/// Elementary per-link Werner fidelity used by the fidelity extension.
pub const EXT_FIDELITY_ELEMENTARY: f64 = 0.95;

/// Fidelity-constraint extension (paper §III-C): "we can easily integrate
/// a constraint into P1, which calculates the fidelity of the chosen
/// route and ensures it \[meets\] the fidelity target in each time slot."
///
/// Elementary links carry Werner fidelity 0.95; fidelities compose
/// multiplicatively in the Werner parameter across swaps, so a target of
/// 0.80 admits routes of ≤ 4 hops, 0.85 ≤ 3 hops, and 0.90 ≤ 2 hops.
/// Tightening the target prunes `R(φ)` — distant pairs lose all their
/// candidates and go unserved — so the average success rate falls for
/// every policy while OSCAR keeps its lead on the pairs that remain
/// servable.
pub fn extension_fidelity(scale: Scale) -> Vec<SweepPoint> {
    EXT_FIDELITY_TARGETS
        .iter()
        .map(|&target| {
            let fidelity_target = (target > 0.0).then_some(target);
            let mut oscar = oscar_config(scale);
            oscar.fidelity_target = fidelity_target;
            let mut mf = myopic_config(scale, BudgetSplit::Fixed);
            mf.fidelity_target = fidelity_target;
            let mut ma = myopic_config(scale, BudgetSplit::Adaptive);
            ma.fidelity_target = fidelity_target;
            let policies = vec![
                PolicySpec::Oscar(oscar),
                PolicySpec::Myopic(mf),
                PolicySpec::Myopic(ma),
            ];
            let mut e = base_experiment("ext_fidelity", scale, policies);
            e.network = NetworkConfig {
                elementary_fidelity: EXT_FIDELITY_ELEMENTARY,
                ..NetworkConfig::paper_default()
            };
            run_sweep_point("ext_fidelity", scale, target, e)
        })
        .collect()
}

/// Extension-fidelity qualitative checks: tightening the target never
/// helps, the strictest target visibly costs success (pairs with only
/// long routes become unservable), and OSCAR dominates wherever routing
/// freedom remains.
pub fn extension_fidelity_shape_holds(points: &[SweepPoint]) -> Result<(), String> {
    let first = points.first().ok_or("empty sweep")?;
    let last = points.last().ok_or("empty sweep")?;
    for policy in ["OSCAR", "MF", "MA"] {
        let unconstrained = first.outcome(policy).unwrap().avg_success;
        let strict = last.outcome(policy).unwrap().avg_success;
        if strict > unconstrained + 0.02 {
            return Err(format!(
                "{policy}: success cannot improve under a fidelity constraint \
                 ({unconstrained:.4} unconstrained vs {strict:.4} @ F ≥ {})",
                last.x
            ));
        }
        if unconstrained - strict < 0.05 {
            return Err(format!(
                "{policy}: an F ≥ {} target should visibly prune routes \
                 ({unconstrained:.4} -> {strict:.4})",
                last.x
            ));
        }
    }
    for p in points {
        let oscar = p.outcome("OSCAR").unwrap().avg_success;
        let mf = p.outcome("MF").unwrap().avg_success;
        let ma = p.outcome("MA").unwrap().avg_success;
        if oscar + 0.02 < mf.max(ma) {
            return Err(format!(
                "at F ≥ {}: OSCAR {oscar:.4} should dominate MF {mf:.4} / MA {ma:.4}",
                p.x
            ));
        }
    }
    Ok(())
}

/// Labels of the [`extension_topologies`] rows, in sweep order.
pub const EXT_TOPOLOGY_LABELS: [&str; 4] = ["waxman", "grid", "ring", "star"];

/// Topology-family extension: the related work the paper builds on
/// studied specialized topologies — grid \[15\], ring \[16\], and the star
/// entanglement switch \[17\] — before the field moved to general graphs.
/// This experiment runs the paper's three policies on 16-node instances
/// of each family (16 keeps a ring's worst pair at 8 hops, inside the
/// candidate-route bound `L = 8`) under the paper's capacities and
/// budget.
pub fn extension_topologies(scale: Scale) -> Vec<SweepPoint> {
    let side = 100.0;
    let families = [
        TopologyConfig::paper_default().with_nodes(16),
        TopologyConfig::Grid {
            rows: 4,
            cols: 4,
            side,
        },
        TopologyConfig::Ring { nodes: 16, side },
        TopologyConfig::Star { leaves: 15, side },
    ];
    families
        .into_iter()
        .enumerate()
        .map(|(i, topology)| {
            let mut e = base_experiment("ext_topologies", scale, paper_policies(scale));
            e.network = NetworkConfig {
                topology,
                ..NetworkConfig::paper_default()
            };
            run_sweep_point("ext_topologies", scale, i as f64, e)
        })
        .collect()
}

/// Extension-topology qualitative checks: OSCAR dominates the baselines
/// on every family, and the ring — whose routes are by far the longest —
/// is the hardest topology for every policy.
pub fn extension_topologies_shape_holds(points: &[SweepPoint]) -> Result<(), String> {
    if points.len() != EXT_TOPOLOGY_LABELS.len() {
        return Err(format!("expected {} points", EXT_TOPOLOGY_LABELS.len()));
    }
    for (p, label) in points.iter().zip(EXT_TOPOLOGY_LABELS) {
        let oscar = p.outcome("OSCAR").unwrap().avg_success;
        let mf = p.outcome("MF").unwrap().avg_success;
        let ma = p.outcome("MA").unwrap().avg_success;
        if oscar + 0.02 < mf.max(ma) {
            return Err(format!(
                "{label}: OSCAR {oscar:.4} should dominate MF {mf:.4} / MA {ma:.4}"
            ));
        }
    }
    let ring = points[2].outcome("OSCAR").unwrap().avg_success;
    for (p, label) in points.iter().zip(EXT_TOPOLOGY_LABELS) {
        if label == "ring" {
            continue;
        }
        let other = p.outcome("OSCAR").unwrap().avg_success;
        if ring > other + 0.02 {
            return Err(format!(
                "ring ({ring:.4}) should be the hardest family, but beats {label} ({other:.4})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_scale_with_horizon() {
        let cfg = oscar_config(Scale::Quick);
        assert_eq!(cfg.horizon, 60);
        assert!((cfg.total_budget / 60.0 - 25.0).abs() < 1e-9);
        let m = myopic_config(Scale::Quick, BudgetSplit::Fixed);
        assert_eq!(m.horizon, 60);
    }

    #[test]
    fn paper_policies_are_three() {
        let p = paper_policies(Scale::Quick);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].name(), "OSCAR");
        assert_eq!(p[1].name(), "MF");
        assert_eq!(p[2].name(), "MA");
    }

    #[test]
    fn sweep_constants_sorted() {
        assert!(FIG5_BUDGETS.windows(2).all(|w| w[0] < w[1]));
        assert!(FIG6_SIZES.windows(2).all(|w| w[0] < w[1]));
        assert!(FIG7_VS.windows(2).all(|w| w[0] < w[1]));
        assert!(FIG8_Q0S.windows(2).all(|w| w[0] < w[1]));
        assert!(EXT_SWAP_SUCCESSES.windows(2).all(|w| w[0] < w[1]));
        assert!(EXT_MULTI_EC_COUNTS.windows(2).all(|w| w[0] < w[1]));
        assert!(EXT_SWAP_SUCCESSES.iter().all(|&q| (0.0..=1.0).contains(&q)));
        assert!(EXT_FIDELITY_TARGETS.windows(2).all(|w| w[0] < w[1]));
        assert!(EXT_FIDELITY_TARGETS
            .iter()
            .all(|&f| f == 0.0 || (0.25..=1.0).contains(&f)));
        assert!((0.25..=1.0).contains(&EXT_FIDELITY_ELEMENTARY));
    }
}
