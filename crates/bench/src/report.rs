//! Printing helpers shared by the `fig*` binaries and the Criterion
//! benches.

use qdn_sim::output::{fmt_f, to_csv, to_table};

use crate::figures::{DistributionRow, Fig3, Fig4, SweepPoint};

/// Renders the Fig. 3 series as CSV (`t, <policy>_utility,
/// <policy>_success, <policy>_usage, …`).
pub fn fig3_csv(fig: &Fig3) -> String {
    let horizon = fig.series.first().map_or(0, |s| s.avg_utility.len());
    let mut header: Vec<String> = vec!["t".into()];
    for s in &fig.series {
        header.push(format!("{}_avg_utility", s.policy));
        header.push(format!("{}_avg_success", s.policy));
        header.push(format!("{}_cum_usage", s.policy));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..horizon)
        .map(|t| {
            let mut row = vec![t.to_string()];
            for s in &fig.series {
                row.push(fmt_f(s.avg_utility[t]));
                row.push(fmt_f(s.avg_success[t]));
                row.push(fmt_f(s.cumulative_cost[t]));
            }
            row
        })
        .collect();
    to_csv(&header_refs, &rows)
}

/// Renders the Fig. 3 endpoint summary as an aligned table.
pub fn fig3_summary(fig: &Fig3) -> String {
    let rows: Vec<Vec<String>> = fig
        .series
        .iter()
        .map(|s| {
            vec![
                s.policy.clone(),
                fmt_f(*s.avg_utility.last().unwrap_or(&0.0)),
                fmt_f(*s.avg_success.last().unwrap_or(&0.0)),
                fmt_f(*s.cumulative_cost.last().unwrap_or(&0.0)),
                fmt_f(fig.budget),
            ]
        })
        .collect();
    to_table(
        &[
            "policy",
            "final_avg_utility",
            "final_avg_success",
            "total_usage",
            "budget",
        ],
        &rows,
    )
}

/// Renders the Fig. 4 histogram as CSV (`bin_center, <policy>_fraction…`).
pub fn fig4_csv(fig: &Fig4) -> String {
    let mut header: Vec<String> = vec!["bin_center".into()];
    for r in &fig.rows {
        header.push(format!("{}_fraction", r.policy));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = fig
        .bin_centers
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let mut row = vec![fmt_f(c)];
            for r in &fig.rows {
                row.push(fmt_f(r.fractions[i]));
            }
            row
        })
        .collect();
    to_csv(&header_refs, &rows)
}

/// Renders the Fig. 4 fairness summary as an aligned table.
pub fn fig4_summary(rows: &[DistributionRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.policy.clone(), fmt_f(r.mean), fmt_f(r.jain)])
        .collect();
    to_table(&["policy", "mean_success", "jain_fairness"], &body)
}

/// Renders a sweep (Figs. 5–8, ablations) as CSV with one row per sweep
/// point and `success/utility/usage` columns per policy.
pub fn sweep_csv(x_name: &str, points: &[SweepPoint]) -> String {
    let mut header: Vec<String> = vec![x_name.into()];
    if let Some(first) = points.first() {
        for o in &first.outcomes {
            header.push(format!("{}_success", o.policy));
            header.push(format!("{}_utility", o.policy));
            header.push(format!("{}_usage", o.policy));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![fmt_f(p.x)];
            for o in &p.outcomes {
                row.push(fmt_f(o.avg_success));
                row.push(fmt_f(o.avg_utility));
                row.push(fmt_f(o.total_usage));
            }
            row
        })
        .collect();
    to_csv(&header_refs, &rows)
}

/// Renders a sweep as an aligned table (one row per point × policy).
pub fn sweep_table(x_name: &str, points: &[SweepPoint]) -> String {
    let rows: Vec<Vec<String>> = points.iter().flat_map(|p| points_row(p, x_name)).collect();
    to_table(
        &[
            x_name,
            "policy",
            "avg_success",
            "avg_utility",
            "total_usage",
        ],
        &rows,
    )
}

fn points_row(p: &SweepPoint, _x_name: &str) -> Vec<Vec<String>> {
    p.outcomes
        .iter()
        .map(|o| {
            vec![
                fmt_f(p.x),
                o.policy.clone(),
                fmt_f(o.avg_success),
                fmt_f(o.avg_utility),
                fmt_f(o.total_usage),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{PolicySeries, SweepOutcome};

    fn fig3_fixture() -> Fig3 {
        Fig3 {
            budget: 100.0,
            series: vec![PolicySeries {
                policy: "OSCAR".into(),
                avg_utility: vec![-1.0, -0.5],
                avg_success: vec![0.8, 0.85],
                cumulative_cost: vec![10.0, 20.0],
            }],
        }
    }

    #[test]
    fn fig3_csv_layout() {
        let csv = fig3_csv(&fig3_fixture());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "t,OSCAR_avg_utility,OSCAR_avg_success,OSCAR_cum_usage"
        );
        assert!(lines[1].starts_with("0,-1.0000,0.8000,10.0000"));
    }

    #[test]
    fn fig3_summary_contains_policy() {
        let s = fig3_summary(&fig3_fixture());
        assert!(s.contains("OSCAR"));
        assert!(s.contains("100.0000"));
    }

    #[test]
    fn sweep_csv_layout() {
        let points = vec![SweepPoint {
            x: 3000.0,
            outcomes: vec![SweepOutcome {
                policy: "OSCAR".into(),
                avg_success: 0.8,
                avg_utility: -1.0,
                total_usage: 2900.0,
            }],
        }];
        let csv = sweep_csv("budget", &points);
        assert!(csv.starts_with("budget,OSCAR_success,OSCAR_utility,OSCAR_usage\n"));
        assert!(csv.contains("3000.0000,0.8000,-1.0000,2900.0000"));
        let table = sweep_table("budget", &points);
        assert!(table.contains("OSCAR"));
    }
}
