//! Regenerates Fig. 3: time-evolving average utility, EC success rate,
//! and cumulative qubit usage for OSCAR vs MF vs MA.
//!
//! Usage: `cargo run -p qdn-bench --release --bin fig3 [--quick]`

use qdn_bench::figures::fig3;
use qdn_bench::report::{fig3_csv, fig3_summary};
use qdn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig3 at {scale:?} scale…");
    let out = fig3(scale);
    println!("# Fig. 3 — time-evolving performance ({scale:?} scale)");
    println!();
    println!("{}", fig3_summary(&out));
    match out.shape_holds() {
        Ok(()) => println!("shape check: OK (OSCAR > MA, MF under-spends, OSCAR ~ budget)"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    println!();
    println!("{}", fig3_csv(&out));
}
