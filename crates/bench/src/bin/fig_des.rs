//! Runs the event-driven experiments: attempt-level model validation,
//! the online-arrival rate sweep, and the budget-violation comparison.
//! See DESIGN.md §3 for what each demonstrates.
//!
//! Usage: `cargo run -p qdn-bench --release --bin fig_des [--quick]`

use qdn_bench::des::{
    budget_violation, budget_violation_shape_holds, des_memory_shape_holds, des_memory_sweep,
    des_validation, des_validation_shape_holds, online_rate_shape_holds, online_rate_sweep,
};
use qdn_bench::Scale;
use qdn_sim::output::{fmt_f, to_csv, to_table};

fn main() {
    let scale = Scale::from_args();
    let mut failures = 0usize;
    let mut check = |name: &str, result: Result<(), String>| match result {
        Ok(()) => println!("shape check: OK"),
        Err(e) => {
            failures += 1;
            println!("[{name}] shape check: FAILED — {e}");
        }
    };

    eprintln!("running attempt-level validation at {scale:?} scale…");
    let rows = des_validation(scale);
    println!("# DES — attempt-level validation of Eq. 1/2 ({scale:?} scale)");
    println!();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                fmt_f(r.analytic),
                fmt_f(r.realized),
                fmt_f(r.gap),
                fmt_f(r.p50_latency),
                fmt_f(r.p99_latency),
                fmt_f(r.attempts_per_delivery),
            ]
        })
        .collect();
    println!(
        "{}",
        to_table(
            &[
                "policy",
                "analytic",
                "realized",
                "gap",
                "p50_lat_s",
                "p99_lat_s",
                "attempts/EC"
            ],
            &table
        )
    );
    check("des_validation", des_validation_shape_holds(&rows));
    println!(
        "{}",
        to_csv(
            &[
                "policy",
                "analytic",
                "realized",
                "gap",
                "p50_lat_s",
                "p99_lat_s",
                "attempts_per_ec"
            ],
            &table
        )
    );

    eprintln!("running online rate sweep at {scale:?} scale…");
    let online = online_rate_sweep(scale);
    println!("# DES — online arrivals: load sweep ({scale:?} scale)");
    println!();
    let table: Vec<Vec<String>> = online
        .iter()
        .map(|r| {
            vec![
                fmt_f(r.rate),
                r.requests.to_string(),
                fmt_f(r.success),
                r.spend.to_string(),
                r.unpaced_spend.to_string(),
                fmt_f(r.throughput),
                fmt_f(r.mean_latency),
            ]
        })
        .collect();
    println!(
        "{}",
        to_table(
            &[
                "rate_per_s",
                "requests",
                "success",
                "spend",
                "unpaced_spend",
                "thruput_per_s",
                "mean_lat_s"
            ],
            &table
        )
    );
    check(
        "online_rate",
        online_rate_shape_holds(&online, scale.scaled_budget(5000.0)),
    );
    println!(
        "{}",
        to_csv(
            &[
                "rate_per_s",
                "requests",
                "success",
                "spend",
                "unpaced_spend",
                "thruput_per_s",
                "mean_lat_s"
            ],
            &table
        )
    );

    eprintln!("running memory (decoherence) sweep at {scale:?} scale…");
    let memory = des_memory_sweep(scale);
    println!(
        "# DES — where the slot abstraction breaks: memory sweep, window 0.66s ({scale:?} scale)"
    );
    println!();
    let table: Vec<Vec<String>> = memory
        .iter()
        .map(|r| {
            vec![
                fmt_f(r.memory_secs),
                fmt_f(r.analytic),
                fmt_f(r.realized),
                fmt_f(r.analytic - r.realized),
                fmt_f(r.decohered_frac),
            ]
        })
        .collect();
    println!(
        "{}",
        to_table(
            &[
                "memory_s",
                "analytic",
                "realized",
                "over_promise",
                "decohered_frac"
            ],
            &table
        )
    );
    check("des_memory", des_memory_shape_holds(&memory));
    println!(
        "{}",
        to_csv(
            &[
                "memory_s",
                "analytic",
                "realized",
                "over_promise",
                "decohered_frac"
            ],
            &table
        )
    );

    eprintln!("running budget-violation comparison at {scale:?} scale…");
    let violation = budget_violation(scale);
    println!("# DES — budget violation: budget-aware vs throughput-greedy ({scale:?} scale)");
    println!();
    let table: Vec<Vec<String>> = violation
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                fmt_f(r.spend),
                fmt_f(r.spend_over_budget),
                fmt_f(r.success),
            ]
        })
        .collect();
    println!(
        "{}",
        to_table(&["policy", "spend", "spend/C", "avg_success"], &table)
    );
    check("budget_violation", budget_violation_shape_holds(&violation));
    println!(
        "{}",
        to_csv(
            &["policy", "spend", "spend_over_budget", "avg_success"],
            &table
        )
    );

    if failures > 0 {
        eprintln!("{failures} shape check(s) failed");
        std::process::exit(1);
    }
    eprintln!("all DES shape checks passed");
}
