//! Prints the paper's analytic bounds next to measured quantities at
//! paper scale: Theorem 1's budget-violation allowance vs OSCAR's actual
//! overshoot, and Theorem 2's optimality gap vs the measured distance to
//! the hindsight oracle.
//!
//! Usage: `cargo run -p qdn-bench --release --bin theory_check [--quick]`

use qdn_bench::figures::oscar_config;
use qdn_bench::Scale;
use qdn_core::baselines::OraclePolicy;
use qdn_core::oscar::OscarPolicy;
use qdn_core::route_selection::RouteSelector;
use qdn_core::theory::{
    delta_bound, theorem1_violation_bound, theorem2_optimality_gap, BoundParams,
};
use qdn_net::dynamics::StaticDynamics;
use qdn_net::routes::RouteLimits;
use qdn_net::workload::{TraceWorkload, UniformWorkload, Workload};
use qdn_net::NetworkConfig;
use qdn_sim::engine::{run, SimConfig};
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let cfg = oscar_config(scale);
    let horizon = cfg.horizon;
    let budget = cfg.total_budget;
    let sim = SimConfig {
        horizon,
        realize_outcomes: false,
    };

    println!("# Theory check ({scale:?} scale): measured vs analytic bounds\n");

    let mut sum_violation = 0.0;
    let mut sum_gap = 0.0;
    let mut bound1 = 0.0;
    let mut bound2 = 0.0;
    const SEEDS: [u64; 3] = [101, 202, 303];
    for seed in SEEDS {
        let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();

        // Shared request trace so the oracle can plan with hindsight.
        let mut sampler = UniformWorkload::paper_default();
        let mut trace_rng = rand::rngs::StdRng::seed_from_u64(seed + 999);
        let trace: Vec<_> = (0..horizon)
            .map(|t| sampler.requests(t, &net, &mut trace_rng))
            .collect();

        // OSCAR.
        let mut oscar = OscarPolicy::new(cfg.clone());
        let mut env1 = rand::rngs::StdRng::seed_from_u64(seed + 1);
        let mut pol1 = rand::rngs::StdRng::seed_from_u64(seed + 2);
        let m_oscar = run(
            &net,
            &mut TraceWorkload::new(trace.clone()),
            &mut StaticDynamics,
            &mut oscar,
            &sim,
            &mut env1,
            &mut pol1,
        );

        // Hindsight oracle (approximate OPT).
        let mut oracle = OraclePolicy::plan(
            &net,
            &trace,
            budget,
            RouteLimits::paper_default(),
            RouteSelector::default(),
        );
        let mut env2 = rand::rngs::StdRng::seed_from_u64(seed + 1);
        let mut pol2 = rand::rngs::StdRng::seed_from_u64(seed + 2);
        let m_oracle = run(
            &net,
            &mut TraceWorkload::new(trace),
            &mut StaticDynamics,
            &mut oracle,
            &sim,
            &mut env2,
            &mut pol2,
        );

        let max_w = net
            .graph()
            .edge_ids()
            .map(|e| net.channel_capacity(e))
            .max()
            .unwrap() as f64;
        let params = BoundParams {
            v: cfg.v,
            f: 5,
            l: 8,
            p_min: net.p_min(),
            budget,
            horizon,
            q0: cfg.q0,
            c_max: 5.0 * 8.0 * max_w,
        };
        let violation = (m_oscar.total_cost() as f64 - budget) / horizon as f64;
        let gap = m_oracle.avg_utility() - m_oscar.avg_utility();
        bound1 = theorem1_violation_bound(&params);
        bound2 = theorem2_optimality_gap(&params);
        println!(
            "seed {seed}: per-slot violation {violation:+.3} (Thm 1 allows {bound1:.1}), \
             utility gap to oracle {gap:+.4} (Thm 2 allows {bound2:.1})"
        );
        sum_violation += violation;
        sum_gap += gap;

        let delta = delta_bound(params.v, params.f, params.l, params.p_min);
        println!(
            "          Δ (Prop. 2) = {delta:.1}, p_min = {:.4}, C/T = {:.1}",
            params.p_min,
            params.allowance()
        );
    }

    let n = SEEDS.len() as f64;
    println!("\nmeans over {} seeds:", SEEDS.len());
    println!(
        "  budget violation {:+.3} / slot  (bound {bound1:.1})  -> {}",
        sum_violation / n,
        if sum_violation / n <= bound1 {
            "OK"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "  optimality gap   {:+.4}          (bound {bound2:.1})  -> {}",
        sum_gap / n,
        if sum_gap / n <= bound2 {
            "OK"
        } else {
            "VIOLATED"
        }
    );
}
