//! Regenerates Fig. 7: OSCAR's utility/usage trade-off vs the Lyapunov
//! weight `V`.
//!
//! Usage: `cargo run -p qdn-bench --release --bin fig7 [--quick]`

use qdn_bench::figures::{fig7, fig7_shape_holds};
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig7 at {scale:?} scale…");
    let points = fig7(scale);
    println!("# Fig. 7 — impact of V ({scale:?} scale)");
    println!();
    println!("{}", sweep_table("V", &points));
    match fig7_shape_holds(&points) {
        Ok(()) => println!("shape check: OK (utility and usage rise with V)"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    println!();
    println!("{}", sweep_csv("V", &points));
}
