//! Regenerates Fig. 6: EC success rate and qubit usage vs network size
//! (degree-calibrated Waxman topologies).
//!
//! Usage: `cargo run -p qdn-bench --release --bin fig6 [--quick]`

use qdn_bench::figures::{fig6, fig6_shape_holds};
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig6 at {scale:?} scale…");
    let points = fig6(scale);
    println!("# Fig. 6 — impact of network size ({scale:?} scale)");
    println!();
    println!("{}", sweep_table("nodes", &points));
    match fig6_shape_holds(&points) {
        Ok(()) => println!("shape check: OK (success falls with size; OSCAR dominates)"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    println!();
    println!("{}", sweep_csv("nodes", &points));
}
