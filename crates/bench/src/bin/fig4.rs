//! Regenerates Fig. 4: the distribution of per-request EC success
//! probabilities (fairness comparison).
//!
//! Usage: `cargo run -p qdn-bench --release --bin fig4 [--quick]`

use qdn_bench::figures::fig4;
use qdn_bench::report::{fig4_csv, fig4_summary};
use qdn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig4 at {scale:?} scale…");
    let out = fig4(scale);
    println!("# Fig. 4 — success-rate distribution ({scale:?} scale)");
    println!();
    println!("{}", fig4_summary(&out.rows));
    match out.shape_holds() {
        Ok(()) => println!("shape check: OK (OSCAR fairest and highest mean)"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    println!();
    println!("{}", fig4_csv(&out));
}
