//! Runs the three DESIGN.md ablations: route-selection strategy, Gibbs
//! temperature γ, and allocation method.
//!
//! Usage: `cargo run -p qdn-bench --release --bin fig_ablation [--quick]`

use qdn_bench::figures::{ablation_allocation, ablation_gamma, ablation_route_selection};
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;

fn main() {
    let scale = Scale::from_args();

    eprintln!("running route-selection ablation at {scale:?} scale…");
    let rs = ablation_route_selection(scale);
    println!("# Ablation — route selection ({scale:?} scale)");
    println!();
    println!("{}", sweep_table("variant", &rs));
    println!("{}", sweep_csv("variant", &rs));

    eprintln!("running gamma ablation at {scale:?} scale…");
    let g = ablation_gamma(scale);
    println!("# Ablation — Gibbs temperature γ ({scale:?} scale)");
    println!();
    println!("{}", sweep_table("gamma", &g));
    println!("{}", sweep_csv("gamma", &g));

    eprintln!("running allocation ablation at {scale:?} scale…");
    let a = ablation_allocation(scale);
    println!("# Ablation — allocation method ({scale:?} scale)");
    println!();
    println!("{}", sweep_table("variant", &a));
    println!("{}", sweep_csv("variant", &a));
}
