//! Regenerates Fig. 5: EC success rate and qubit usage vs the total
//! budget `C`.
//!
//! Usage: `cargo run -p qdn-bench --release --bin fig5 [--quick]`

use qdn_bench::figures::{fig5, fig5_shape_holds};
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig5 at {scale:?} scale…");
    let points = fig5(scale);
    println!("# Fig. 5 — impact of budget ({scale:?} scale)");
    println!();
    println!("{}", sweep_table("budget", &points));
    match fig5_shape_holds(&points) {
        Ok(()) => println!("shape check: OK (success rises with C; OSCAR dominates)"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    println!();
    println!("{}", sweep_csv("budget", &points));
}
