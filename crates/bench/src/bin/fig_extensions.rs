//! Runs the three extension experiments (beyond the paper's evaluation):
//! imperfect swapping, time-varying resource occupancy, and multi-EC
//! request load. See DESIGN.md §3 for why each exists.
//!
//! Usage: `cargo run -p qdn-bench --release --bin fig_extensions [--quick]`

use qdn_bench::figures::{
    extension_dynamics, extension_dynamics_shape_holds, extension_fidelity,
    extension_fidelity_shape_holds, extension_multi_ec, extension_multi_ec_shape_holds,
    extension_swap, extension_swap_shape_holds, extension_topologies,
    extension_topologies_shape_holds, EXT_DYNAMICS_LABELS, EXT_TOPOLOGY_LABELS,
};
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let mut failures = 0usize;
    let mut check = |name: &str, result: Result<(), String>| match result {
        Ok(()) => println!("shape check: OK"),
        Err(e) => {
            failures += 1;
            println!("[{name}] shape check: FAILED — {e}");
        }
    };

    eprintln!("running swap-success extension at {scale:?} scale…");
    let swap = extension_swap(scale);
    println!("# Extension — imperfect entanglement swapping ({scale:?} scale)");
    println!();
    println!("{}", sweep_table("swap_success", &swap));
    check("ext_swap", extension_swap_shape_holds(&swap));
    println!("{}", sweep_csv("swap_success", &swap));

    eprintln!("running dynamics extension at {scale:?} scale…");
    let dynamics = extension_dynamics(scale);
    println!("# Extension — time-varying resource occupancy ({scale:?} scale)");
    println!("# rows: {:?}", EXT_DYNAMICS_LABELS);
    println!();
    println!("{}", sweep_table("dynamics", &dynamics));
    check("ext_dynamics", extension_dynamics_shape_holds(&dynamics));
    println!("{}", sweep_csv("dynamics", &dynamics));

    eprintln!("running multi-EC extension at {scale:?} scale…");
    let multi = extension_multi_ec(scale);
    println!("# Extension — multi-EC requests per SD pair ({scale:?} scale)");
    println!();
    println!("{}", sweep_table("max_requests_per_pair", &multi));
    check("ext_multi_ec", extension_multi_ec_shape_holds(&multi));
    println!("{}", sweep_csv("max_requests_per_pair", &multi));

    eprintln!("running topology-family extension at {scale:?} scale…");
    let topo = extension_topologies(scale);
    println!("# Extension — topology families ({scale:?} scale)");
    println!("# rows: {:?}", EXT_TOPOLOGY_LABELS);
    println!();
    println!("{}", sweep_table("topology", &topo));
    check("ext_topologies", extension_topologies_shape_holds(&topo));
    println!("{}", sweep_csv("topology", &topo));

    eprintln!("running fidelity-target extension at {scale:?} scale…");
    let fidelity = extension_fidelity(scale);
    println!("# Extension — fidelity-constrained routing, F_link = 0.95 ({scale:?} scale)");
    println!("# fidelity_target = 0 means unconstrained");
    println!();
    println!("{}", sweep_table("fidelity_target", &fidelity));
    check("ext_fidelity", extension_fidelity_shape_holds(&fidelity));
    println!("{}", sweep_csv("fidelity_target", &fidelity));

    if failures > 0 {
        eprintln!("{failures} shape check(s) failed");
        std::process::exit(1);
    }
    eprintln!("all extension shape checks passed");
}
