//! Regenerates Fig. 8: OSCAR's utility/usage vs the initial virtual
//! queue `q0`.
//!
//! Usage: `cargo run -p qdn-bench --release --bin fig8 [--quick]`

use qdn_bench::figures::{fig8, fig8_shape_holds};
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running fig8 at {scale:?} scale…");
    let points = fig8(scale);
    println!("# Fig. 8 — impact of q0 ({scale:?} scale)");
    println!();
    println!("{}", sweep_table("q0", &points));
    match fig8_shape_holds(&points) {
        Ok(()) => println!("shape check: OK (usage falls with q0; small q0 keeps utility)"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }
    println!();
    println!("{}", sweep_csv("q0", &points));
}
