//! Runs every figure and ablation in sequence — the one-shot
//! reproduction of the paper's whole evaluation section.
//!
//! Usage: `cargo run -p qdn-bench --release --bin run_all [--quick]`

use qdn_bench::des::{
    budget_violation, budget_violation_shape_holds, des_validation, des_validation_shape_holds,
    online_rate_shape_holds, online_rate_sweep,
};
use qdn_bench::figures::{
    ablation_allocation, ablation_gamma, ablation_route_selection, extension_dynamics,
    extension_dynamics_shape_holds, extension_fidelity, extension_fidelity_shape_holds,
    extension_multi_ec, extension_multi_ec_shape_holds, extension_swap, extension_swap_shape_holds,
    extension_topologies, extension_topologies_shape_holds, fig3, fig4, fig5, fig5_shape_holds,
    fig6, fig6_shape_holds, fig7, fig7_shape_holds, fig8, fig8_shape_holds,
};
use qdn_bench::report::{fig3_csv, fig3_summary, fig4_csv, fig4_summary, sweep_csv, sweep_table};
use qdn_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let mut failures = 0usize;
    let mut check = |name: &str, result: Result<(), String>| match result {
        Ok(()) => println!("[{name}] shape check: OK"),
        Err(e) => {
            failures += 1;
            println!("[{name}] shape check: FAILED — {e}");
        }
    };

    eprintln!("fig3…");
    let f3 = fig3(scale);
    println!("{}", fig3_summary(&f3));
    check("fig3", f3.shape_holds());
    println!("{}", fig3_csv(&f3));

    eprintln!("fig4…");
    let f4 = fig4(scale);
    println!("{}", fig4_summary(&f4.rows));
    check("fig4", f4.shape_holds());
    println!("{}", fig4_csv(&f4));

    eprintln!("fig5…");
    let f5 = fig5(scale);
    println!("{}", sweep_table("budget", &f5));
    check("fig5", fig5_shape_holds(&f5));
    println!("{}", sweep_csv("budget", &f5));

    eprintln!("fig6…");
    let f6 = fig6(scale);
    println!("{}", sweep_table("nodes", &f6));
    check("fig6", fig6_shape_holds(&f6));
    println!("{}", sweep_csv("nodes", &f6));

    eprintln!("fig7…");
    let f7 = fig7(scale);
    println!("{}", sweep_table("V", &f7));
    check("fig7", fig7_shape_holds(&f7));
    println!("{}", sweep_csv("V", &f7));

    eprintln!("fig8…");
    let f8 = fig8(scale);
    println!("{}", sweep_table("q0", &f8));
    check("fig8", fig8_shape_holds(&f8));
    println!("{}", sweep_csv("q0", &f8));

    eprintln!("ablations…");
    println!(
        "{}",
        sweep_table("selector", &ablation_route_selection(scale))
    );
    println!("{}", sweep_table("gamma", &ablation_gamma(scale)));
    println!("{}", sweep_table("allocation", &ablation_allocation(scale)));

    eprintln!("extensions…");
    let swap = extension_swap(scale);
    println!("{}", sweep_table("swap_success", &swap));
    check("ext_swap", extension_swap_shape_holds(&swap));
    let dynamics = extension_dynamics(scale);
    println!("{}", sweep_table("dynamics", &dynamics));
    check("ext_dynamics", extension_dynamics_shape_holds(&dynamics));
    let multi = extension_multi_ec(scale);
    println!("{}", sweep_table("max_requests_per_pair", &multi));
    check("ext_multi_ec", extension_multi_ec_shape_holds(&multi));
    let topo = extension_topologies(scale);
    println!("{}", sweep_table("topology", &topo));
    check("ext_topologies", extension_topologies_shape_holds(&topo));
    let fidelity = extension_fidelity(scale);
    println!("{}", sweep_table("fidelity_target", &fidelity));
    check("ext_fidelity", extension_fidelity_shape_holds(&fidelity));

    eprintln!("event-driven experiments…");
    let des_rows = des_validation(scale);
    for r in &des_rows {
        println!(
            "{:<18} analytic {:.4} realized {:.4} gap {:.4}",
            r.policy, r.analytic, r.realized, r.gap
        );
    }
    check("des_validation", des_validation_shape_holds(&des_rows));
    let online = online_rate_sweep(scale);
    for r in &online {
        println!(
            "rate {:>5.2}/s success {:.4} spend {:>6} thruput {:.3}/s",
            r.rate, r.success, r.spend, r.throughput
        );
    }
    check(
        "online_rate",
        online_rate_shape_holds(&online, scale.scaled_budget(5000.0)),
    );
    let violation = budget_violation(scale);
    for r in &violation {
        println!(
            "{:<18} spend {:>8.1} ({:.2}x C) success {:.4}",
            r.policy, r.spend, r.spend_over_budget, r.success
        );
    }
    check("budget_violation", budget_violation_shape_holds(&violation));

    if failures > 0 {
        eprintln!("{failures} shape check(s) failed");
        std::process::exit(1);
    }
    eprintln!("all shape checks passed");
}
