//! Event-driven experiment builders: attempt-level model validation,
//! the online-arrival rate sweep, and the budget-violation comparison.
//!
//! These extend the paper's evaluation with the questions its slotted
//! abstraction leaves open: *do the analytic success rates survive
//! attempt-level physics* (they must — Eq. 1/2 are exact for the modeled
//! process), *what latency does routing buy*, and *what happens to the
//! budget when requests arrive continuously or the policy ignores cost*.

use std::time::Duration;

use qdn_core::baselines::{MyopicPolicy, ThroughputGreedyPolicy};
use qdn_core::oscar::{OscarConfig, OscarPolicy};
use qdn_core::policy::RoutingPolicy;
use qdn_des::arrivals::PoissonArrivals;
use qdn_des::exec::ExecutionConfig;
use qdn_des::online::{run_online, OnlineConfig, OnlineRouter};
use qdn_des::slotted::{run_slotted, SlottedDesConfig};
use qdn_net::dynamics::StaticDynamics;
use qdn_net::workload::UniformWorkload;
use qdn_net::NetworkConfig;
use rand::SeedableRng;

use crate::Scale;

/// One row of the attempt-level validation table.
#[derive(Debug, Clone, PartialEq)]
pub struct DesValidationRow {
    /// Policy name.
    pub policy: String,
    /// Mean analytic success probability (Eq. 2) of its decisions.
    pub analytic: f64,
    /// Realized delivery frequency in the DES.
    pub realized: f64,
    /// `|realized − analytic|`.
    pub gap: f64,
    /// Median delivery latency (s).
    pub p50_latency: f64,
    /// 99th-percentile delivery latency (s).
    pub p99_latency: f64,
    /// Entanglement attempts burned per delivered connection.
    pub attempts_per_delivery: f64,
}

/// Attempt-level validation: realize OSCAR/MF/MA decisions in the DES
/// and compare analytic vs realized success, averaged over the scale's
/// trials.
pub fn des_validation(scale: Scale) -> Vec<DesValidationRow> {
    let policies: Vec<Box<dyn Fn() -> Box<dyn RoutingPolicy>>> = vec![
        Box::new(|| Box::new(OscarPolicy::new(OscarConfig::paper_default()))),
        Box::new(|| Box::new(MyopicPolicy::fixed())),
        Box::new(|| Box::new(MyopicPolicy::adaptive())),
    ];
    let trials = scale.trials();
    let config = SlottedDesConfig {
        horizon: scale.horizon(),
        ..SlottedDesConfig::paper_default()
    };
    policies
        .iter()
        .map(|make| {
            let mut analytic = 0.0;
            let mut realized = 0.0;
            let mut p50 = 0.0;
            let mut p99 = 0.0;
            let mut attempts = 0u64;
            let mut delivered = 0usize;
            let mut name = String::new();
            for trial in 0..trials {
                let seed = 0x0DD5_EED5u64 + trial as u64;
                let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xfeed);
                let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
                let mut wl = UniformWorkload::paper_default();
                let mut dynamics = StaticDynamics;
                let mut policy = make();
                let m = run_slotted(
                    &net,
                    &mut wl,
                    &mut dynamics,
                    policy.as_mut(),
                    &config,
                    &mut env_rng,
                    &mut policy_rng,
                );
                name = m.policy().to_string();
                analytic += m.expected_success_rate();
                realized += m.realized_success_rate();
                if let Some(l) = m.latency_summary() {
                    p50 += l.p50_secs;
                    p99 += l.p99_secs;
                }
                attempts += m.total_attempts();
                delivered += m.total_delivered();
            }
            let t = trials as f64;
            DesValidationRow {
                policy: name,
                analytic: analytic / t,
                realized: realized / t,
                gap: (realized / t - analytic / t).abs(),
                p50_latency: p50 / t,
                p99_latency: p99 / t,
                attempts_per_delivery: attempts as f64 / delivered.max(1) as f64,
            }
        })
        .collect()
}

/// Shape check for [`des_validation`]: every policy's realized rate must
/// track its analytic rate, and OSCAR must keep its lead when decisions
/// are realized physically.
pub fn des_validation_shape_holds(rows: &[DesValidationRow]) -> Result<(), String> {
    let tolerance = 0.05; // MC noise over trials × horizon × ~3 req/slot
    for r in rows {
        if r.gap > tolerance {
            return Err(format!(
                "{}: realized {:.4} strays from analytic {:.4} (gap {:.4} > {tolerance})",
                r.policy, r.realized, r.analytic, r.gap
            ));
        }
        if !(0.0..=0.66 + 1e-9).contains(&r.p99_latency) {
            return Err(format!(
                "{}: p99 latency {:.4}s outside the attempt window",
                r.policy, r.p99_latency
            ));
        }
    }
    let oscar = rows
        .iter()
        .find(|r| r.policy == "OSCAR")
        .ok_or("missing OSCAR row")?;
    for r in rows.iter().filter(|r| r.policy != "OSCAR") {
        if oscar.realized <= r.realized {
            return Err(format!(
                "OSCAR realized {:.4} must beat {} at {:.4}",
                oscar.realized, r.policy, r.realized
            ));
        }
    }
    Ok(())
}

/// One row of the online-arrival rate sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineRateRow {
    /// Poisson arrival rate (requests/s).
    pub rate: f64,
    /// Requests that arrived.
    pub requests: usize,
    /// Realized end-to-end success rate over all arrivals.
    pub success: f64,
    /// Total budget units spent.
    pub spend: u64,
    /// What the same arrivals cost with pacing disabled (the
    /// budget-oblivious online ablation).
    pub unpaced_spend: u64,
    /// Delivered connections per second.
    pub throughput: f64,
    /// Mean delivery latency (s), 0 when nothing delivered.
    pub mean_latency: f64,
}

/// The online-arrival sweep: paper-parameterized online router under
/// increasing load. The budget span shrinks with the scale's horizon so
/// `C/T` pacing matches the slotted experiments.
pub fn online_rate_sweep(scale: Scale) -> Vec<OnlineRateRow> {
    let rates = [1.0, PoissonArrivals::paper_rate(), 4.0, 8.0];
    let span = Duration::from_secs_f64(scale.horizon() as f64 * 1.46);
    let trials = scale.trials();
    rates
        .iter()
        .map(|&rate| {
            let mut success = 0.0;
            let mut spend = 0u64;
            let mut unpaced_spend = 0u64;
            let mut throughput = 0.0;
            let mut latency = 0.0;
            let mut requests = 0usize;
            for trial in 0..trials {
                let seed = 0xACE_0FBA5Eu64 + trial as u64;
                let mut config = OnlineConfig::paper_default();
                config.total_budget = scale.scaled_budget(5000.0);
                config.budget_span = span;
                let run_mode = |config: OnlineConfig| {
                    let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
                    let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xbead);
                    let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
                    let mut router = OnlineRouter::new(config);
                    let mut arrivals = PoissonArrivals::new(rate, span).unwrap();
                    run_online(
                        &net,
                        &mut router,
                        &mut arrivals,
                        &mut env_rng,
                        &mut policy_rng,
                    )
                };
                let m = run_mode(config.clone());
                requests += m.total_requests();
                success += m.realized_success_rate();
                spend += m.total_cost();
                throughput += m.throughput_per_sec();
                latency += m.latency_summary().map_or(0.0, |l| l.mean_secs);
                // Same seeds, pacing disabled: the ablation's spend on an
                // identical arrival path.
                unpaced_spend += run_mode(config.unpaced()).total_cost();
            }
            let t = trials as f64;
            OnlineRateRow {
                rate,
                requests,
                success: success / t,
                spend: (spend as f64 / t) as u64,
                unpaced_spend: (unpaced_spend as f64 / t) as u64,
                throughput: throughput / t,
                mean_latency: latency / t,
            }
        })
        .collect()
}

/// Shape check for [`online_rate_sweep`]: success falls with load, spend
/// stays paced (sub-linear in load), throughput does not decrease.
pub fn online_rate_shape_holds(rows: &[OnlineRateRow], budget: f64) -> Result<(), String> {
    for w in rows.windows(2) {
        if w[1].success > w[0].success + 0.02 {
            return Err(format!(
                "success should fall with load: {:.4} @ {:.2}/s -> {:.4} @ {:.2}/s",
                w[0].success, w[0].rate, w[1].success, w[1].rate
            ));
        }
        if w[1].throughput < w[0].throughput * 0.8 {
            return Err(format!(
                "throughput should not collapse with load: {:.3} -> {:.3}",
                w[0].throughput, w[1].throughput
            ));
        }
    }
    // Budget pacing: even at 4x overload the spend stays within ~2x C
    // (the queue is a soft cap; the mandatory n_e ≥ 1 floor is real load).
    if let Some(last) = rows.last() {
        if (last.spend as f64) > 2.0 * budget {
            return Err(format!(
                "online spend {} at {:.1}/s strays beyond 2x budget {budget}",
                last.spend, last.rate
            ));
        }
        // And the unpaced ablation must demonstrate what the queue buys:
        // several times the paced spend under overload.
        if (last.unpaced_spend as f64) < 1.5 * last.spend as f64 {
            return Err(format!(
                "unpaced spend {} should dwarf paced spend {} under overload",
                last.unpaced_spend, last.spend
            ));
        }
    }
    Ok(())
}

/// One row of the decoherence (memory) sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySweepRow {
    /// Quantum-memory lifetime in seconds.
    pub memory_secs: f64,
    /// Mean analytic success (Eq. 2 — memory-oblivious).
    pub analytic: f64,
    /// Realized delivery frequency in the DES.
    pub realized: f64,
    /// Fraction of served requests lost to decoherence.
    pub decohered_frac: f64,
}

/// Sweeps the quantum-memory lifetime below the paper's 1.46 s while
/// keeping the 0.66 s attempt window, quantifying where the per-slot
/// abstraction (Eq. 2) stops being exact: once memory < window, links
/// established early can decohere before the route's last link arrives,
/// so realized success falls *below* the analytic model, and the gap is
/// exactly the decoherence-failure mass the DES attributes.
pub fn des_memory_sweep(scale: Scale) -> Vec<MemorySweepRow> {
    let memories = [0.3f64, 0.5, 0.66, 1.0, 1.46];
    let trials = scale.trials();
    memories
        .iter()
        .map(|&mem| {
            let execution =
                ExecutionConfig::paper_default().with_decoherence(Duration::from_secs_f64(mem));
            let config = SlottedDesConfig {
                horizon: scale.horizon(),
                execution,
                // Slots stay 1.46 s apart regardless of memory.
                slot_len: Duration::from_secs_f64(1.46),
            };
            let mut analytic = 0.0;
            let mut realized = 0.0;
            let mut decohered = 0usize;
            let mut served = 0usize;
            for trial in 0..trials {
                let seed = 0xDEC0_4E5Eu64 + trial as u64;
                let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x1234);
                let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
                let mut wl = UniformWorkload::paper_default();
                let mut dynamics = StaticDynamics;
                let mut policy = OscarPolicy::new(OscarConfig::paper_default());
                let m = run_slotted(
                    &net,
                    &mut wl,
                    &mut dynamics,
                    &mut policy,
                    &config,
                    &mut env_rng,
                    &mut policy_rng,
                );
                analytic += m.expected_success_rate();
                realized += m.realized_success_rate();
                let (_, deco, _) = m.failure_histogram();
                decohered += deco;
                served += m.slots().iter().map(|s| s.served).sum::<usize>();
            }
            let t = trials as f64;
            MemorySweepRow {
                memory_secs: mem,
                analytic: analytic / t,
                realized: realized / t,
                decohered_frac: decohered as f64 / served.max(1) as f64,
            }
        })
        .collect()
}

/// Shape check for [`des_memory_sweep`]: realized success is monotone
/// non-decreasing in memory; with memory ≥ the attempt window the
/// analytic model is exact (no decoherence, gap ≈ MC noise); with
/// memory well below the window the model visibly over-promises.
pub fn des_memory_shape_holds(rows: &[MemorySweepRow]) -> Result<(), String> {
    for w in rows.windows(2) {
        if w[1].realized + 0.02 < w[0].realized {
            return Err(format!(
                "realized success should not fall as memory grows: \
                 {:.4} @ {}s -> {:.4} @ {}s",
                w[0].realized, w[0].memory_secs, w[1].realized, w[1].memory_secs
            ));
        }
        if w[1].decohered_frac > w[0].decohered_frac + 0.01 {
            return Err(format!(
                "decoherence losses should shrink with memory: \
                 {:.4} @ {}s -> {:.4} @ {}s",
                w[0].decohered_frac, w[0].memory_secs, w[1].decohered_frac, w[1].memory_secs
            ));
        }
    }
    let shortest = rows.first().ok_or("empty sweep")?;
    if shortest.analytic - shortest.realized < 0.05 {
        return Err(format!(
            "at {}s memory the analytic model should visibly over-promise \
             (analytic {:.4}, realized {:.4})",
            shortest.memory_secs, shortest.analytic, shortest.realized
        ));
    }
    if shortest.decohered_frac < 0.02 {
        return Err(format!(
            "at {}s memory decoherence should be a visible failure mode, got {:.4}",
            shortest.memory_secs, shortest.decohered_frac
        ));
    }
    let longest = rows.last().ok_or("empty sweep")?;
    if (longest.analytic - longest.realized).abs() > 0.05 {
        return Err(format!(
            "at {}s memory (the paper's regime) Eq. 2 must be exact: \
             analytic {:.4}, realized {:.4}",
            longest.memory_secs, longest.analytic, longest.realized
        ));
    }
    if longest.decohered_frac > 0.0 {
        return Err("paper-regime memory cannot decohere within the window".into());
    }
    Ok(())
}

/// One row of the budget-violation comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetViolationRow {
    /// Policy name.
    pub policy: String,
    /// Average total spend across trials.
    pub spend: f64,
    /// Spend as a fraction of the budget `C`.
    pub spend_over_budget: f64,
    /// Average success rate (analytic, slotted engine).
    pub success: f64,
}

/// Budget-violation comparison: OSCAR and MA (budget-aware) against the
/// throughput-greedy strawman that ignores cost entirely.
pub fn budget_violation(scale: Scale) -> Vec<BudgetViolationRow> {
    let budget = scale.scaled_budget(5000.0);
    let horizon = scale.horizon();
    let policies: Vec<Box<dyn Fn() -> Box<dyn RoutingPolicy>>> = vec![
        Box::new(move || {
            let mut cfg = OscarConfig::paper_default().with_budget(budget);
            cfg.horizon = horizon;
            Box::new(OscarPolicy::new(cfg))
        }),
        Box::new(move || {
            let mut cfg = qdn_core::baselines::MyopicConfig::paper_default(
                qdn_core::baselines::BudgetSplit::Adaptive,
            )
            .with_budget(budget);
            cfg.horizon = horizon;
            Box::new(MyopicPolicy::new(cfg))
        }),
        Box::new(|| Box::new(ThroughputGreedyPolicy::default())),
    ];
    let trials = scale.trials();
    policies
        .iter()
        .map(|make| {
            let mut spend = 0.0;
            let mut success = 0.0;
            let mut name = String::new();
            for trial in 0..trials {
                let seed = 0xB0_D6E7u64 + trial as u64;
                let mut env_rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut policy_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xcafe);
                let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
                let mut wl = UniformWorkload::paper_default();
                let mut dynamics = StaticDynamics;
                let mut policy = make();
                let m = qdn_sim::engine::run(
                    &net,
                    &mut wl,
                    &mut dynamics,
                    policy.as_mut(),
                    &qdn_sim::engine::SimConfig {
                        horizon,
                        realize_outcomes: false,
                    },
                    &mut env_rng,
                    &mut policy_rng,
                );
                name = m.policy().to_string();
                spend += m.total_cost() as f64;
                success += m.avg_success();
            }
            let t = trials as f64;
            BudgetViolationRow {
                policy: name,
                spend: spend / t,
                spend_over_budget: spend / t / budget,
                success: success / t,
            }
        })
        .collect()
}

/// Shape check for [`budget_violation`]: the budget-aware policies land
/// near `C`; the throughput strawman overshoots it severely.
pub fn budget_violation_shape_holds(rows: &[BudgetViolationRow]) -> Result<(), String> {
    for r in rows {
        match r.policy.as_str() {
            "OSCAR" => {
                if !(0.5..=1.15).contains(&r.spend_over_budget) {
                    return Err(format!(
                        "OSCAR spend/budget {:.3} outside [0.5, 1.15]",
                        r.spend_over_budget
                    ));
                }
            }
            "MA" => {
                if r.spend_over_budget > 1.0 + 1e-9 {
                    return Err(format!(
                        "MA must respect its hard per-slot caps, got {:.3}",
                        r.spend_over_budget
                    ));
                }
            }
            "Throughput-Greedy" => {
                if r.spend_over_budget < 1.5 {
                    return Err(format!(
                        "Throughput-Greedy should blow the budget, got only {:.3}x",
                        r.spend_over_budget
                    ));
                }
            }
            other => return Err(format!("unexpected policy {other}")),
        }
    }
    // And the strawman's extra spend must buy it the top success rate —
    // otherwise the comparison is vacuous.
    let tg = rows
        .iter()
        .find(|r| r.policy == "Throughput-Greedy")
        .ok_or("missing Throughput-Greedy row")?;
    for r in rows.iter().filter(|r| r.policy != "Throughput-Greedy") {
        if tg.success < r.success - 0.02 {
            return Err(format!(
                "Throughput-Greedy success {:.4} should be at least {}'s {:.4}",
                tg.success, r.policy, r.success
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The builders are exercised end-to-end (and shape-checked) at Quick
    // scale by the `fig_des` binary and the `des_validation` bench; here
    // we only pin the cheap invariants of the row constructors.

    #[test]
    fn validation_rows_cover_all_policies() {
        let rows = des_validation(Scale::Quick);
        let names: Vec<&str> = rows.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(names, vec!["OSCAR", "MF", "MA"]);
        assert!(des_validation_shape_holds(&rows).is_ok());
    }

    #[test]
    fn budget_violation_rows_and_shape() {
        let rows = budget_violation(Scale::Quick);
        assert_eq!(rows.len(), 3);
        assert!(
            budget_violation_shape_holds(&rows).is_ok(),
            "shape: {rows:?}"
        );
    }
}
