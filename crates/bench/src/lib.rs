//! Benchmark harness reproducing the paper's evaluation (§V).
//!
//! Every figure of the paper has a builder in [`figures`] that runs the
//! corresponding experiment and returns a structured output which both
//! the `fig*` binaries (full paper scale) and the Criterion benches
//! (quick scale + timing) print as CSV series. [`scale`] holds the two
//! problem sizes; [`report`] the printing helpers.
//!
//! | Paper artifact | Builder | Binary | Bench |
//! |---|---|---|---|
//! | Fig. 3 (a,b,c) time-evolving | [`figures::fig3`] | `fig3` | `fig3_time_evolving` |
//! | Fig. 4 fairness distribution | [`figures::fig4`] | `fig4` | `fig4_fairness` |
//! | Fig. 5 budget sweep | [`figures::fig5`] | `fig5` | `fig5_budget` |
//! | Fig. 6 network-size sweep | [`figures::fig6`] | `fig6` | `fig6_network_size` |
//! | Fig. 7 V sweep | [`figures::fig7`] | `fig7` | `fig7_v_param` |
//! | Fig. 8 q0 sweep | [`figures::fig8`] | `fig8` | `fig8_q0` |
//! | Route-selection ablation | [`figures::ablation_route_selection`] | `fig_ablation` | `ablation_route_selection` |
//! | Gibbs γ ablation | [`figures::ablation_gamma`] | `fig_ablation` | `ablation_gamma` |
//! | Allocation ablation | [`figures::ablation_allocation`] | `fig_ablation` | `ablation_allocation` |
//! | Imperfect-swap extension | [`figures::extension_swap`] | `fig_extensions` | `extensions` |
//! | Resource-dynamics extension | [`figures::extension_dynamics`] | `fig_extensions` | `extensions` |
//! | Multi-EC extension | [`figures::extension_multi_ec`] | `fig_extensions` | `extensions` |
//! | Topology-family extension | [`figures::extension_topologies`] | `fig_extensions` | `extensions` |
//! | Fidelity-constraint extension | [`figures::extension_fidelity`] | `fig_extensions` | `extensions` |
//! | Attempt-level (DES) validation | [`des::des_validation`] | `fig_des` | `des_validation` |
//! | Memory (decoherence) sweep | [`des::des_memory_sweep`] | `fig_des` | `des_validation` |
//! | Online-arrival rate sweep (paced vs unpaced) | [`des::online_rate_sweep`] | `fig_des` | `des_validation` |
//! | Budget-violation comparison | [`des::budget_violation`] | `fig_des` | `des_validation` |

#![forbid(unsafe_code)]
pub mod des;
pub mod figures;
pub mod report;
pub mod scale;

pub use scale::Scale;
