//! Fig. 5 bench: prints the quick-scale budget sweep and times one sweep
//! point.

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_bench::figures::{fig5, fig5_shape_holds, oscar_config};
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;
use qdn_sim::engine::SimConfig;
use qdn_sim::experiment::{Experiment, PolicySpec};
use qdn_sim::trial::TrialConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = fig5(Scale::Quick);
    println!(
        "\n# Fig. 5 budget sweep (Quick scale)\n{}",
        sweep_table("budget", &points)
    );
    println!("{}", sweep_csv("budget", &points));
    match fig5_shape_holds(&points) {
        Ok(()) => println!("shape check: OK"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("oscar_one_budget_point_10slots", |b| {
        b.iter(|| {
            let mut e = Experiment::paper_default("bench");
            e.policies = vec![PolicySpec::Oscar(
                oscar_config(Scale::Quick).with_budget(1000.0),
            )];
            e.trials = TrialConfig {
                trials: 1,
                base_seed: 2,
                threads: 0,
                sim: SimConfig {
                    horizon: 10,
                    realize_outcomes: true,
                },
            };
            black_box(e.run())
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
