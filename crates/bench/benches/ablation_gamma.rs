//! Gibbs temperature ablation bench: the exploration/exploitation knob
//! γ of Eq. 15.

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_bench::figures::ablation_gamma;
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;
use qdn_core::route_selection::gibbs::acceptance_probability;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = ablation_gamma(Scale::Quick);
    println!(
        "\n# Ablation: Gibbs γ (Quick scale)\n{}",
        sweep_table("gamma", &points)
    );
    println!("{}", sweep_csv("gamma", &points));

    let mut group = c.benchmark_group("ablation_gamma");
    group.bench_function("acceptance_probability_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                acc += acceptance_probability(i as f64, 500.0 - i as f64, 500.0);
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
