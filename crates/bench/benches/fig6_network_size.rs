//! Fig. 6 bench: prints the quick-scale network-size sweep — extended
//! with the `Scale::Large` 50-node/25-pair point — and times topology
//! generation + candidate-route computation at the 30-node paper top
//! end and the 50-node large scale.

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_bench::figures::{fig6, fig6_large_point, fig6_shape_holds};
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;
use qdn_net::routes::{CandidateRoutes, RouteLimits};
use qdn_net::workload::random_sd_pair;
use qdn_net::NetworkConfig;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut points = fig6(Scale::Quick);
    points.push(fig6_large_point(Scale::Quick));
    println!(
        "\n# Fig. 6 network-size sweep (Quick scale, + Scale::Large point)\n{}",
        sweep_table("nodes", &points)
    );
    println!("{}", sweep_csv("nodes", &points));
    match fig6_shape_holds(&points) {
        Ok(()) => println!("shape check: OK"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }

    let mut group = c.benchmark_group("fig6");
    for nodes in [30, Scale::Large.nodes()] {
        group.bench_function(format!("build_{nodes}node_network"), |b| {
            b.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(7);
                black_box(
                    NetworkConfig::paper_default()
                        .with_nodes(nodes)
                        .build(&mut rng)
                        .unwrap(),
                )
            });
        });
        group.bench_function(format!("candidate_routes_{nodes}node"), |b| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let net = NetworkConfig::paper_default()
                .with_nodes(nodes)
                .build(&mut rng)
                .unwrap();
            b.iter(|| {
                let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
                let pair = random_sd_pair(&mut rng, &net);
                black_box(cr.routes(&net, pair).len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
