//! Fig. 8 bench: prints the quick-scale q0 sweep and times the virtual
//! queue recursion (a sanity floor for the harness).

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_bench::figures::{fig8, fig8_shape_holds};
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;
use qdn_core::lyapunov::VirtualQueue;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = fig8(Scale::Quick);
    println!(
        "\n# Fig. 8 q0 sweep (Quick scale)\n{}",
        sweep_table("q0", &points)
    );
    println!("{}", sweep_csv("q0", &points));
    match fig8_shape_holds(&points) {
        Ok(()) => println!("shape check: OK"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }

    let mut group = c.benchmark_group("fig8");
    group.bench_function("virtual_queue_update_1k", |b| {
        b.iter(|| {
            let mut q = VirtualQueue::new(10.0, 5000.0, 200);
            for i in 0..1000u64 {
                black_box(q.update(i % 40));
            }
            black_box(q.value())
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
