//! Fig. 7 bench: prints the quick-scale V sweep and times the per-slot
//! P2 solve at two V extremes.

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_bench::figures::{fig7, fig7_shape_holds};
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;
use qdn_core::allocation::AllocationMethod;
use qdn_core::problem::PerSlotContext;
use qdn_core::route_selection::{Candidates, RouteSelector};
use qdn_net::routes::{CandidateRoutes, RouteLimits};
use qdn_net::workload::random_sd_pair;
use qdn_net::{CapacitySnapshot, NetworkConfig};
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = fig7(Scale::Quick);
    println!(
        "\n# Fig. 7 V sweep (Quick scale)\n{}",
        sweep_table("V", &points)
    );
    println!("{}", sweep_csv("V", &points));
    match fig7_shape_holds(&points) {
        Ok(()) => println!("shape check: OK"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }

    // Per-slot P2 solve timing at low and high V.
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
    let pairs: Vec<_> = (0..3).map(|_| random_sd_pair(&mut rng, &net)).collect();
    let owned: Vec<_> = pairs
        .iter()
        .map(|&p| (p, cr.routes(&net, p).to_vec()))
        .collect();

    let mut group = c.benchmark_group("fig7");
    for v in [500.0, 10000.0] {
        group.bench_function(format!("p2_solve_v{v}"), |b| {
            let cands: Vec<Candidates> = owned
                .iter()
                .map(|(pair, routes)| Candidates {
                    pair: *pair,
                    routes,
                })
                .collect();
            let ctx = PerSlotContext::oscar(&net, &snap, v, 10.0);
            let selector = RouteSelector::default();
            b.iter(|| {
                black_box(selector.select(&ctx, &cands, &AllocationMethod::default(), &mut rng))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
