//! Fig. 3 bench: prints the quick-scale time-evolving series and times
//! the core simulation loop.

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_bench::figures::{fig3, paper_policies};
use qdn_bench::report::{fig3_csv, fig3_summary};
use qdn_bench::Scale;
use qdn_sim::engine::SimConfig;
use qdn_sim::experiment::Experiment;
use qdn_sim::trial::TrialConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Regenerate the figure once so `cargo bench` output contains the
    // paper's series.
    let out = fig3(Scale::Quick);
    println!("\n# Fig. 3 series (Quick scale)\n{}", fig3_summary(&out));
    println!("{}", fig3_csv(&out));
    match out.shape_holds() {
        Ok(()) => println!("shape check: OK"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("three_policies_1trial_10slots", |b| {
        b.iter(|| {
            let mut e = Experiment::paper_default("bench");
            e.policies = paper_policies(Scale::Quick);
            e.trials = TrialConfig {
                trials: 1,
                base_seed: 1,
                threads: 0,
                sim: SimConfig {
                    horizon: 10,
                    realize_outcomes: true,
                },
            };
            black_box(e.run())
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
