//! Event-driven experiments at quick scale plus timing loops for the DES
//! kernels: route execution, event-queue churn, and a full online run.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_bench::des::{budget_violation, des_validation, online_rate_sweep};
use qdn_bench::Scale;
use qdn_des::arrivals::PoissonArrivals;
use qdn_des::exec::{execute_route, EdgeTask, ExecutionConfig};
use qdn_des::online::{run_online, OnlineConfig, OnlineRouter};
use qdn_des::queue::EventQueue;
use qdn_des::time::SimTime;
use qdn_graph::EdgeId;
use qdn_net::NetworkConfig;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = des_validation(Scale::Quick);
    println!("\n# DES validation (Quick scale)");
    for r in &rows {
        println!(
            "{:<18} analytic {:.4} realized {:.4} gap {:.4} p50 {:.4}s p99 {:.4}s",
            r.policy, r.analytic, r.realized, r.gap, r.p50_latency, r.p99_latency
        );
    }

    let online = online_rate_sweep(Scale::Quick);
    println!("\n# Online rate sweep (Quick scale)");
    for r in &online {
        println!(
            "rate {:>5.2}/s success {:.4} spend {:>5} thruput {:.3}/s",
            r.rate, r.success, r.spend, r.throughput
        );
    }

    let violation = budget_violation(Scale::Quick);
    println!("\n# Budget violation (Quick scale)");
    for r in &violation {
        println!(
            "{:<18} spend {:>8.1} ({:.2}x C) success {:.4}",
            r.policy, r.spend, r.spend_over_budget, r.success
        );
    }

    let mut group = c.benchmark_group("des");

    // Kernel 1: one 3-hop route execution (the unit of all DES work).
    let cfg = ExecutionConfig::paper_default();
    let tasks: Vec<EdgeTask> = (0..3)
        .map(|i| EdgeTask::new(EdgeId(i), 2e-4, 2).unwrap())
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    group.bench_function("execute_route_3hops", |b| {
        b.iter(|| {
            black_box(execute_route(
                SimTime::ZERO,
                black_box(&tasks),
                &cfg,
                &mut rng,
            ))
        });
    });

    // Kernel 2: event-queue schedule/pop churn at 1k pending events.
    group.bench_function("event_queue_churn_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.payload);
            }
            black_box(sum)
        });
    });

    // Kernel 3: a short end-to-end online run (arrivals + routing +
    // physics + resource ledger).
    group.sample_size(10);
    group.bench_function("online_run_20s_paper_rate", |b| {
        b.iter(|| {
            let mut env_rng = rand::rngs::StdRng::seed_from_u64(2);
            let mut policy_rng = rand::rngs::StdRng::seed_from_u64(3);
            let net = NetworkConfig::paper_default().build(&mut env_rng).unwrap();
            let mut router = OnlineRouter::new(OnlineConfig::paper_default());
            let mut arrivals =
                PoissonArrivals::new(PoissonArrivals::paper_rate(), Duration::from_secs(20))
                    .unwrap();
            black_box(run_online(
                &net,
                &mut router,
                &mut arrivals,
                &mut env_rng,
                &mut policy_rng,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
