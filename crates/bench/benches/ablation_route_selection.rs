//! Route-selection ablation bench: Gibbs vs its parallel variant vs
//! greedy local search vs first-route vs random, plus per-selector
//! timing of a single per-slot solve.

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_bench::figures::ablation_route_selection;
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;
use qdn_core::allocation::AllocationMethod;
use qdn_core::problem::PerSlotContext;
use qdn_core::profile_eval::EvalOptions;
use qdn_core::route_selection::{Candidates, GibbsConfig, RouteSelector};
use qdn_net::routes::{CandidateRoutes, RouteLimits};
use qdn_net::workload::random_sd_pair;
use qdn_net::{CapacitySnapshot, NetworkConfig};
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = ablation_route_selection(Scale::Quick);
    println!(
        "\n# Ablation: route selection (Quick scale)\n{}",
        sweep_table("variant", &points)
    );
    println!("{}", sweep_csv("variant", &points));

    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
    let pairs: Vec<_> = (0..4).map(|_| random_sd_pair(&mut rng, &net)).collect();
    let owned: Vec<_> = pairs
        .iter()
        .map(|&p| (p, cr.routes(&net, p).to_vec()))
        .collect();
    let cands: Vec<Candidates> = owned
        .iter()
        .map(|(pair, routes)| Candidates {
            pair: *pair,
            routes,
        })
        .collect();
    let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);

    let selectors: Vec<(&str, RouteSelector)> = vec![
        ("gibbs", RouteSelector::Gibbs(GibbsConfig::paper_default())),
        (
            "greedy_local",
            RouteSelector::GreedyLocal {
                max_rounds: 4,
                evaluator: EvalOptions::default(),
            },
        ),
        ("first", RouteSelector::First),
        ("random", RouteSelector::Random),
    ];
    let mut group = c.benchmark_group("ablation_route_selection");
    group.sample_size(10);
    for (name, selector) in selectors {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(selector.select(&ctx, &cands, &AllocationMethod::default(), &mut rng))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
