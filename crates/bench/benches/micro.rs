//! Micro-benchmarks of the hot kernels: Yen's KSP, the dual solver, the
//! greedy allocator, one Gibbs iteration worth of work, and the
//! attempt-level Monte Carlo.

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_graph::ksp::yen_k_shortest;
use qdn_graph::paths::hop_weight;
use qdn_net::workload::random_sd_pair;
use qdn_net::NetworkConfig;
use qdn_physics::link::LinkModel;
use qdn_physics::monte_carlo::simulate_route;
use qdn_physics::swap::SwapModel;
use qdn_solve::greedy::greedy_allocate;
use qdn_solve::relaxed::{solve_relaxed, RelaxedOptions};
use qdn_solve::rounding::round_down_and_fill;
use qdn_solve::{AllocationInstance, PackingConstraint, Variable};
use rand::SeedableRng;
use std::hint::black_box;

fn instance(nv: usize) -> AllocationInstance {
    let vars: Vec<Variable> = (0..nv).map(|_| Variable::new(0.5507)).collect();
    let mut constraints = Vec::new();
    for j in 0..nv {
        constraints.push(PackingConstraint::new(7, vec![j]));
    }
    for j in 0..nv.saturating_sub(1) {
        constraints.push(PackingConstraint::new(12, vec![j, j + 1]));
    }
    AllocationInstance::new(vars, constraints, 2500.0, 15.0).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();

    let mut group = c.benchmark_group("micro");

    group.bench_function("yen_k4_paper_topology", |b| {
        b.iter(|| {
            let pair = random_sd_pair(&mut rng, &net);
            black_box(yen_k_shortest(
                net.graph(),
                pair.source(),
                pair.destination(),
                4,
                &hop_weight,
            ))
        });
    });

    let inst = instance(12);
    group.bench_function("dual_solve_12vars", |b| {
        b.iter(|| black_box(solve_relaxed(&inst, &RelaxedOptions::default()).unwrap()));
    });

    group.bench_function("relax_round_12vars", |b| {
        let relaxed = solve_relaxed(&inst, &RelaxedOptions::default()).unwrap();
        b.iter(|| black_box(round_down_and_fill(&inst, &relaxed.x).unwrap()));
    });

    group.bench_function("greedy_allocate_12vars", |b| {
        b.iter(|| black_box(greedy_allocate(&inst).unwrap()));
    });

    let link = LinkModel::paper_default();
    group.bench_function("monte_carlo_route_3hops", |b| {
        b.iter(|| {
            black_box(simulate_route(
                &mut rng,
                [(link, 3), (link, 3), (link, 3)],
                &SwapModel::perfect(),
            ))
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
