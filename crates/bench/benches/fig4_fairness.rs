//! Fig. 4 bench: prints the quick-scale success-rate distribution and
//! times the distribution pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_bench::figures::fig4;
use qdn_bench::report::{fig4_csv, fig4_summary};
use qdn_bench::Scale;
use qdn_sim::stats::Histogram;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let out = fig4(Scale::Quick);
    println!(
        "\n# Fig. 4 distribution (Quick scale)\n{}",
        fig4_summary(&out.rows)
    );
    println!("{}", fig4_csv(&out));
    match out.shape_holds() {
        Ok(()) => println!("shape check: OK"),
        Err(e) => println!("shape check: FAILED — {e}"),
    }

    // Histogram construction micro-bench on a realistic sample size.
    let probs: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64 / 100.0).collect();
    let mut group = c.benchmark_group("fig4");
    group.bench_function("histogram_10k", |b| {
        b.iter(|| black_box(Histogram::new(&probs, 0.0, 1.0, 10)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
