//! Profile-evaluation engine benchmarks: the incremental
//! component-decomposed `ProfileEvaluator` against the seed's
//! build-from-scratch `PerSlotContext::evaluate` path.
//!
//! Three access patterns per pair count (1/5/10 at the paper's 20-node
//! Waxman topology):
//!
//! * `full_rebuild_move` — the seed's per-proposal cost: one pair flips
//!   between two routes, every evaluation rebuilds and re-solves the
//!   joint instance;
//! * `incremental_move` — the same flips through the evaluator: after the
//!   first two solves, every evaluation is a memo hit (the revisit
//!   pattern Gibbs chains exhibit);
//! * `incremental_cold_eval` — a fresh evaluator and a single all-miss
//!   evaluation per iteration: the engine's cold cost (construction +
//!   component solves), the fair "no memo help at all" comparison.
//!
//! A 100-node network of 25 independent diamond gadgets (one pair each)
//! demonstrates the super-linear regime: every pair is its own coupling
//! component, so a single-pair move re-solves 1/25th of the constraint
//! system — and each component's route space is tiny, so the memo
//! saturates and steady-state evaluations cost nanoseconds while the
//! full-rebuild path keeps re-solving all 25 pairs. (Random SD pairs on
//! a connected Waxman graph do *not* decouple — their Yen candidate
//! routes chain every pair into one component, which is why the sparse
//! regime needs a topology with isolated regions.)
//!
//! The `dual_solver_paper20` and `warm_vs_cold_paper20` groups measure
//! the PR-2 solver rework directly: raw cold vs warm-started
//! `solve_relaxed` on the joint paper-scale instance, and the evaluator
//! walk with `RelaxedOptions::warm_start` on/off. The
//! `accel_vs_subgradient` group (PR 3) pits the two `DualMethod`s
//! against each other on the same joint instance: the accelerated rows
//! stop early on a certified 1e-4 gap where the subgradient rows burn
//! the full 600-iteration budget.
//!
//! The `dynamic_vs_static_partition` group (PR 4) measures the
//! profile-local dynamic partition against the static candidate-union
//! engine on cold single-pair moves — see [`bench_dynamic_vs_static`]
//! for the two scenarios and what each one demonstrates. The
//! `profile_eval_wax50` group runs the standard access patterns at
//! `Scale::Large` (50-node Waxman, 25 pairs). The `churn_recovery`
//! group (PR 6) measures region-scoped vs global session invalidation
//! under sustained link churn — see [`bench_churn_recovery`].
//!
//! Run with `CRITERION_JSON=BENCH_profile_eval.json` to append one JSON
//! line per benchmark (relative paths resolve against the workspace
//! root — see the criterion shim); the committed snapshot is produced
//! this way, and `scripts/bench-gate.sh` compares fresh runs against it.

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_core::allocation::AllocationMethod;
use qdn_core::problem::PerSlotContext;
use qdn_core::profile_eval::{EvalOptions, PartitionMode, ProfileEvaluator};
use qdn_core::route_selection::{gibbs, Candidates, GibbsConfig};
use qdn_graph::Path;
use qdn_net::routes::{CandidateRoutes, RouteLimits};
use qdn_net::workload::random_sd_pair;
use qdn_net::{CapacitySnapshot, NetworkConfig, QdnNetwork, SdPair};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

/// Distinct SD pairs with their candidate routes.
fn make_candidates(net: &QdnNetwork, n_pairs: usize, rng: &mut StdRng) -> Vec<(SdPair, Vec<Path>)> {
    let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
    let mut out: Vec<(SdPair, Vec<Path>)> = Vec::new();
    while out.len() < n_pairs {
        let pair = random_sd_pair(rng, net);
        if out.iter().any(|(p, _)| *p == pair) {
            continue;
        }
        let routes = cr.routes(net, pair).to_vec();
        if routes.is_empty() {
            continue;
        }
        out.push((pair, routes));
    }
    out
}

fn to_cands(owned: &[(SdPair, Vec<Path>)]) -> Vec<Candidates<'_>> {
    owned
        .iter()
        .map(|(pair, routes)| Candidates {
            pair: *pair,
            routes,
        })
        .collect()
}

fn bench_scale(
    c: &mut Criterion,
    group_name: &str,
    net: &QdnNetwork,
    pair_counts: &[usize],
    seed: u64,
) {
    let snap = CapacitySnapshot::full(net);
    let ctx = PerSlotContext::oscar(net, &snap, 2500.0, 10.0);
    let method = AllocationMethod::default();

    let mut group = c.benchmark_group(group_name);
    group.sample_size(15);

    for &n_pairs in pair_counts {
        let mut rng = StdRng::seed_from_u64(seed);
        let owned = make_candidates(net, n_pairs, &mut rng);
        let cands = to_cands(&owned);
        // The move: pair 0 alternates between its first two routes (or
        // stays put if it has a single candidate).
        let alt = 1.min(cands[0].routes.len() - 1);
        let base: Vec<usize> = vec![0; n_pairs];
        let mut moved = base.clone();
        moved[0] = alt;

        group.bench_function(format!("full_rebuild_move/{n_pairs}_pairs"), |b| {
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let indices = if flip { &moved } else { &base };
                let profile: Vec<(SdPair, &Path)> = cands
                    .iter()
                    .zip(indices)
                    .map(|(c, &i)| (c.pair, &c.routes[i]))
                    .collect();
                black_box(ctx.evaluate_objective(&profile, &method))
            });
        });

        // Evaluator state lives *outside* the sample closure so the
        // steady-state (post-warm-up) cost is what gets measured.
        let mut eval = ProfileEvaluator::new(&ctx, &cands, &method, EvalOptions::default());
        let mut flip = false;
        group.bench_function(format!("incremental_move/{n_pairs}_pairs"), |b| {
            b.iter(|| {
                flip = !flip;
                let indices = if flip { &moved } else { &base };
                black_box(eval.evaluate_objective(indices))
            });
        });

        // Cold cost: fresh evaluator + one all-miss evaluation per
        // iteration. (A persistent "fresh walk" would saturate the small
        // per-component route spaces within a sample batch and silently
        // measure memo hits instead of misses.)
        group.bench_function(format!("incremental_cold_eval/{n_pairs}_pairs"), |b| {
            b.iter(|| {
                let mut eval = ProfileEvaluator::new(&ctx, &cands, &method, EvalOptions::default());
                black_box(eval.evaluate_objective(&base))
            });
        });
    }
    group.finish();
}

fn bench_gibbs_end_to_end(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
    let method = AllocationMethod::default();
    let mut pairs_rng = StdRng::seed_from_u64(11);
    let owned = make_candidates(&net, 10, &mut pairs_rng);
    let cands = to_cands(&owned);
    let config = GibbsConfig::paper_default();

    let mut group = c.benchmark_group("gibbs_select");
    group.sample_size(10);
    group.bench_function("incremental/10_pairs_48_iters", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(gibbs::sample(&ctx, &cands, &method, &config, &mut rng)));
    });
    group.bench_function("full_rebuild_replica/10_pairs_48_iters", |b| {
        // The seed's evaluation strategy, reproduced: every proposal
        // evaluated by rebuilding and re-solving the joint instance.
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(full_rebuild_gibbs(&ctx, &cands, &method, &config, &mut rng)));
    });
    group.finish();
}

/// The seed's Gibbs loop, evaluating through
/// `PerSlotContext::evaluate_objective` (full instance rebuild per
/// proposal) — kept here as the benchmark baseline.
fn full_rebuild_gibbs(
    ctx: &PerSlotContext<'_>,
    candidates: &[Candidates<'_>],
    method: &AllocationMethod,
    config: &GibbsConfig,
    rng: &mut StdRng,
) -> Option<(Vec<usize>, f64)> {
    let k = candidates.len();
    let objective_of = |indices: &[usize]| {
        let profile: Vec<(SdPair, &Path)> = candidates
            .iter()
            .zip(indices)
            .map(|(c, &i)| (c.pair, &c.routes[i]))
            .collect();
        ctx.evaluate_objective(&profile, method)
    };
    let mut current: Option<(Vec<usize>, f64)> = None;
    for _ in 0..config.max_init_attempts.max(1) {
        let indices: Vec<usize> = candidates
            .iter()
            .map(|c| rng.random_range(0..c.routes.len()))
            .collect();
        if let Some(f) = objective_of(&indices) {
            current = Some((indices, f));
            break;
        }
    }
    let (mut indices, mut f_cur) = current?;
    let mut best = (indices.clone(), f_cur);
    let mut gamma = config.gamma;
    for _ in 0..config.iterations {
        let i = rng.random_range(0..k);
        if candidates[i].routes.len() >= 2 {
            let old = indices[i];
            let mut proposal = rng.random_range(0..candidates[i].routes.len() - 1);
            if proposal >= old {
                proposal += 1;
            }
            indices[i] = proposal;
            match objective_of(&indices) {
                Some(f_new) => {
                    if rng.random_bool(gibbs::acceptance_probability(f_new, f_cur, gamma)) {
                        f_cur = f_new;
                    } else {
                        indices[i] = old;
                    }
                }
                None => indices[i] = old,
            }
        }
        if f_cur > best.1 {
            best = (indices.clone(), f_cur);
        }
        gamma *= config.gamma_decay;
    }
    Some(best)
}

/// Raw dual-solver benches on the paper-scale joint instance (the one
/// big coupling component 10 random pairs form on the 20-node Waxman
/// graph):
///
/// * `cold_solve` — `solve_relaxed` from λ = 0 on the prebuilt instance:
///   the pure solver cost of a fresh joint solve, no assembly, no
///   rounding;
/// * `warm_solve_neighbor` — `solve_relaxed_warm` seeded with the final
///   λ of a *neighboring* profile (one pair moved to another route),
///   mapped across instances by constraint identity: the warm-start
///   regime the profile evaluator's per-component λ store produces;
/// * `warm_solve_self` — seeded with the instance's own final λ: the
///   best-case floor (restart on an already-solved tuple).
fn bench_dual_solver(c: &mut Criterion) {
    use qdn_core::route_selection::profile_of;
    use qdn_solve::relaxed::{solve_relaxed, solve_relaxed_warm, RelaxedOptions};

    let mut rng = StdRng::seed_from_u64(3);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
    let mut pairs_rng = StdRng::seed_from_u64(11);
    let owned = make_candidates(&net, 10, &mut pairs_rng);
    let cands = to_cands(&owned);
    let opts = RelaxedOptions::default();

    let base: Vec<usize> = vec![0; cands.len()];
    let mut moved = base.clone();
    moved[0] = 1.min(cands[0].routes.len() - 1);
    let inst_base = ctx.build_instance(&profile_of(&cands, &base)).unwrap();
    let inst_moved = ctx.build_instance(&profile_of(&cands, &moved)).unwrap();

    // Seed the base solve with the moved instance's λ, mapped by
    // constraint position. Both instances lay constraints out in
    // first-touch order, so the shared prefix (identical until the moved
    // pair's first touched node) lines up; the tail is approximate —
    // which is the point: a *plausible neighbor* seed, not an exact one.
    // (The evaluator proper maps by node/edge identity instead.)
    let sol_moved = solve_relaxed(&inst_moved, &opts).unwrap();
    let mut neighbor_seed = vec![0.0; inst_base.num_constraints()];
    for (dst, &src) in neighbor_seed.iter_mut().zip(sol_moved.lambda.iter()).take(
        inst_base
            .num_constraints()
            .min(inst_moved.num_constraints()),
    ) {
        *dst = src;
    }
    let sol_base = solve_relaxed(&inst_base, &opts).unwrap();
    let self_seed = sol_base.lambda.clone();

    let mut group = c.benchmark_group("dual_solver_paper20");
    group.sample_size(15);
    group.bench_function("cold_solve/10_pairs", |b| {
        b.iter(|| black_box(solve_relaxed(&inst_base, &opts).unwrap()));
    });
    group.bench_function("warm_solve_neighbor/10_pairs", |b| {
        b.iter(|| black_box(solve_relaxed_warm(&inst_base, &opts, Some(&neighbor_seed)).unwrap()));
    });
    group.bench_function("warm_solve_self/10_pairs", |b| {
        b.iter(|| black_box(solve_relaxed_warm(&inst_base, &opts, Some(&self_seed)).unwrap()));
    });
    group.finish();
}

/// The two dual methods head to head on the paper-scale joint instance
/// (cold solves, same instance as `dual_solver_paper20`): the
/// `accelerated` row certifies the strict 1e-4 gap and stops early, the
/// `subgradient` row exhausts its 600-iteration budget at ~1e-2 — the
/// ROADMAP item (h) comparison, gated by `scripts/bench-gate.sh`.
fn bench_accel_vs_subgradient(c: &mut Criterion) {
    use qdn_core::route_selection::profile_of;
    use qdn_solve::relaxed::{solve_relaxed, DualMethod, RelaxedOptions};

    let mut rng = StdRng::seed_from_u64(3);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
    let mut pairs_rng = StdRng::seed_from_u64(11);
    let owned = make_candidates(&net, 10, &mut pairs_rng);
    let cands = to_cands(&owned);
    let base: Vec<usize> = vec![0; cands.len()];
    let inst = ctx.build_instance(&profile_of(&cands, &base)).unwrap();

    let mut group = c.benchmark_group("accel_vs_subgradient");
    group.sample_size(15);
    for (label, method) in [
        ("subgradient", DualMethod::Subgradient),
        ("accelerated", DualMethod::Accelerated),
    ] {
        let opts = RelaxedOptions {
            method,
            ..RelaxedOptions::default()
        };
        group.bench_function(format!("cold_solve_{label}/10_pairs"), |b| {
            b.iter(|| black_box(solve_relaxed(&inst, &opts).unwrap()));
        });
    }
    group.finish();
}

/// Warm-vs-cold through the evaluator: a fresh evaluator evaluates the
/// base profile (cold joint solve) and then a single-pair move (fresh
/// tuple for the moved component). With `warm_start` the second solve is
/// seeded from the first one's λ; the cold row is the same walk with the
/// flag off, so the row difference isolates the warm-start benefit on
/// the realistic "Gibbs proposes a neighbor" pattern.
fn bench_warm_vs_cold_eval(c: &mut Criterion) {
    use qdn_solve::relaxed::RelaxedOptions;

    let mut rng = StdRng::seed_from_u64(3);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
    let mut pairs_rng = StdRng::seed_from_u64(11);
    let owned = make_candidates(&net, 10, &mut pairs_rng);
    let cands = to_cands(&owned);

    let base: Vec<usize> = vec![0; cands.len()];
    let mut moved = base.clone();
    moved[0] = 1.min(cands[0].routes.len() - 1);

    let cold_method = AllocationMethod::default();
    let warm_method = AllocationMethod::RelaxAndRound(RelaxedOptions {
        warm_start: true,
        ..RelaxedOptions::default()
    });

    let mut group = c.benchmark_group("warm_vs_cold_paper20");
    group.sample_size(15);
    for (label, method) in [("cold", &cold_method), ("warm", &warm_method)] {
        group.bench_function(format!("{label}_move_pair/10_pairs"), |b| {
            b.iter(|| {
                let mut eval = ProfileEvaluator::new(&ctx, &cands, method, EvalOptions::default());
                black_box(eval.evaluate_objective(&base));
                black_box(eval.evaluate_objective(&moved))
            });
        });
    }
    group.finish();
}

/// Ring of `k` corridors (x—m⁰..m³—y: four parallel 2-hop routes) with
/// one bridge pair per consecutive corridor couple, its endpoints wired
/// to all four middles of both corridors (eight 2-hop routes). The
/// candidate-union closure chains every pair into **one** static
/// component — the motivating pathology of the dynamic partition — while
/// any concrete profile couples each bridge to exactly one middle of one
/// corridor, so the profile-local groups have 1–4 pairs. With
/// `RouteLimits { max_routes: 8, max_hops: 2 }` the per-pair route
/// spaces are 4 and 8, so a random move walk (~4⁵·8⁵ ≈ 33M tuples)
/// essentially never revisits a component tuple: every move is a
/// level-1 memo miss.
fn corridor_ring(k: usize) -> (QdnNetwork, Vec<SdPair>) {
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_physics::link::LinkModel;
    let mut b = QdnNetworkBuilder::new();
    let link = LinkModel::new(0.8).unwrap();
    let mut mids: Vec<Vec<_>> = Vec::new();
    let mut pairs = Vec::new();
    for _ in 0..k {
        let x = b.add_node(12);
        let y = b.add_node(12);
        let ms: Vec<_> = (0..4).map(|_| b.add_node(12)).collect();
        for &m in &ms {
            b.add_edge(x, m, 6, link).unwrap();
            b.add_edge(m, y, 6, link).unwrap();
        }
        pairs.push(SdPair::new(x, y).unwrap());
        mids.push(ms);
    }
    for c in 0..k {
        let s = b.add_node(12);
        let t = b.add_node(12);
        for side in [c, (c + 1) % k] {
            for &m in &mids[side] {
                b.add_edge(s, m, 6, link).unwrap();
                b.add_edge(m, t, 6, link).unwrap();
            }
        }
        pairs.push(SdPair::new(s, t).unwrap());
    }
    (b.build(), pairs)
}

/// The PR-4 headline: single-pair-move *cold* evaluation (level-1 memo
/// miss) under the static candidate-union partition vs the dynamic
/// route-keyed refinement, on two paper-scale (10-pair) workloads:
///
/// * `…/10_pairs` — 10 random pairs on the paper's 20-node Waxman
///   graph. Measured reality: at this density the *selected* routes of
///   a profile chain into one connected group for ~97% of moves, so
///   the dynamic partition can only match the static engine (bit-exact
///   components are pinned by the joint solve) — the row documents
///   parity/no-regression in the fully-coupled regime.
/// * `…/10_pairs_ring` — 10 pairs on the [`corridor_ring`], where the
///   candidate closure is one 10-pair static component but concrete
///   profiles couple locally (groups of 1–4). This is the regime the
///   route-keyed refinement targets (QuARC-style profile locality):
///   the static engine re-solves all 10 pairs per move, the dynamic
///   engine re-solves only the groups the move touched — most moves
///   are served entirely from the level-2 group memo. The
///   `dynamic` vs `static` row ratio here is the gated ≥3× acceptance
///   evidence.
///
/// Each iteration moves one random pair to a random route, so (in both
/// scenarios' route spaces) virtually every evaluation is a fresh
/// component tuple. Both modes are bit-identical in results
/// (`dynamic_matches_static_partition` proptest).
fn bench_dynamic_vs_static(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let waxman = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let mut pairs_rng = StdRng::seed_from_u64(11);
    let waxman_owned = make_candidates(&waxman, 10, &mut pairs_rng);

    let (ring, ring_pairs) = corridor_ring(5);
    let mut ring_cr = CandidateRoutes::new(RouteLimits {
        max_routes: 8,
        max_hops: 2,
    });
    let ring_owned: Vec<(SdPair, Vec<Path>)> = ring_pairs
        .iter()
        .map(|&p| (p, ring_cr.routes(&ring, p).to_vec()))
        .collect();

    let mut group = c.benchmark_group("dynamic_vs_static_partition");
    group.sample_size(15);
    for (scenario, net, owned) in [
        ("10_pairs", &waxman, &waxman_owned),
        ("10_pairs_ring", &ring, &ring_owned),
    ] {
        let cands = to_cands(owned);
        let snap = CapacitySnapshot::full(net);
        let ctx = PerSlotContext::oscar(net, &snap, 2500.0, 10.0);
        let method = AllocationMethod::default();
        for (label, options) in [
            (
                "static",
                EvalOptions {
                    partition: PartitionMode::Static,
                    warm_profile_seed: false,
                },
            ),
            ("dynamic", EvalOptions::default()),
        ] {
            if scenario == "10_pairs_ring" {
                // The motivating shape: candidate union = one component.
                let probe = ProfileEvaluator::new(&ctx, &cands, &method, options);
                assert_eq!(probe.component_count(), 1, "ring must chain statically");
            }
            group.bench_function(format!("cold_move_{label}/{scenario}"), |b| {
                let mut eval = ProfileEvaluator::new(&ctx, &cands, &method, options);
                let mut indices: Vec<usize> = vec![0; cands.len()];
                eval.evaluate_objective(&indices);
                let mut walk_rng = StdRng::seed_from_u64(29);
                b.iter(|| {
                    let i = walk_rng.random_range(0..indices.len());
                    indices[i] = walk_rng.random_range(0..cands[i].routes.len());
                    black_box(eval.evaluate_objective_move(&indices, i))
                });
            });
        }
    }
    group.finish();
}

/// The PR-5 headline (`session_vs_fresh`): the full 200-slot OSCAR
/// control loop — virtual queue, candidate fetch, Gibbs route selection,
/// Algorithm-2 allocation — end to end, under two selection-state
/// regimes:
///
/// * `oscar200_cold/*` — a fresh `SelectorSession` every slot: today's
///   (pre-session) path, where each slot rebuilds the evaluator arena
///   and memos and every component solve starts from λ = 0;
/// * `oscar200_session/*` — one session spans the run with the full
///   cross-slot machinery on (`warm_profile_seed` + dual `warm_start`):
///   chains start from the previous slot's selection, and every
///   sub-instance solve seeds from the session λ stores (exact-tuple
///   memo first, dense constraint-identity store otherwise).
///
/// Each regime runs on the paper's `U[1,5]` uniform workload and on the
/// temporally-correlated `PersistentWorkload` (5 sticky pairs, 80%
/// per-slot survival) — the scenario cross-slot seeding targets:
/// consecutive slots share most pairs, so the chain revisits the same
/// component tuples slot after slot and the exact-tuple λ memo turns
/// their accelerated solves into one-or-two-iteration restarts. Both
/// regimes face identical request sample paths (same env seed).
fn bench_session_vs_fresh(c: &mut Criterion) {
    use qdn_core::engine::{decide, EngineState, SlotDecisionRequest};
    use qdn_core::lyapunov::VirtualQueue;
    use qdn_net::workload::{PersistentWorkload, UniformWorkload, Workload};
    use qdn_solve::RelaxedOptions;

    let mut rng = StdRng::seed_from_u64(3);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();

    let cold_selector = GibbsConfig::paper_default();
    let cold_alloc = AllocationMethod::default();
    let session_selector = GibbsConfig {
        evaluator: EvalOptions::warm_seeded(),
        ..GibbsConfig::paper_default()
    };
    let session_alloc = AllocationMethod::RelaxAndRound(RelaxedOptions {
        warm_start: true,
        ..RelaxedOptions::default()
    });

    let mut group = c.benchmark_group("session_vs_fresh");
    group.sample_size(10);
    for (wl_label, persistent) in [("uniform", false), ("persistent", true)] {
        for (mode, gibbs_cfg, alloc, keep_session) in [
            ("cold", &cold_selector, &cold_alloc, false),
            ("session", &session_selector, &session_alloc, true),
        ] {
            let selector = qdn_core::route_selection::RouteSelector::Gibbs(*gibbs_cfg);
            group.bench_function(format!("oscar200_{mode}/{wl_label}"), |b| {
                b.iter(|| {
                    let mut workload: Box<dyn Workload> = if persistent {
                        Box::new(PersistentWorkload::paper_scale())
                    } else {
                        Box::new(UniformWorkload::paper_default())
                    };
                    let mut env_rng = StdRng::seed_from_u64(17);
                    let mut policy_rng = StdRng::seed_from_u64(18);
                    let mut queue = VirtualQueue::new(10.0, 5000.0, 200);
                    let mut state = EngineState::new(RouteLimits::paper_default());
                    let snap = CapacitySnapshot::full(&net);
                    let mut total = 0u64;
                    for t in 0..200u64 {
                        let requests = workload.requests(t, &net, &mut env_rng);
                        let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, queue.value());
                        if !keep_session {
                            // The cold regime: selection state dies
                            // with the slot (the route cache survives
                            // in both regimes).
                            state.session_mut().reset();
                        }
                        let decision = decide(
                            &mut state,
                            SlotDecisionRequest {
                                network: &net,
                                requests: &requests,
                                ctx: &ctx,
                                selector: &selector,
                                allocation: alloc,
                                fidelity_target: None,
                                rng: &mut policy_rng,
                            },
                        );
                        let cost = decision.total_cost();
                        total += cost;
                        queue.update(cost);
                    }
                    black_box(total)
                });
            });
        }
    }
    group.finish();
}

/// End-to-end controller-daemon throughput (PR 7): a real `qdn_serve`
/// daemon on a Unix domain socket, driven by the in-crate load
/// generator for 64 slots per iteration — every decision crosses the
/// wire protocol (length-prefixed JSON frames), the shard fan-out, and
/// the warm per-shard sessions. Eight shards at paper scale. The
/// `persistent_10` row is the session showcase (10 sticky pairs, 80%
/// survival: 2560 request decisions per iteration); `uniform` is the
/// paper's `U[1,5]` arrival mix. Each iteration resets the daemon and
/// replays 256 slots, so the row is a cold start plus steady state.
/// Median per-iteration time directly bounds decisions/sec: 2560
/// decisions in ≤256 ms is the 10k/s floor.
fn bench_serve_throughput(c: &mut Criterion) {
    use qdn_net::workload::WorkloadConfig;
    use qdn_serve::daemon::{serve, Daemon, Listener};
    use qdn_serve::loadgen::{run, LoadConfig};
    use qdn_serve::{Client, ServeConfig};
    use std::os::unix::net::{UnixListener, UnixStream};

    let path = std::env::temp_dir().join(format!("qdn-serve-bench-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let listener = Listener::Unix(UnixListener::bind(&path).unwrap());
    let mut config = ServeConfig::paper_default();
    config.shards = 8;
    let daemon_cfg = config.clone();
    let server = std::thread::spawn(move || {
        let mut daemon = Daemon::new(daemon_cfg).unwrap();
        serve(&mut daemon, &listener).unwrap();
    });
    let mut rng = StdRng::seed_from_u64(config.seed);
    let net = config.network.build(&mut rng).unwrap();
    let mut client = Client::new(UnixStream::connect(&path).unwrap());
    client.hello().unwrap();

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for (label, workload) in [
        ("uniform", WorkloadConfig::paper_default()),
        (
            "persistent_10",
            WorkloadConfig::Persistent {
                pairs_per_slot: 10,
                keep_probability: 0.8,
            },
        ),
    ] {
        let load = LoadConfig {
            slots: 256,
            seed: 11,
            workload,
            faults: Vec::new(),
        };
        group.bench_function(format!("unix_socket_256_slots/{label}"), |b| {
            b.iter(|| {
                client.reset().unwrap();
                let report = run(&mut client, &net, &load).unwrap();
                black_box(report.served)
            });
        });
    }
    group.finish();
    client.shutdown().unwrap();
    server.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

/// `count` disjoint corridors (four parallel 4-hop chains
/// x—aᵢ—bᵢ—cᵢ—y, no bridges); one SD pair per corridor, each its own
/// static region with a 4-tuple route space — small enough that a
/// retained region's memo saturates within a couple of slots, so under
/// region-scoped invalidation the untouched corridors answer without
/// solving at all, while the 4-hop chains keep each flushed re-solve
/// (9 coupled constraints) from being lost in per-slot noise.
fn corridor_field(count: usize) -> (QdnNetwork, Vec<SdPair>) {
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_physics::link::LinkModel;
    let mut b = QdnNetworkBuilder::new();
    let link = LinkModel::new(0.8).unwrap();
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let x = b.add_node(12);
        let y = b.add_node(12);
        for _ in 0..4 {
            let chain: Vec<_> = (0..3).map(|_| b.add_node(12)).collect();
            b.add_edge(x, chain[0], 6, link).unwrap();
            b.add_edge(chain[0], chain[1], 6, link).unwrap();
            b.add_edge(chain[1], chain[2], 6, link).unwrap();
            b.add_edge(chain[2], y, 6, link).unwrap();
        }
        pairs.push(SdPair::new(x, y).unwrap());
    }
    (b.build(), pairs)
}

/// The PR-6 headline (`churn_recovery`): the session decision loop under
/// sustained topology churn on a multi-region topology (16 disjoint
/// corridors, pinned pairs, fixed V and queue price so the shared
/// context never invalidates anything on its own). Every slot one
/// corridor's `x—a⁰` link degrades to a single channel, round-robin:
/// each slot is one degradation plus one recovery, changing the
/// capacity fingerprints of exactly two of the sixteen regions (the
/// candidate sets are untouched, so no route repair runs and the row
/// difference is not diluted by common Yen work).
///
/// * `region_scoped/*` — region-scoped invalidation (the default): the
///   fourteen untouched corridors answer Gibbs proposals from memos retained
///   across slots, only the cut and repaired regions re-solve;
/// * `global_flush/*` — the pre-PR-6 semantics via
///   `SelectorSession::set_global_invalidation`: any churn flushes every
///   region, so every corridor re-solves its whole route space each
///   slot.
///
/// Both rows use the subgradient dual method: its fixed iteration
/// budget gives every memo miss the same non-trivial price, so the row
/// difference is a clean count of the re-solves each invalidation
/// policy triggers rather than an artifact of adaptive early stopping.
/// Decisions are bit-identical between the rows (the
/// `churn_matches_cold_rebuild` proptest pins session-vs-cold, and
/// global flush only discards *more*) — the row ratio is pure post-cut
/// decision latency, the gated ≥1.5× acceptance evidence.
fn bench_churn_recovery(c: &mut Criterion) {
    use qdn_core::engine::{decide, EngineState, SlotDecisionRequest};
    use qdn_core::route_selection::RouteSelector;
    use qdn_solve::relaxed::{DualMethod, RelaxedOptions};

    let (net, pairs) = corridor_field(16);
    // A short Gibbs budget: the per-iteration memo-hit evaluations are
    // identical in both rows (pure common cost), while every flushed
    // region pays its re-solves regardless of chain length — so a short
    // chain measures the invalidation policy, not the sampler.
    let selector = RouteSelector::Gibbs(GibbsConfig {
        iterations: 8,
        ..GibbsConfig::paper_default()
    });
    // Subgradient with a deep iteration budget prices every memo miss
    // at a constant, non-trivial cost, so the row difference is a clean
    // count of the re-solves each invalidation policy triggers (the
    // per-slot Gibbs/bookkeeping cost is identical in both rows).
    let method = AllocationMethod::RelaxAndRound(RelaxedOptions {
        method: DualMethod::Subgradient,
        max_iterations: 3000,
        ..RelaxedOptions::default()
    });
    let installed_q: Vec<u32> = net
        .graph()
        .node_ids()
        .map(|v| net.qubit_capacity(v))
        .collect();
    let installed_w: Vec<u32> = net
        .graph()
        .edge_ids()
        .map(|e| net.channel_capacity(e))
        .collect();

    let mut group = c.benchmark_group("churn_recovery");
    group.sample_size(10);
    for (label, global) in [("region_scoped", false), ("global_flush", true)] {
        group.bench_function(format!("{label}/16_corridors_32_slots"), |b| {
            b.iter(|| {
                let mut state = EngineState::new(RouteLimits {
                    max_routes: 4,
                    max_hops: 4,
                });
                state.session_mut().set_global_invalidation(global);
                let mut policy_rng = StdRng::seed_from_u64(23);
                let mut total = 0u64;
                for t in 0..32usize {
                    // Corridor t mod 16 loses half the channels of
                    // its x—a⁰ link (edge 16c) for the slot; last
                    // slot's victim recovers. A partial degradation
                    // (not a cut) keeps the candidate sets intact and
                    // the allocation loose, so neither row pays route
                    // repair or a binding-constraint dual grind — the
                    // rows differ *only* in which regions re-solve.
                    let mut channels = installed_w.clone();
                    channels[(t % 16) * 16] = 1;
                    let snap = CapacitySnapshot::clamped(&net, installed_q.clone(), channels);
                    let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
                    let decision = decide(
                        &mut state,
                        SlotDecisionRequest {
                            network: &net,
                            requests: &pairs,
                            ctx: &ctx,
                            selector: &selector,
                            allocation: &method,
                            fidelity_target: None,
                            rng: &mut policy_rng,
                        },
                    );
                    total += decision.total_cost();
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

/// The PR-9 node-churn headline (`node_churn_recovery`): the decision
/// loop under round-robin *node* cuts on the 16-corridor field. Each
/// slot one corridor's first-chain middle node dies — its qubits and
/// both incident links go to zero together, killing one of the
/// corridor's four candidate routes — and the previous victim comes
/// back, so every slot pays one batched fail repair and one batched
/// restore repair on top of the invalidation traffic. The rows differ
/// only in session invalidation policy (repair work is identical):
///
/// * `region_scoped/*` — only the cut and recovered corridors flush;
/// * `global_flush/*` — the ablation re-solves all sixteen.
///
/// Decisions are bit-identical between the rows (the
/// `node_churn_matches_edge_set_churn` proptest pins region-scoped vs
/// global under node cuts), so the gated row ratio is pure recovery
/// latency — the PR 9 acceptance evidence that region-scoped
/// invalidation is strictly faster under node churn.
fn bench_node_churn_recovery(c: &mut Criterion) {
    use qdn_core::engine::{decide, EngineState, SlotDecisionRequest};
    use qdn_core::route_selection::RouteSelector;
    use qdn_graph::NodeId;
    use qdn_solve::relaxed::{DualMethod, RelaxedOptions};

    let (net, pairs) = corridor_field(16);
    let selector = RouteSelector::Gibbs(GibbsConfig {
        iterations: 8,
        ..GibbsConfig::paper_default()
    });
    let method = AllocationMethod::RelaxAndRound(RelaxedOptions {
        method: DualMethod::Subgradient,
        max_iterations: 3000,
        ..RelaxedOptions::default()
    });
    let installed_q: Vec<u32> = net
        .graph()
        .node_ids()
        .map(|v| net.qubit_capacity(v))
        .collect();
    let installed_w: Vec<u32> = net
        .graph()
        .edge_ids()
        .map(|e| net.channel_capacity(e))
        .collect();

    let mut group = c.benchmark_group("node_churn_recovery");
    group.sample_size(10);
    for (label, global) in [("region_scoped", false), ("global_flush", true)] {
        group.bench_function(format!("{label}/16_corridors_32_slots"), |b| {
            b.iter(|| {
                let mut state = EngineState::new(RouteLimits {
                    max_routes: 4,
                    max_hops: 4,
                });
                state.session_mut().set_global_invalidation(global);
                let mut policy_rng = StdRng::seed_from_u64(29);
                let mut total = 0u64;
                for t in 0..32usize {
                    // Corridor t mod 16 loses its first chain's middle
                    // node (14 nodes per corridor; x, y, then chains —
                    // offset 3 is chain 0's b⁰). All incident links die
                    // with it; last slot's victim is back up.
                    let victim = NodeId(((t % 16) * 14 + 3) as u32);
                    let mut qubits = installed_q.clone();
                    let mut channels = installed_w.clone();
                    qubits[victim.index()] = 0;
                    for (_, e) in net.graph().neighbors(victim) {
                        channels[e.index()] = 0;
                    }
                    let snap = CapacitySnapshot::clamped(&net, qubits, channels);
                    let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
                    let decision = decide(
                        &mut state,
                        SlotDecisionRequest {
                            network: &net,
                            requests: &pairs,
                            ctx: &ctx,
                            selector: &selector,
                            allocation: &method,
                            fidelity_target: None,
                            rng: &mut policy_rng,
                        },
                    );
                    total += decision.total_cost();
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

/// The PR-9 correlated-outage row (`regional_outage_recovery`): a whole
/// corridor goes dark each slot (all 14 nodes, all 16 links — the
/// region's pair is undecidable until it recovers next slot) while the
/// other fifteen keep serving. The batch repair consolidates the 16
/// simultaneous link deaths into one affected-pair proof, and the
/// session invalidates the dark and recovered regions; `global_flush`
/// additionally re-solves the fourteen corridors the outage never
/// touched. Decisions are bit-identical between rows.
fn bench_regional_outage_recovery(c: &mut Criterion) {
    use qdn_core::engine::{decide, EngineState, SlotDecisionRequest};
    use qdn_core::route_selection::RouteSelector;
    use qdn_solve::relaxed::{DualMethod, RelaxedOptions};

    let (net, pairs) = corridor_field(16);
    let selector = RouteSelector::Gibbs(GibbsConfig {
        iterations: 8,
        ..GibbsConfig::paper_default()
    });
    let method = AllocationMethod::RelaxAndRound(RelaxedOptions {
        method: DualMethod::Subgradient,
        max_iterations: 3000,
        ..RelaxedOptions::default()
    });
    let installed_q: Vec<u32> = net
        .graph()
        .node_ids()
        .map(|v| net.qubit_capacity(v))
        .collect();
    let installed_w: Vec<u32> = net
        .graph()
        .edge_ids()
        .map(|e| net.channel_capacity(e))
        .collect();

    let mut group = c.benchmark_group("regional_outage_recovery");
    group.sample_size(10);
    for (label, global) in [("region_scoped", false), ("global_flush", true)] {
        group.bench_function(format!("{label}/16_corridors_32_slots"), |b| {
            b.iter(|| {
                let mut state = EngineState::new(RouteLimits {
                    max_routes: 4,
                    max_hops: 4,
                });
                state.session_mut().set_global_invalidation(global);
                let mut policy_rng = StdRng::seed_from_u64(31);
                let mut total = 0u64;
                for t in 0..32usize {
                    // Corridor t mod 16 is entirely dark this slot: 14
                    // nodes and 16 edges per corridor, laid out
                    // contiguously by the builder.
                    let dark = t % 16;
                    let mut qubits = installed_q.clone();
                    let mut channels = installed_w.clone();
                    qubits[dark * 14..(dark + 1) * 14].fill(0);
                    channels[dark * 16..(dark + 1) * 16].fill(0);
                    let snap = CapacitySnapshot::clamped(&net, qubits, channels);
                    let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
                    let decision = decide(
                        &mut state,
                        SlotDecisionRequest {
                            network: &net,
                            requests: &pairs,
                            ctx: &ctx,
                            selector: &selector,
                            allocation: &method,
                            fidelity_target: None,
                            rng: &mut policy_rng,
                        },
                    );
                    total += decision.total_cost();
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

/// The PR-10 parallel-engine rows (`parallel_gibbs_restarts`): 4-chain
/// Gibbs restarts on the paper-scale 10-pair workload, serial reference
/// (`sample_restarts_serial`: shared evaluator, chains in seed order)
/// vs the work-stealing pool at width 4 (`pool4`: one task per chain,
/// fresh per-chain evaluators, chain-index-order reduction). Results
/// are bit-identical between the rows
/// (`parallel_matches_serial_bit_identical` proptest); the rows gate
/// the *cost* of each path. On a single-CPU runner `pool4` cannot beat
/// `serial` — the row guards against scheduling-overhead regressions,
/// not for speedup.
fn bench_parallel_gibbs_restarts(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
    let method = AllocationMethod::default();
    let mut pairs_rng = StdRng::seed_from_u64(11);
    let owned = make_candidates(&net, 10, &mut pairs_rng);
    let cands = to_cands(&owned);
    let config = GibbsConfig::paper_default();
    let seeds: Vec<u64> = (1..=4u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let pool = threadpool::global_with(4);

    let mut group = c.benchmark_group("parallel_gibbs_restarts");
    group.sample_size(10);
    group.bench_function("serial/10_pairs_4_chains", |b| {
        b.iter(|| {
            black_box(gibbs::sample_restarts_serial(
                &ctx, &cands, &method, &config, &seeds, None,
            ))
        });
    });
    group.bench_function("pool4/10_pairs_4_chains", |b| {
        b.iter(|| {
            black_box(
                pool.install(|| gibbs::sample_restarts(&ctx, &cands, &method, &config, &seeds)),
            )
        });
    });
    group.finish();
}

/// The PR-10 trial fan-out rows (`parallel_trial_fanout`): 4 OSCAR
/// trials over a 10-slot horizon through `qdn_sim::run_trials`, pool
/// width 1 (`serial`) vs 4 (`pool4`). Byte-identical results either way
/// (`parallel_trials_byte_identical_to_serial`); the gated cost is the
/// fan-out overhead.
fn bench_parallel_trial_fanout(c: &mut Criterion) {
    use qdn_core::oscar::{OscarConfig, OscarPolicy};
    use qdn_net::dynamics::StaticDynamics;
    use qdn_net::workload::UniformWorkload;
    use qdn_sim::engine::SimConfig;
    use qdn_sim::trial::{run_trials, TrialConfig, TrialSetup};

    let setup = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        TrialSetup {
            network: NetworkConfig::paper_default().build(&mut rng).unwrap(),
            workload: Box::new(UniformWorkload::paper_default()),
            dynamics: Box::new(StaticDynamics),
            policy: Box::new(OscarPolicy::new(OscarConfig::paper_default())),
        }
    };
    let config = |threads: usize| TrialConfig {
        trials: 4,
        base_seed: 99,
        threads,
        sim: SimConfig {
            horizon: 10,
            realize_outcomes: true,
        },
    };

    let mut group = c.benchmark_group("parallel_trial_fanout");
    group.sample_size(10);
    for (label, threads) in [("serial", 1), ("pool4", 4)] {
        let cfg = config(threads);
        group.bench_function(format!("{label}/4_trials_10_slots"), |b| {
            b.iter(|| black_box(run_trials(&cfg, setup)));
        });
    }
    group.finish();
}

/// The PR-10 SIMD-shaped CSR rows (`csr_pass_ns_per_row`): the two hot
/// solver passes on the paper-scale joint instance, isolated through
/// `qdn_solve::relaxed::bench_hooks` — `dual_value_at` (gathered
/// per-variable pricing + chunked λ·caps dot) and `residual_pass`
/// (gathered per-constraint usage + chunked ‖g‖²). Row medians divided
/// by the printed row count give ns/row; the gate holds the absolute
/// pass cost.
fn bench_csr_passes(c: &mut Criterion) {
    use qdn_core::route_selection::profile_of;
    use qdn_solve::relaxed::bench_hooks;

    let mut rng = StdRng::seed_from_u64(3);
    let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
    let snap = CapacitySnapshot::full(&net);
    let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
    let mut pairs_rng = StdRng::seed_from_u64(11);
    let owned = make_candidates(&net, 10, &mut pairs_rng);
    let cands = to_cands(&owned);
    let base: Vec<usize> = vec![0; cands.len()];
    let inst = ctx.build_instance(&profile_of(&cands, &base)).unwrap();

    let cache = bench_hooks::cache(&inst);
    let lambda: Vec<f64> = (0..inst.num_constraints())
        .map(|i| 0.01 * (i % 7) as f64)
        .collect();
    let mut price = vec![0.0; inst.num_vars()];
    let mut x = vec![0.0; inst.num_vars()];
    let dual = bench_hooks::dual_value_at(&inst, &cache, &lambda, &mut price, &mut x);
    let mut g = vec![0.0; inst.num_constraints()];
    black_box(dual);

    let mut group = c.benchmark_group("csr_pass_ns_per_row");
    group.sample_size(15);
    group.bench_function(format!("dual_value_at/{}_vars", inst.num_vars()), |b| {
        b.iter(|| {
            black_box(bench_hooks::dual_value_at(
                &inst, &cache, &lambda, &mut price, &mut x,
            ))
        });
    });
    group.bench_function(
        format!("residual_pass/{}_constraints", inst.num_constraints()),
        |b| {
            b.iter(|| black_box(bench_hooks::residual_pass(&inst, &x, &mut g)));
        },
    );
    group.finish();
}

/// `count` disjoint diamond gadgets (4 nodes, 2 parallel 2-hop routes);
/// one SD pair per diamond. Every pair is a singleton coupling component.
fn diamond_field(count: usize) -> (QdnNetwork, Vec<SdPair>) {
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_physics::link::LinkModel;
    let mut b = QdnNetworkBuilder::new();
    let good = LinkModel::new(0.85).unwrap();
    let bad = LinkModel::new(0.35).unwrap();
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let n: Vec<_> = (0..4).map(|_| b.add_node(10)).collect();
        b.add_edge(n[0], n[1], 5, good).unwrap();
        b.add_edge(n[1], n[3], 5, good).unwrap();
        b.add_edge(n[0], n[2], 5, bad).unwrap();
        b.add_edge(n[2], n[3], 5, bad).unwrap();
        pairs.push(SdPair::new(n[0], n[3]).unwrap());
    }
    (b.build(), pairs)
}

fn bench_diamond_field(c: &mut Criterion, count: usize) {
    let (net, pairs) = diamond_field(count);
    let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
    let owned: Vec<(SdPair, Vec<Path>)> = pairs
        .iter()
        .map(|&p| (p, cr.routes(&net, p).to_vec()))
        .collect();
    let cands = to_cands(&owned);
    let snap = CapacitySnapshot::full(&net);
    let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
    let method = AllocationMethod::default();

    let mut group = c.benchmark_group(&format!("profile_eval_diamonds{}", count * 4));
    group.sample_size(15);

    let base: Vec<usize> = vec![0; count];
    group.bench_function(format!("full_rebuild_walk/{count}_pairs"), |b| {
        let mut indices = base.clone();
        let mut walk_rng = StdRng::seed_from_u64(17);
        b.iter(|| {
            let i = walk_rng.random_range(0..indices.len());
            indices[i] = walk_rng.random_range(0..cands[i].routes.len());
            let profile: Vec<(SdPair, &Path)> = cands
                .iter()
                .zip(&indices)
                .map(|(c, &i)| (c.pair, &c.routes[i]))
                .collect();
            black_box(ctx.evaluate_objective(&profile, &method))
        });
    });

    let mut eval = ProfileEvaluator::new(&ctx, &cands, &method, EvalOptions::default());
    assert_eq!(eval.component_count(), count, "diamonds must decouple");
    let mut indices = base.clone();
    let mut walk_rng = StdRng::seed_from_u64(17);
    group.bench_function(format!("incremental_walk/{count}_pairs"), |b| {
        b.iter(|| {
            let i = walk_rng.random_range(0..indices.len());
            indices[i] = walk_rng.random_range(0..cands[i].routes.len());
            black_box(eval.evaluate_objective(&indices))
        });
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let paper = NetworkConfig::paper_default().build(&mut rng).unwrap();
    bench_scale(c, "profile_eval_paper20", &paper, &[1, 5, 10], 11);

    // The large scale (Scale::Large): 50-node Waxman, 25 pairs — the
    // stress regime past the paper's setup, where the static closure is
    // still one giant component but concrete profiles fragment further.
    let mut large_rng = StdRng::seed_from_u64(3);
    let large = qdn_bench::Scale::Large
        .network_config()
        .build(&mut large_rng)
        .unwrap();
    bench_scale(
        c,
        "profile_eval_wax50",
        &large,
        &[qdn_bench::Scale::Large.max_pairs()],
        11,
    );

    // Larger sparse regime: 25 isolated diamonds, 25 singleton
    // components — super-linear gains from decomposition + memo
    // saturation.
    bench_diamond_field(c, 25);

    bench_dynamic_vs_static(c);
    bench_session_vs_fresh(c);
    bench_churn_recovery(c);
    bench_node_churn_recovery(c);
    bench_regional_outage_recovery(c);
    bench_dual_solver(c);
    bench_accel_vs_subgradient(c);
    bench_warm_vs_cold_eval(c);

    bench_gibbs_end_to_end(c);

    bench_parallel_gibbs_restarts(c);
    bench_parallel_trial_fanout(c);
    bench_csr_passes(c);

    bench_serve_throughput(c);
}

criterion_group!(benches, bench);
criterion_main!(benches);
