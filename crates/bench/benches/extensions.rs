//! Extension experiments bench: imperfect swapping, resource dynamics,
//! and multi-EC load at quick scale, plus a timing loop for the
//! swap-folded route-success kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_bench::figures::{
    extension_dynamics, extension_fidelity, extension_multi_ec, extension_swap,
    extension_topologies,
};
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;
use qdn_graph::Path;
use qdn_net::network::QdnNetworkBuilder;
use qdn_physics::link::LinkModel;
use qdn_physics::swap::SwapModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let swap = extension_swap(Scale::Quick);
    println!(
        "\n# Extension: swap success (Quick scale)\n{}",
        sweep_table("swap_success", &swap)
    );
    println!("{}", sweep_csv("swap_success", &swap));

    let dynamics = extension_dynamics(Scale::Quick);
    println!(
        "\n# Extension: resource dynamics (Quick scale)\n{}",
        sweep_table("dynamics", &dynamics)
    );
    println!("{}", sweep_csv("dynamics", &dynamics));

    let multi = extension_multi_ec(Scale::Quick);
    println!(
        "\n# Extension: multi-EC load (Quick scale)\n{}",
        sweep_table("max_requests_per_pair", &multi)
    );
    println!("{}", sweep_csv("max_requests_per_pair", &multi));

    let topo = extension_topologies(Scale::Quick);
    println!(
        "\n# Extension: topology families (Quick scale)\n{}",
        sweep_table("topology", &topo)
    );
    println!("{}", sweep_csv("topology", &topo));

    let fidelity = extension_fidelity(Scale::Quick);
    println!(
        "\n# Extension: fidelity-constrained routing (Quick scale)\n{}",
        sweep_table("fidelity_target", &fidelity)
    );
    println!("{}", sweep_csv("fidelity_target", &fidelity));

    // Timing: route-success evaluation with the swap factor folded in
    // (the kernel every profile evaluation calls per edge).
    let mut b = QdnNetworkBuilder::new();
    let nodes: Vec<_> = (0..6).map(|_| b.add_node(16)).collect();
    for w in nodes.windows(2) {
        b.add_edge(w[0], w[1], 8, LinkModel::new(0.55).unwrap())
            .unwrap();
    }
    b.set_swap(SwapModel::new(0.95).unwrap());
    let net = b.build();
    let route = Path::from_nodes(net.graph(), nodes.clone()).unwrap();
    let allocation = vec![2u32; route.hops()];

    let mut group = c.benchmark_group("extensions");
    group.bench_function("route_success_with_swap_5hops", |b| {
        b.iter(|| black_box(net.route_success(black_box(&route), black_box(&allocation))));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
