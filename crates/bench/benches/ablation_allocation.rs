//! Allocation-method ablation bench: Algorithm 2 (relax + round) vs
//! greedy vs minimal, with per-method timing of the allocation solve.

use criterion::{criterion_group, criterion_main, Criterion};
use qdn_bench::figures::ablation_allocation;
use qdn_bench::report::{sweep_csv, sweep_table};
use qdn_bench::Scale;
use qdn_core::allocation::AllocationMethod;
use qdn_solve::{AllocationInstance, PackingConstraint, Variable};
use std::hint::black_box;

/// A representative per-slot instance: 4 routes × 3 edges with shared
/// node constraints.
fn representative_instance() -> AllocationInstance {
    let vars: Vec<Variable> = (0..12).map(|_| Variable::new(0.5507)).collect();
    let mut constraints = Vec::new();
    // Edge constraints: one per variable.
    for j in 0..12 {
        constraints.push(PackingConstraint::new(6, vec![j]));
    }
    // Node constraints coupling neighbouring variables.
    for j in 0..11 {
        constraints.push(PackingConstraint::new(13, vec![j, j + 1]));
    }
    AllocationInstance::new(vars, constraints, 2500.0, 10.0).unwrap()
}

fn bench(c: &mut Criterion) {
    let points = ablation_allocation(Scale::Quick);
    println!(
        "\n# Ablation: allocation method (Quick scale)\n{}",
        sweep_table("variant", &points)
    );
    println!("{}", sweep_csv("variant", &points));

    let instance = representative_instance();
    let methods = [
        AllocationMethod::relax_and_round(),
        AllocationMethod::Greedy,
        AllocationMethod::Minimal,
    ];
    let mut group = c.benchmark_group("ablation_allocation");
    for method in methods {
        group.bench_function(method.label(), |b| {
            b.iter(|| black_box(method.allocate(&instance)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
