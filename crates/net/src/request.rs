//! SD pairs and entanglement-connection requests.

use qdn_graph::NodeId;
use serde::{Deserialize, Serialize};

use crate::NetError;

/// A source–destination pair `φ = (s(φ), d(φ))` requesting one
/// entanglement connection in a slot (paper §III-C).
///
/// Multiple EC requests between the same two nodes are modelled as
/// multiple `SdPair` values in the slot's request set, exactly as the
/// paper prescribes ("we can treat each entanglement connection request as
/// a separate SD pair").
///
/// # Example
///
/// ```
/// use qdn_graph::NodeId;
/// use qdn_net::request::SdPair;
///
/// # fn main() -> Result<(), qdn_net::NetError> {
/// let pair = SdPair::new(NodeId(0), NodeId(3))?;
/// assert_eq!(pair.source(), NodeId(0));
/// assert_eq!(pair.destination(), NodeId(3));
/// assert!(SdPair::new(NodeId(1), NodeId(1)).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SdPair {
    source: NodeId,
    destination: NodeId,
}

impl SdPair {
    /// Creates an SD pair.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DegenerateSdPair`] if source equals
    /// destination.
    pub fn new(source: NodeId, destination: NodeId) -> Result<Self, NetError> {
        if source == destination {
            return Err(NetError::DegenerateSdPair { node: source });
        }
        Ok(SdPair {
            source,
            destination,
        })
    }

    /// The source node `s(φ)`.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The destination node `d(φ)`.
    #[inline]
    pub fn destination(&self) -> NodeId {
        self.destination
    }

    /// The pair with endpoints swapped. Routing in an undirected QDN is
    /// symmetric, so candidate routes can be shared between a pair and its
    /// reverse.
    pub fn reversed(&self) -> SdPair {
        SdPair {
            source: self.destination,
            destination: self.source,
        }
    }

    /// A canonical form with the smaller node id first, for cache keys.
    pub fn canonical(&self) -> SdPair {
        if self.source.0 <= self.destination.0 {
            *self
        } else {
            self.reversed()
        }
    }
}

impl std::fmt::Display for SdPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.source, self.destination)
    }
}

/// The request set `Φ_t` of one slot: the SD pairs that want an EC.
pub type RequestSet = Vec<SdPair>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_degenerate() {
        assert!(matches!(
            SdPair::new(NodeId(2), NodeId(2)),
            Err(NetError::DegenerateSdPair { .. })
        ));
    }

    #[test]
    fn accessors() {
        let p = SdPair::new(NodeId(1), NodeId(4)).unwrap();
        assert_eq!(p.source(), NodeId(1));
        assert_eq!(p.destination(), NodeId(4));
    }

    #[test]
    fn reversed_swaps() {
        let p = SdPair::new(NodeId(1), NodeId(4)).unwrap();
        let r = p.reversed();
        assert_eq!(r.source(), NodeId(4));
        assert_eq!(r.destination(), NodeId(1));
        assert_eq!(r.reversed(), p);
    }

    #[test]
    fn canonical_orders_ids() {
        let p = SdPair::new(NodeId(4), NodeId(1)).unwrap();
        assert_eq!(p.canonical(), SdPair::new(NodeId(1), NodeId(4)).unwrap());
        let q = SdPair::new(NodeId(1), NodeId(4)).unwrap();
        assert_eq!(q.canonical(), q);
    }

    #[test]
    fn display_format() {
        let p = SdPair::new(NodeId(0), NodeId(9)).unwrap();
        assert_eq!(p.to_string(), "v0 -> v9");
    }
}
