//! Pre-computed candidate route sets `R(φ)`.
//!
//! The paper assumes "a set of potential routes R(φ) associated with each
//! SD pair φ … the candidate set can be pre-computed by choosing routes
//! with shorter lengths/hops to minimize its size" with bounds `R` on
//! `|R(φ)|` and `L` on route length (§III-C). [`CandidateRoutes`] computes
//! those sets with Yen's k-shortest-paths by hop count and caches them per
//! canonical pair (routing is symmetric in an undirected QDN).

use std::collections::BTreeMap;

use qdn_graph::maintain::CandidateMaintainer;
use qdn_graph::paths::hop_weight;
use qdn_graph::{EdgeId, NodeId, Path};
use serde::{Deserialize, Serialize};

use crate::network::QdnNetwork;
use crate::request::SdPair;
use crate::snapshot::CapacitySnapshot;

/// Limits on candidate route computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteLimits {
    /// Maximum number of candidate routes per pair (the paper's `R`).
    pub max_routes: usize,
    /// Maximum hops per route (the paper's `L`); longer Yen results are
    /// discarded.
    pub max_hops: usize,
}

impl RouteLimits {
    /// Defaults used throughout the evaluation: up to 4 candidate routes,
    /// at most 8 hops. On 20-node degree-4 Waxman graphs the 4 shortest
    /// routes are almost always well under 8 hops, so `L` acts as a safety
    /// bound exactly as in the paper.
    pub fn paper_default() -> Self {
        RouteLimits {
            max_routes: 4,
            max_hops: 8,
        }
    }
}

impl Default for RouteLimits {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A caching provider of candidate route sets.
///
/// # Example
///
/// ```
/// use qdn_net::config::NetworkConfig;
/// use qdn_net::routes::{CandidateRoutes, RouteLimits};
/// use qdn_net::request::SdPair;
/// use qdn_graph::NodeId;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let net = NetworkConfig::paper_default().build(&mut rng)?;
/// let mut routes = CandidateRoutes::new(RouteLimits::paper_default());
/// let pair = SdPair::new(NodeId(0), NodeId(7))?;
/// let r = routes.routes(&net, pair);
/// assert!(!r.is_empty());
/// assert!(r.len() <= 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CandidateRoutes {
    limits: RouteLimits,
    /// Canonical per-pair k-shortest sets plus the dead-edge filter;
    /// repaired incrementally on churn instead of recomputed.
    maintainer: CandidateMaintainer,
    /// Serving cache: hop-filtered routes per requested orientation.
    /// BTreeMap so snapshot order never depends on hasher state.
    cache: BTreeMap<SdPair, Vec<Path>>,
    last_churn: RouteChurn,
}

/// What one [`CandidateRoutes::sync_dead_edges`] call absorbed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteChurn {
    /// Edges newly dead (zero channels) this sync, ascending.
    pub failed: Vec<EdgeId>,
    /// Edges newly revived this sync, ascending.
    pub restored: Vec<EdgeId>,
    /// Canonical pairs whose candidate routes changed, sorted.
    pub changed_pairs: Vec<SdPair>,
    /// Pair sets re-run through Yen across all events.
    pub recomputed: usize,
    /// Pair sets proven unaffected without a path search.
    pub skipped: usize,
    /// Yen searches actually run. The batch repair path bounds this at
    /// one per affected pair *per direction* (failures and restores are
    /// separate batches), regardless of how many edges flipped state.
    pub yen_runs: usize,
    /// Repairs served from the prewarm cache instead of a Yen run (see
    /// [`CandidateRoutes::prewarm_dead_edges`]).
    pub prewarm_hits: usize,
}

impl RouteChurn {
    /// `true` when the sync saw no edge change state.
    pub fn is_noop(&self) -> bool {
        self.failed.is_empty() && self.restored.is_empty()
    }
}

impl CandidateRoutes {
    /// Creates an empty cache with the given limits.
    pub fn new(limits: RouteLimits) -> Self {
        CandidateRoutes {
            limits,
            maintainer: CandidateMaintainer::new(limits.max_routes),
            cache: BTreeMap::new(),
            last_churn: RouteChurn::default(),
        }
    }

    /// The configured limits.
    pub fn limits(&self) -> RouteLimits {
        self.limits
    }

    /// Reconciles the dead-edge set with `snapshot`: an edge with zero
    /// channels is dead (its routes are unusable this slot and excluded
    /// from candidate sets), any other edge is alive. Candidate sets are
    /// repaired incrementally — only pairs a state flip can actually
    /// affect are re-run through Yen (see [`CandidateMaintainer`]).
    ///
    /// Returns what changed; the report is also kept for later
    /// inspection via [`CandidateRoutes::last_churn`]. With no zero-
    /// channel edges and no prior failures this is a cheap no-op scan.
    pub fn sync_dead_edges(
        &mut self,
        network: &QdnNetwork,
        snapshot: &CapacitySnapshot,
    ) -> &RouteChurn {
        let graph = network.graph();
        let mut churn = RouteChurn::default();
        // One scan to classify, then one consolidated batch per
        // direction: a node cut or regional blackout kills many edges in
        // the same slot, and the batch path repairs each affected pair
        // once against the final dead set instead of once per edge.
        for e in graph.edge_ids() {
            let dead_now = snapshot.channels(e) == 0;
            if dead_now == self.maintainer.is_dead(e) {
                continue;
            }
            if dead_now {
                churn.failed.push(e);
            } else {
                churn.restored.push(e);
            }
        }
        let mut report = self
            .maintainer
            .fail_edges(graph, &churn.failed, &hop_weight);
        report.merge(
            self.maintainer
                .restore_edges(graph, &churn.restored, &hop_weight),
        );
        churn.recomputed = report.recomputed.len();
        churn.skipped = report.skipped;
        churn.yen_runs = report.yen_runs;
        churn.prewarm_hits = report.prewarm_hits;
        for (a, b) in report.changed {
            churn
                .changed_pairs
                .push(SdPair::new(a, b).expect("tracked pairs have distinct endpoints"));
        }
        churn.changed_pairs.sort_unstable();
        churn.changed_pairs.dedup();
        for pair in &churn.changed_pairs {
            self.cache.remove(pair);
            self.cache.remove(&pair.reversed());
        }
        self.last_churn = churn;
        &self.last_churn
    }

    /// Precomputes post-failure candidate sets for an *announced* outage
    /// of `edges` (a maintenance window), without touching live routes.
    /// When [`CandidateRoutes::sync_dead_edges`] later absorbs exactly
    /// that outage, affected pairs install the precomputed sets instead
    /// of running Yen; decisions are bit-identical either way. Returns
    /// the number of pairs prewarmed.
    pub fn prewarm_dead_edges(&mut self, network: &QdnNetwork, edges: &[EdgeId]) -> usize {
        self.maintainer
            .prewarm_fail(network.graph(), edges, &hop_weight)
    }

    /// The report of the most recent [`CandidateRoutes::sync_dead_edges`].
    pub fn last_churn(&self) -> &RouteChurn {
        &self.last_churn
    }

    /// Edges currently treated as dead, ascending.
    pub fn dead_edges(&self) -> Vec<EdgeId> {
        self.maintainer.dead_edges().collect()
    }

    /// The candidate routes for `pair`, computing and caching them on
    /// first use.
    ///
    /// Routes are returned oriented from `pair.source()` to
    /// `pair.destination()`; the cache key is the canonical pair, so the
    /// reverse orientation shares the computation. The result is sorted by
    /// hop count (Yen's order) and every route has at most
    /// [`RouteLimits::max_hops`] hops. An empty slice means the pair is
    /// disconnected (cannot happen on connectivity-augmented topologies)
    /// or all short routes exceed the hop bound.
    pub fn routes(&mut self, network: &QdnNetwork, pair: SdPair) -> &[Path] {
        let canonical = pair.canonical();
        if !self.cache.contains_key(&canonical) {
            let max_hops = self.limits.max_hops;
            let computed: Vec<Path> = self
                .maintainer
                .track(
                    network.graph(),
                    canonical.source(),
                    canonical.destination(),
                    &hop_weight,
                )
                .iter()
                .filter(|p| p.hops() <= max_hops && p.hops() >= 1)
                .cloned()
                .collect();
            self.cache.insert(canonical, computed);
        }
        if pair == canonical {
            &self.cache[&canonical]
        } else {
            // Reverse orientation requested: materialise it once, too.
            if !self.cache.contains_key(&pair) {
                let reversed: Vec<Path> = self.cache[&canonical]
                    .iter()
                    .map(|p| {
                        let mut nodes = p.nodes().to_vec();
                        nodes.reverse();
                        let mut edges = p.edges().to_vec();
                        edges.reverse();
                        Path::new(network.graph(), nodes, edges)
                            .expect("reversal of a valid path is valid")
                    })
                    .collect();
                self.cache.insert(pair, reversed);
            }
            &self.cache[&pair]
        }
    }

    /// The already-cached candidate routes for `pair`, without computing
    /// anything: `None` until a [`CandidateRoutes::routes`] call for this
    /// pair (in this orientation) populated the cache.
    ///
    /// This is the shared-borrow companion of `routes` for callers that
    /// first warm the cache for a batch of pairs and then need all the
    /// slices alive at once (one `&mut` call per pair cannot overlap).
    pub fn cached(&self, pair: SdPair) -> Option<&[Path]> {
        self.cache.get(&pair).map(Vec::as_slice)
    }

    /// Maximum hop count over the candidate routes of the given pairs —
    /// the effective `L` entering the theory bounds.
    pub fn max_route_hops(&mut self, network: &QdnNetwork, pairs: &[SdPair]) -> usize {
        pairs
            .iter()
            .flat_map(|&p| {
                self.routes(network, p)
                    .iter()
                    .map(Path::hops)
                    .collect::<Vec<_>>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of cached pairs (both orientations counted).
    pub fn cached_pairs(&self) -> usize {
        self.cache.len()
    }

    /// Drops all cached routes and revives all edges (e.g. when switching
    /// topologies or starting a fresh trial, so replays are bit-identical
    /// to a first run even after mid-trial churn).
    pub fn clear(&mut self) {
        self.maintainer.clear();
        self.cache.clear();
        self.last_churn = RouteChurn::default();
    }

    /// Serializes the cache into a [`RoutesSnapshot`] with canonical
    /// (sorted) entry order, so equal caches produce byte-identical
    /// snapshots.
    ///
    /// The snapshot carries the *routes themselves*, not just the
    /// tracked pairs: churn repair only yields weight-equivalent (not
    /// tie-identical) candidate sets, so a warm restart that recomputed
    /// routes from the topology could diverge from the uninterrupted
    /// run on Yen tie order. `last_churn` is per-slot diagnostics and is
    /// not captured.
    pub fn snapshot(&self) -> RoutesSnapshot {
        let mut tracked: Vec<TrackedSetSnapshot> = self
            .maintainer
            .tracked()
            .map(|((a, b), set)| TrackedSetSnapshot {
                endpoints: (a.0, b.0),
                routes: set.to_vec(),
            })
            .collect();
        tracked.sort_unstable_by_key(|t| t.endpoints);
        // BTreeMap iteration is already ascending by pair.
        let cache: Vec<CachedPairSnapshot> = self
            .cache
            .iter()
            .map(|(&pair, routes)| CachedPairSnapshot {
                pair,
                routes: routes.clone(),
            })
            .collect();
        RoutesSnapshot {
            version: ROUTES_SNAPSHOT_VERSION,
            limits: self.limits,
            dead: self.maintainer.dead_edges().collect(),
            tracked,
            cache,
        }
    }

    /// Rebuilds a cache from a snapshot taken by
    /// [`CandidateRoutes::snapshot`]. The restored cache serves the
    /// exact routes the original held (bit-identical decisions); the
    /// churn ledger starts empty.
    pub fn restore(snapshot: &RoutesSnapshot) -> Result<Self, String> {
        if snapshot.version != ROUTES_SNAPSHOT_VERSION {
            return Err(format!(
                "routes snapshot version {} (expected {ROUTES_SNAPSHOT_VERSION})",
                snapshot.version
            ));
        }
        let maintainer = CandidateMaintainer::from_parts(
            snapshot.limits.max_routes,
            snapshot.dead.iter().copied(),
            snapshot.tracked.iter().map(|t| {
                let (a, b) = t.endpoints;
                ((NodeId(a), NodeId(b)), t.routes.clone())
            }),
        );
        Ok(CandidateRoutes {
            limits: snapshot.limits,
            maintainer,
            cache: snapshot
                .cache
                .iter()
                .map(|c| (c.pair, c.routes.clone()))
                .collect(),
            last_churn: RouteChurn::default(),
        })
    }
}

/// Version tag of [`RoutesSnapshot`]; bump on layout changes.
pub const ROUTES_SNAPSHOT_VERSION: u32 = 1;

/// Serializable image of a [`CandidateRoutes`] (see
/// [`CandidateRoutes::snapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutesSnapshot {
    /// Layout version ([`ROUTES_SNAPSHOT_VERSION`]).
    pub version: u32,
    limits: RouteLimits,
    /// Dead edges, ascending.
    dead: Vec<EdgeId>,
    /// The maintainer's canonical per-pair sets, sorted by endpoints.
    tracked: Vec<TrackedSetSnapshot>,
    /// The serving cache (per requested orientation), sorted by pair.
    cache: Vec<CachedPairSnapshot>,
}

/// One maintained canonical candidate set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TrackedSetSnapshot {
    /// Canonical endpoints `(smaller node id, larger node id)`.
    endpoints: (u32, u32),
    routes: Vec<Path>,
}

/// One serving-cache entry (oriented for its requested pair).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CachedPairSnapshot {
    pair: SdPair,
    routes: Vec<Path>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::QdnNetworkBuilder;
    use qdn_graph::NodeId;
    use qdn_physics::link::LinkModel;

    /// Diamond with an extra long tail:
    /// 0-1-3, 0-2-3, 3-4.
    fn net() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_node(10)).collect();
        let l = LinkModel::paper_default();
        b.add_edge(n[0], n[1], 5, l).unwrap();
        b.add_edge(n[1], n[3], 5, l).unwrap();
        b.add_edge(n[0], n[2], 5, l).unwrap();
        b.add_edge(n[2], n[3], 5, l).unwrap();
        b.add_edge(n[3], n[4], 5, l).unwrap();
        b.build()
    }

    #[test]
    fn routes_sorted_and_bounded() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits {
            max_routes: 3,
            max_hops: 5,
        });
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let routes = cr.routes(&net, pair);
        assert_eq!(routes.len(), 2); // two diamond sides
        assert!(routes[0].hops() <= routes[1].hops());
        for r in routes {
            assert_eq!(r.source(), NodeId(0));
            assert_eq!(r.destination(), NodeId(3));
        }
    }

    #[test]
    fn hop_limit_filters_long_routes() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits {
            max_routes: 5,
            max_hops: 1,
        });
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        assert!(cr.routes(&net, pair).is_empty()); // both routes have 2 hops
        let adj = SdPair::new(NodeId(3), NodeId(4)).unwrap();
        assert_eq!(cr.routes(&net, adj).len(), 1);
    }

    #[test]
    fn reverse_orientation_shares_cache() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let fwd = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let bwd = fwd.reversed();
        let f: Vec<_> = cr.routes(&net, fwd).to_vec();
        let b: Vec<_> = cr.routes(&net, bwd).to_vec();
        assert_eq!(f.len(), b.len());
        for (pf, pb) in f.iter().zip(&b) {
            assert_eq!(pf.source(), pb.destination());
            assert_eq!(pf.destination(), pb.source());
            let mut rev: Vec<_> = pb.nodes().to_vec();
            rev.reverse();
            assert_eq!(pf.nodes(), rev.as_slice());
        }
        // canonical + reversed cached.
        assert_eq!(cr.cached_pairs(), 2);
    }

    #[test]
    fn max_route_hops_over_pairs() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let pairs = vec![
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(0), NodeId(4)).unwrap(),
        ];
        // 0->4 goes through 3: 3 hops.
        assert_eq!(cr.max_route_hops(&net, &pairs), 3);
        assert_eq!(cr.max_route_hops(&net, &[]), 0);
    }

    #[test]
    fn clear_resets_cache() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let _ = cr.routes(&net, pair);
        assert!(cr.cached_pairs() > 0);
        cr.clear();
        assert_eq!(cr.cached_pairs(), 0);
    }

    #[test]
    fn sync_dead_edges_drops_and_restores_routes() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(cr.routes(&net, pair).len(), 2);

        // Kill 0-1: one diamond side dies.
        let dead = net.graph().edge_between(NodeId(0), NodeId(1)).unwrap();
        let mut channels: Vec<u32> = net.graph().edge_ids().map(|_| 5).collect();
        channels[dead.index()] = 0;
        let snap = CapacitySnapshot::clamped(&net, vec![10; 5], channels);
        let churn = cr.sync_dead_edges(&net, &snap).clone();
        assert_eq!(churn.failed, vec![dead]);
        assert!(churn.restored.is_empty());
        assert_eq!(churn.changed_pairs, vec![pair]);
        let routes = cr.routes(&net, pair);
        assert_eq!(routes.len(), 1);
        assert!(routes.iter().all(|p| !p.edges().contains(&dead)));
        // Reverse orientation sees the repair too.
        assert_eq!(cr.routes(&net, pair.reversed()).len(), 1);

        // Repair: the original two sides come back.
        let full = CapacitySnapshot::full(&net);
        let churn = cr.sync_dead_edges(&net, &full).clone();
        assert_eq!(churn.restored, vec![dead]);
        assert_eq!(churn.changed_pairs, vec![pair]);
        assert_eq!(cr.routes(&net, pair).len(), 2);
        assert!(cr.dead_edges().is_empty());
    }

    #[test]
    fn sync_with_full_capacity_is_noop() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let before = cr.routes(&net, pair).to_vec();
        let full = CapacitySnapshot::full(&net);
        let churn = cr.sync_dead_edges(&net, &full);
        assert!(churn.is_noop());
        assert_eq!(churn.recomputed, 0);
        assert_eq!(cr.routes(&net, pair), before.as_slice());
    }

    #[test]
    fn unrelated_failure_skips_cached_pairs() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let _ = cr.routes(&net, pair);
        // Kill the tail edge 3-4, which no 0-3 route uses.
        let tail = net.graph().edge_between(NodeId(3), NodeId(4)).unwrap();
        let mut channels: Vec<u32> = net.graph().edge_ids().map(|_| 5).collect();
        channels[tail.index()] = 0;
        let snap = CapacitySnapshot::clamped(&net, vec![10; 5], channels);
        let churn = cr.sync_dead_edges(&net, &snap);
        assert_eq!(churn.failed, vec![tail]);
        assert!(churn.changed_pairs.is_empty());
        assert_eq!(churn.recomputed, 0);
        assert_eq!(churn.skipped, 1);
    }

    #[test]
    fn sync_batches_multi_edge_deaths_into_one_repair() {
        // Both diamond arms lose an edge in the same slot. The per-edge
        // loop this replaced re-ran Yen for the 0-3 pair once per dead
        // edge; the batch path proves affectedness once over the whole
        // edge set and repairs the pair exactly once.
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(cr.routes(&net, pair).len(), 2);

        let e01 = net.graph().edge_between(NodeId(0), NodeId(1)).unwrap();
        let e02 = net.graph().edge_between(NodeId(0), NodeId(2)).unwrap();
        let mut channels: Vec<u32> = net.graph().edge_ids().map(|_| 5).collect();
        channels[e01.index()] = 0;
        channels[e02.index()] = 0;
        let snap = CapacitySnapshot::clamped(&net, vec![10; 5], channels);
        let churn = cr.sync_dead_edges(&net, &snap).clone();
        assert_eq!(churn.failed.len(), 2);
        assert_eq!(churn.recomputed, 1);
        assert_eq!(churn.yen_runs, 1, "batch path must repair the pair once");
        assert!(cr.routes(&net, pair).is_empty());

        // Both edges revive in one slot: again a single batched repair.
        let churn = cr
            .sync_dead_edges(&net, &CapacitySnapshot::full(&net))
            .clone();
        assert_eq!(churn.restored.len(), 2);
        assert_eq!(churn.yen_runs, 1);
        assert_eq!(cr.routes(&net, pair).len(), 2);
    }

    #[test]
    fn prewarmed_sync_skips_yen_and_serves_identical_routes() {
        let net = net();
        let e01 = net.graph().edge_between(NodeId(0), NodeId(1)).unwrap();
        let e02 = net.graph().edge_between(NodeId(0), NodeId(2)).unwrap();
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let mut channels: Vec<u32> = net.graph().edge_ids().map(|_| 5).collect();
        channels[e01.index()] = 0;
        channels[e02.index()] = 0;
        let snap = CapacitySnapshot::clamped(&net, vec![10; 5], channels);

        let mut cold = CandidateRoutes::new(RouteLimits::paper_default());
        let _ = cold.routes(&net, pair);
        let _ = cold.sync_dead_edges(&net, &snap);

        let mut warm = CandidateRoutes::new(RouteLimits::paper_default());
        let _ = warm.routes(&net, pair);
        assert_eq!(warm.prewarm_dead_edges(&net, &[e01, e02]), 1);
        let churn = warm.sync_dead_edges(&net, &snap).clone();
        assert_eq!(churn.prewarm_hits, 1);
        assert_eq!(churn.yen_runs, 0);
        assert_eq!(warm.routes(&net, pair), cold.routes(&net, pair));
    }

    #[test]
    fn snapshot_roundtrip_after_churn() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let _ = cr.routes(&net, pair);
        let _ = cr.routes(&net, SdPair::new(NodeId(1), NodeId(4)).unwrap());

        // Kill 0-1 so the cache holds *repaired* (not cold) candidates.
        let dead = net.graph().edge_between(NodeId(0), NodeId(1)).unwrap();
        let mut channels: Vec<u32> = net.graph().edge_ids().map(|_| 5).collect();
        channels[dead.index()] = 0;
        let snap = CapacitySnapshot::clamped(&net, vec![10; 5], channels);
        let _ = cr.sync_dead_edges(&net, &snap);
        let repaired = cr.routes(&net, pair).to_vec();

        let image = cr.snapshot();
        let mut restored = CandidateRoutes::restore(&image).unwrap();
        // The restored cache serves the repaired routes verbatim —
        // crucially *without* recomputing them (repair is only
        // weight-equivalent to a cold recompute).
        assert_eq!(restored.routes(&net, pair), repaired.as_slice());
        assert_eq!(restored.dead_edges(), cr.dead_edges());
        // Canonical ordering: re-snapshot is identical.
        assert_eq!(restored.snapshot(), image);
    }

    #[test]
    fn snapshot_rejects_wrong_version() {
        let cr = CandidateRoutes::new(RouteLimits::paper_default());
        let mut image = cr.snapshot();
        image.version += 1;
        assert!(CandidateRoutes::restore(&image).is_err());
    }

    #[test]
    fn zero_hop_routes_excluded() {
        // max_hops >= 1 guaranteed by filter p.hops() >= 1; a pair is never
        // degenerate by construction, so this just documents behaviour.
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let pair = SdPair::new(NodeId(0), NodeId(1)).unwrap();
        for r in cr.routes(&net, pair) {
            assert!(r.hops() >= 1);
        }
    }
}
