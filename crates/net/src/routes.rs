//! Pre-computed candidate route sets `R(φ)`.
//!
//! The paper assumes "a set of potential routes R(φ) associated with each
//! SD pair φ … the candidate set can be pre-computed by choosing routes
//! with shorter lengths/hops to minimize its size" with bounds `R` on
//! `|R(φ)|` and `L` on route length (§III-C). [`CandidateRoutes`] computes
//! those sets with Yen's k-shortest-paths by hop count and caches them per
//! canonical pair (routing is symmetric in an undirected QDN).

use std::collections::HashMap;

use qdn_graph::ksp::yen_k_shortest;
use qdn_graph::paths::hop_weight;
use qdn_graph::Path;
use serde::{Deserialize, Serialize};

use crate::network::QdnNetwork;
use crate::request::SdPair;

/// Limits on candidate route computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteLimits {
    /// Maximum number of candidate routes per pair (the paper's `R`).
    pub max_routes: usize,
    /// Maximum hops per route (the paper's `L`); longer Yen results are
    /// discarded.
    pub max_hops: usize,
}

impl RouteLimits {
    /// Defaults used throughout the evaluation: up to 4 candidate routes,
    /// at most 8 hops. On 20-node degree-4 Waxman graphs the 4 shortest
    /// routes are almost always well under 8 hops, so `L` acts as a safety
    /// bound exactly as in the paper.
    pub fn paper_default() -> Self {
        RouteLimits {
            max_routes: 4,
            max_hops: 8,
        }
    }
}

impl Default for RouteLimits {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A caching provider of candidate route sets.
///
/// # Example
///
/// ```
/// use qdn_net::config::NetworkConfig;
/// use qdn_net::routes::{CandidateRoutes, RouteLimits};
/// use qdn_net::request::SdPair;
/// use qdn_graph::NodeId;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let net = NetworkConfig::paper_default().build(&mut rng)?;
/// let mut routes = CandidateRoutes::new(RouteLimits::paper_default());
/// let pair = SdPair::new(NodeId(0), NodeId(7))?;
/// let r = routes.routes(&net, pair);
/// assert!(!r.is_empty());
/// assert!(r.len() <= 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CandidateRoutes {
    limits: RouteLimits,
    cache: HashMap<SdPair, Vec<Path>>,
}

impl CandidateRoutes {
    /// Creates an empty cache with the given limits.
    pub fn new(limits: RouteLimits) -> Self {
        CandidateRoutes {
            limits,
            cache: HashMap::new(),
        }
    }

    /// The configured limits.
    pub fn limits(&self) -> RouteLimits {
        self.limits
    }

    /// The candidate routes for `pair`, computing and caching them on
    /// first use.
    ///
    /// Routes are returned oriented from `pair.source()` to
    /// `pair.destination()`; the cache key is the canonical pair, so the
    /// reverse orientation shares the computation. The result is sorted by
    /// hop count (Yen's order) and every route has at most
    /// [`RouteLimits::max_hops`] hops. An empty slice means the pair is
    /// disconnected (cannot happen on connectivity-augmented topologies)
    /// or all short routes exceed the hop bound.
    pub fn routes(&mut self, network: &QdnNetwork, pair: SdPair) -> &[Path] {
        let canonical = pair.canonical();
        if !self.cache.contains_key(&canonical) {
            let computed = self.compute(network, canonical);
            self.cache.insert(canonical, computed);
        }
        if pair == canonical {
            &self.cache[&canonical]
        } else {
            // Reverse orientation requested: materialise it once, too.
            if !self.cache.contains_key(&pair) {
                let reversed: Vec<Path> = self.cache[&canonical]
                    .iter()
                    .map(|p| {
                        let mut nodes = p.nodes().to_vec();
                        nodes.reverse();
                        let mut edges = p.edges().to_vec();
                        edges.reverse();
                        Path::new(network.graph(), nodes, edges)
                            .expect("reversal of a valid path is valid")
                    })
                    .collect();
                self.cache.insert(pair, reversed);
            }
            &self.cache[&pair]
        }
    }

    /// The already-cached candidate routes for `pair`, without computing
    /// anything: `None` until a [`CandidateRoutes::routes`] call for this
    /// pair (in this orientation) populated the cache.
    ///
    /// This is the shared-borrow companion of `routes` for callers that
    /// first warm the cache for a batch of pairs and then need all the
    /// slices alive at once (one `&mut` call per pair cannot overlap).
    pub fn cached(&self, pair: SdPair) -> Option<&[Path]> {
        self.cache.get(&pair).map(Vec::as_slice)
    }

    /// Maximum hop count over the candidate routes of the given pairs —
    /// the effective `L` entering the theory bounds.
    pub fn max_route_hops(&mut self, network: &QdnNetwork, pairs: &[SdPair]) -> usize {
        pairs
            .iter()
            .flat_map(|&p| {
                self.routes(network, p)
                    .iter()
                    .map(Path::hops)
                    .collect::<Vec<_>>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of cached pairs (both orientations counted).
    pub fn cached_pairs(&self) -> usize {
        self.cache.len()
    }

    /// Drops all cached routes (e.g. when switching topologies).
    pub fn clear(&mut self) {
        self.cache.clear();
    }

    fn compute(&self, network: &QdnNetwork, pair: SdPair) -> Vec<Path> {
        yen_k_shortest(
            network.graph(),
            pair.source(),
            pair.destination(),
            self.limits.max_routes,
            &hop_weight,
        )
        .into_iter()
        .filter(|p| p.hops() <= self.limits.max_hops && p.hops() >= 1)
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::QdnNetworkBuilder;
    use qdn_graph::NodeId;
    use qdn_physics::link::LinkModel;

    /// Diamond with an extra long tail:
    /// 0-1-3, 0-2-3, 3-4.
    fn net() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_node(10)).collect();
        let l = LinkModel::paper_default();
        b.add_edge(n[0], n[1], 5, l).unwrap();
        b.add_edge(n[1], n[3], 5, l).unwrap();
        b.add_edge(n[0], n[2], 5, l).unwrap();
        b.add_edge(n[2], n[3], 5, l).unwrap();
        b.add_edge(n[3], n[4], 5, l).unwrap();
        b.build()
    }

    #[test]
    fn routes_sorted_and_bounded() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits {
            max_routes: 3,
            max_hops: 5,
        });
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let routes = cr.routes(&net, pair);
        assert_eq!(routes.len(), 2); // two diamond sides
        assert!(routes[0].hops() <= routes[1].hops());
        for r in routes {
            assert_eq!(r.source(), NodeId(0));
            assert_eq!(r.destination(), NodeId(3));
        }
    }

    #[test]
    fn hop_limit_filters_long_routes() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits {
            max_routes: 5,
            max_hops: 1,
        });
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        assert!(cr.routes(&net, pair).is_empty()); // both routes have 2 hops
        let adj = SdPair::new(NodeId(3), NodeId(4)).unwrap();
        assert_eq!(cr.routes(&net, adj).len(), 1);
    }

    #[test]
    fn reverse_orientation_shares_cache() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let fwd = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let bwd = fwd.reversed();
        let f: Vec<_> = cr.routes(&net, fwd).to_vec();
        let b: Vec<_> = cr.routes(&net, bwd).to_vec();
        assert_eq!(f.len(), b.len());
        for (pf, pb) in f.iter().zip(&b) {
            assert_eq!(pf.source(), pb.destination());
            assert_eq!(pf.destination(), pb.source());
            let mut rev: Vec<_> = pb.nodes().to_vec();
            rev.reverse();
            assert_eq!(pf.nodes(), rev.as_slice());
        }
        // canonical + reversed cached.
        assert_eq!(cr.cached_pairs(), 2);
    }

    #[test]
    fn max_route_hops_over_pairs() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let pairs = vec![
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(0), NodeId(4)).unwrap(),
        ];
        // 0->4 goes through 3: 3 hops.
        assert_eq!(cr.max_route_hops(&net, &pairs), 3);
        assert_eq!(cr.max_route_hops(&net, &[]), 0);
    }

    #[test]
    fn clear_resets_cache() {
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let _ = cr.routes(&net, pair);
        assert!(cr.cached_pairs() > 0);
        cr.clear();
        assert_eq!(cr.cached_pairs(), 0);
    }

    #[test]
    fn zero_hop_routes_excluded() {
        // max_hops >= 1 guaranteed by filter p.hops() >= 1; a pair is never
        // degenerate by construction, so this just documents behaviour.
        let net = net();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let pair = SdPair::new(NodeId(0), NodeId(1)).unwrap();
        for r in cr.routes(&net, pair) {
            assert!(r.hops() >= 1);
        }
    }
}
