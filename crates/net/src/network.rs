//! The quantum data network: topology + capacities + link physics.

use qdn_graph::waxman::GeometricGraph;
use qdn_graph::{EdgeId, Graph, NodeId, Path};
use qdn_physics::fidelity::{route_fidelity, Fidelity};
use qdn_physics::link::LinkModel;
use qdn_physics::swap::SwapModel;
use serde::{Deserialize, Serialize};

use crate::NetError;

/// A fully specified QDN (paper §III-A/B): an undirected graph whose nodes
/// hold `Q_v` qubits, whose edges carry `W_e` quantum channels, and whose
/// per-edge link model gives the per-channel per-slot success `p_e`.
///
/// `QdnNetwork` is immutable after construction; time-varying availability
/// is expressed through [`crate::snapshot::CapacitySnapshot`] produced by a
/// [`crate::dynamics::ResourceDynamics`].
///
/// # Example
///
/// ```
/// use qdn_net::network::QdnNetworkBuilder;
/// use qdn_physics::link::LinkModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = QdnNetworkBuilder::new();
/// let a = b.add_node(12);
/// let c = b.add_node(12);
/// b.add_edge(a, c, 6, LinkModel::paper_default())?;
/// let net = b.build();
/// assert_eq!(net.node_count(), 2);
/// assert_eq!(net.qubit_capacity(a), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QdnNetwork {
    graph: Graph,
    /// Planar positions when the network came from a geometric generator.
    positions: Option<Vec<qdn_graph::geometry::Point>>,
    qubit_capacity: Vec<u32>,
    channel_capacity: Vec<u32>,
    link_models: Vec<LinkModel>,
    /// Elementary (single-link) entanglement fidelity per edge; used by
    /// the paper's §III-C fidelity-constraint extension.
    link_fidelities: Vec<Fidelity>,
    swap: SwapModel,
}

impl QdnNetwork {
    /// The topology.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of quantum nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Total qubit capacity `Q_v` of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn qubit_capacity(&self, v: NodeId) -> u32 {
        self.qubit_capacity[v.index()]
    }

    /// Total channel capacity `W_e` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[inline]
    pub fn channel_capacity(&self, e: EdgeId) -> u32 {
        self.channel_capacity[e.index()]
    }

    /// The link model of edge `e` (per-channel per-slot success `p_e`).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[inline]
    pub fn link(&self, e: EdgeId) -> &LinkModel {
        &self.link_models[e.index()]
    }

    /// The swapping model shared by all nodes.
    #[inline]
    pub fn swap(&self) -> &SwapModel {
        &self.swap
    }

    /// The elementary entanglement fidelity of links on edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[inline]
    pub fn link_fidelity(&self, e: EdgeId) -> Fidelity {
        self.link_fidelities[e.index()]
    }

    /// End-to-end fidelity of `route` after entanglement swapping (Werner
    /// parameters multiply across hops). Allocation-independent: extra
    /// channels raise the success *probability*, not the fidelity of the
    /// surviving pair.
    pub fn route_fidelity(&self, route: &Path) -> Fidelity {
        route_fidelity(route.edges().iter().map(|&e| self.link_fidelity(e)))
    }

    /// Node positions if the network was geometrically generated.
    pub fn positions(&self) -> Option<&[qdn_graph::geometry::Point]> {
        self.positions.as_deref()
    }

    /// The minimum per-channel success probability over all edges
    /// (`p_min` in the paper's Prop. 2 / Theorem 1 bounds).
    ///
    /// Returns 1.0 for an edgeless network (vacuously).
    pub fn p_min(&self) -> f64 {
        self.link_models
            .iter()
            .map(LinkModel::channel_success)
            .fold(1.0, f64::min)
    }

    /// End-to-end success probability of `route` under the allocation
    /// `allocation[i]` channels on `route.edges()[i]` (paper Eq. 2, with
    /// the swap factor folded in as the paper's §III-C remark allows).
    ///
    /// # Panics
    ///
    /// Panics if `allocation.len() != route.hops()`.
    pub fn route_success(&self, route: &Path, allocation: &[u32]) -> f64 {
        assert_eq!(
            allocation.len(),
            route.hops(),
            "allocation must cover every edge of the route"
        );
        let links = route
            .edges()
            .iter()
            .zip(allocation)
            .map(|(&e, &n)| self.link(e).success(n));
        self.swap.route_factor(route.hops()) * qdn_physics::prob::product_success(links)
    }

    /// Log success probability of `route` under `allocation` (what the
    /// objective in Eq. 3 sums).
    ///
    /// # Panics
    ///
    /// Panics if `allocation.len() != route.hops()`.
    pub fn ln_route_success(&self, route: &Path, allocation: &[u32]) -> f64 {
        assert_eq!(allocation.len(), route.hops());
        let mut ln = (SwapModel::swaps_for_hops(route.hops()) as f64) * self.swap.success().ln();
        for (&e, &n) in route.edges().iter().zip(allocation) {
            ln += self.link(e).ln_success(n as f64);
        }
        ln
    }

    /// Sum of qubit capacities (diagnostic).
    pub fn total_qubits(&self) -> u64 {
        self.qubit_capacity.iter().map(|&q| q as u64).sum()
    }

    /// Sum of channel capacities (diagnostic).
    pub fn total_channels(&self) -> u64 {
        self.channel_capacity.iter().map(|&w| w as u64).sum()
    }
}

/// Incremental builder for [`QdnNetwork`].
///
/// Preferred for hand-built test networks; generated networks come from
/// [`crate::config::NetworkConfig::build`].
#[derive(Debug, Clone, Default)]
pub struct QdnNetworkBuilder {
    graph: Graph,
    positions: Option<Vec<qdn_graph::geometry::Point>>,
    qubit_capacity: Vec<u32>,
    channel_capacity: Vec<u32>,
    link_models: Vec<LinkModel>,
    link_fidelities: Vec<Fidelity>,
    swap: SwapModel,
}

impl QdnNetworkBuilder {
    /// Creates an empty builder with perfect swapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing geometric topology, assigning every node
    /// the same qubit capacity and every edge the same channel capacity
    /// and link model (capacities can then be overridden per node/edge).
    pub fn from_topology(
        topo: GeometricGraph,
        qubits_per_node: u32,
        channels_per_edge: u32,
        link: LinkModel,
    ) -> Self {
        let n = topo.graph.node_count();
        let m = topo.graph.edge_count();
        QdnNetworkBuilder {
            graph: topo.graph,
            positions: Some(topo.positions),
            qubit_capacity: vec![qubits_per_node; n],
            channel_capacity: vec![channels_per_edge; m],
            link_models: vec![link; m],
            link_fidelities: vec![Fidelity::PERFECT; m],
            swap: SwapModel::perfect(),
        }
    }

    /// Adds a node with the given qubit capacity, returning its id.
    pub fn add_node(&mut self, qubits: u32) -> NodeId {
        self.qubit_capacity.push(qubits);
        self.graph.add_node()
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Adds an edge with the given channel capacity and link model.
    ///
    /// # Errors
    ///
    /// Propagates [`qdn_graph::GraphError`] for invalid endpoints,
    /// self-loops, or duplicate edges.
    pub fn add_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        channels: u32,
        link: LinkModel,
    ) -> Result<EdgeId, NetError> {
        let e = self.graph.add_edge(u, v)?;
        self.channel_capacity.push(channels);
        self.link_models.push(link);
        self.link_fidelities.push(Fidelity::PERFECT);
        Ok(e)
    }

    /// Overrides the qubit capacity of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn set_qubit_capacity(&mut self, v: NodeId, qubits: u32) -> &mut Self {
        self.qubit_capacity[v.index()] = qubits;
        self
    }

    /// Overrides the channel capacity of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn set_channel_capacity(&mut self, e: EdgeId, channels: u32) -> &mut Self {
        self.channel_capacity[e.index()] = channels;
        self
    }

    /// Overrides the link model of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn set_link(&mut self, e: EdgeId, link: LinkModel) -> &mut Self {
        self.link_models[e.index()] = link;
        self
    }

    /// Sets the swap model.
    pub fn set_swap(&mut self, swap: SwapModel) -> &mut Self {
        self.swap = swap;
        self
    }

    /// Overrides the elementary fidelity of `e` (defaults to perfect).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn set_link_fidelity(&mut self, e: EdgeId, fidelity: Fidelity) -> &mut Self {
        self.link_fidelities[e.index()] = fidelity;
        self
    }

    /// Sets the same elementary fidelity on every edge added so far.
    pub fn set_uniform_fidelity(&mut self, fidelity: Fidelity) -> &mut Self {
        for f in &mut self.link_fidelities {
            *f = fidelity;
        }
        self
    }

    /// Finalizes the network.
    pub fn build(self) -> QdnNetwork {
        QdnNetwork {
            graph: self.graph,
            positions: self.positions,
            qubit_capacity: self.qubit_capacity,
            channel_capacity: self.channel_capacity,
            link_models: self.link_models,
            link_fidelities: self.link_fidelities,
            swap: self.swap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_graph::Path;

    /// Line network a-b-c with distinct capacities for assertions.
    fn line() -> (QdnNetwork, [NodeId; 3], [EdgeId; 2]) {
        let mut b = QdnNetworkBuilder::new();
        let a = b.add_node(10);
        let m = b.add_node(14);
        let c = b.add_node(16);
        let e1 = b.add_edge(a, m, 5, LinkModel::new(0.5).unwrap()).unwrap();
        let e2 = b.add_edge(m, c, 8, LinkModel::new(0.6).unwrap()).unwrap();
        (b.build(), [a, m, c], [e1, e2])
    }

    #[test]
    fn builder_roundtrip() {
        let (net, [a, m, c], [e1, e2]) = line();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 2);
        assert_eq!(net.qubit_capacity(a), 10);
        assert_eq!(net.qubit_capacity(m), 14);
        assert_eq!(net.qubit_capacity(c), 16);
        assert_eq!(net.channel_capacity(e1), 5);
        assert_eq!(net.channel_capacity(e2), 8);
        assert!((net.link(e1).channel_success() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn p_min_is_minimum() {
        let (net, _, _) = line();
        assert!((net.p_min() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn route_success_is_product() {
        let (net, [a, _m, c], _) = line();
        let route = Path::from_nodes(net.graph(), vec![a, NodeId(1), c]).unwrap();
        let p = net.route_success(&route, &[1, 1]);
        assert!((p - 0.5 * 0.6).abs() < 1e-12);
        let p2 = net.route_success(&route, &[2, 1]);
        assert!((p2 - (1.0 - 0.25) * 0.6).abs() < 1e-12);
    }

    #[test]
    fn ln_route_success_consistent() {
        let (net, [a, _m, c], _) = line();
        let route = Path::from_nodes(net.graph(), vec![a, NodeId(1), c]).unwrap();
        let p = net.route_success(&route, &[2, 3]);
        let ln = net.ln_route_success(&route, &[2, 3]);
        assert!((p.ln() - ln).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "allocation must cover")]
    fn route_success_length_mismatch_panics() {
        let (net, [a, _m, c], _) = line();
        let route = Path::from_nodes(net.graph(), vec![a, NodeId(1), c]).unwrap();
        let _ = net.route_success(&route, &[1]);
    }

    #[test]
    fn route_success_with_lossy_swap() {
        let (mut_builder, [a, _, c]) = {
            let mut b = QdnNetworkBuilder::new();
            let a = b.add_node(10);
            let m = b.add_node(10);
            let c = b.add_node(10);
            b.add_edge(a, m, 5, LinkModel::new(0.5).unwrap()).unwrap();
            b.add_edge(m, c, 5, LinkModel::new(0.5).unwrap()).unwrap();
            b.set_swap(SwapModel::new(0.8).unwrap());
            (b, [a, m, c])
        };
        let net = mut_builder.build();
        let route = Path::from_nodes(net.graph(), vec![a, NodeId(1), c]).unwrap();
        // 2 hops -> 1 swap.
        let p = net.route_success(&route, &[1, 1]);
        assert!((p - 0.8 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn totals() {
        let (net, _, _) = line();
        assert_eq!(net.total_qubits(), 40);
        assert_eq!(net.total_channels(), 13);
    }

    #[test]
    fn from_topology_uniform_fill() {
        use qdn_graph::waxman::WaxmanConfig;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let topo = WaxmanConfig::paper_default().generate(&mut rng);
        let edges = topo.graph.edge_count();
        let b = QdnNetworkBuilder::from_topology(topo, 12, 6, LinkModel::paper_default());
        let net = b.build();
        assert_eq!(net.node_count(), 20);
        assert_eq!(net.edge_count(), edges);
        assert!(net.graph().node_ids().all(|v| net.qubit_capacity(v) == 12));
        assert!(net.graph().edge_ids().all(|e| net.channel_capacity(e) == 6));
        assert!(net.positions().is_some());
    }
}
