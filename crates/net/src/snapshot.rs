//! Per-slot available capacities `Q_v^t`, `W_e^t`.

use qdn_graph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

use crate::network::QdnNetwork;

/// The capacities available to the user in one time slot.
///
/// The paper's capacities vary over time because "some qubits may be
/// occupied by other users" (§III-A); a snapshot is what the per-slot
/// problem P2 sees. Snapshots never exceed the network's installed
/// capacity (enforced by [`CapacitySnapshot::clamped`]).
///
/// # Example
///
/// ```
/// use qdn_net::network::QdnNetworkBuilder;
/// use qdn_net::snapshot::CapacitySnapshot;
/// use qdn_physics::link::LinkModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = QdnNetworkBuilder::new();
/// let a = b.add_node(10);
/// let c = b.add_node(12);
/// b.add_edge(a, c, 5, LinkModel::paper_default())?;
/// let net = b.build();
///
/// let snap = CapacitySnapshot::full(&net);
/// assert_eq!(snap.qubits(a), 10);
/// # Ok(())
/// # }
/// ```
/// Version tag of [`CapacitySnapshot`]; bump on layout changes.
pub const CAPACITY_SNAPSHOT_VERSION: u32 = 1;

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacitySnapshot {
    /// Layout version ([`CAPACITY_SNAPSHOT_VERSION`]).
    pub version: u32,
    qubits: Vec<u32>,
    channels: Vec<u32>,
}

impl CapacitySnapshot {
    /// All installed capacity is available (no exogenous occupancy).
    pub fn full(network: &QdnNetwork) -> Self {
        CapacitySnapshot {
            version: CAPACITY_SNAPSHOT_VERSION,
            qubits: network
                .graph()
                .node_ids()
                .map(|v| network.qubit_capacity(v))
                .collect(),
            channels: network
                .graph()
                .edge_ids()
                .map(|e| network.channel_capacity(e))
                .collect(),
        }
    }

    /// Builds a snapshot from explicit vectors, clamping each entry to the
    /// installed capacity so a snapshot can never exceed the hardware.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the network's node/edge
    /// counts.
    pub fn clamped(network: &QdnNetwork, qubits: Vec<u32>, channels: Vec<u32>) -> Self {
        assert_eq!(qubits.len(), network.node_count(), "qubit vector length");
        assert_eq!(
            channels.len(),
            network.edge_count(),
            "channel vector length"
        );
        let qubits = qubits
            .into_iter()
            .enumerate()
            .map(|(i, q)| q.min(network.qubit_capacity(NodeId(i as u32))))
            .collect();
        let channels = channels
            .into_iter()
            .enumerate()
            .map(|(i, w)| w.min(network.channel_capacity(EdgeId(i as u32))))
            .collect();
        CapacitySnapshot {
            version: CAPACITY_SNAPSHOT_VERSION,
            qubits,
            channels,
        }
    }

    /// Available qubits at node `v` in this slot.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn qubits(&self, v: NodeId) -> u32 {
        self.qubits[v.index()]
    }

    /// Available channels on edge `e` in this slot.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[inline]
    pub fn channels(&self, e: EdgeId) -> u32 {
        self.channels[e.index()]
    }

    /// The raw qubit vector (indexed by `NodeId::index`).
    pub fn qubit_vec(&self) -> &[u32] {
        &self.qubits
    }

    /// The raw channel vector (indexed by `EdgeId::index`).
    pub fn channel_vec(&self) -> &[u32] {
        &self.channels
    }

    /// Total available qubits this slot.
    pub fn total_qubits(&self) -> u64 {
        self.qubits.iter().map(|&q| q as u64).sum()
    }

    /// Total available channels this slot.
    pub fn total_channels(&self) -> u64 {
        self.channels.iter().map(|&w| w as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::QdnNetworkBuilder;
    use qdn_physics::link::LinkModel;

    fn net() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(12);
        b.add_edge(a, c, 5, LinkModel::paper_default()).unwrap();
        b.build()
    }

    #[test]
    fn full_matches_installed() {
        let n = net();
        let s = CapacitySnapshot::full(&n);
        assert_eq!(s.qubits(NodeId(0)), 10);
        assert_eq!(s.qubits(NodeId(1)), 12);
        assert_eq!(s.channels(EdgeId(0)), 5);
        assert_eq!(s.total_qubits(), 22);
        assert_eq!(s.total_channels(), 5);
    }

    #[test]
    fn clamped_limits_to_installed() {
        let n = net();
        let s = CapacitySnapshot::clamped(&n, vec![100, 3], vec![100]);
        assert_eq!(s.qubits(NodeId(0)), 10); // clamped from 100
        assert_eq!(s.qubits(NodeId(1)), 3);
        assert_eq!(s.channels(EdgeId(0)), 5); // clamped from 100
    }

    #[test]
    #[should_panic(expected = "qubit vector length")]
    fn clamped_checks_lengths() {
        let n = net();
        let _ = CapacitySnapshot::clamped(&n, vec![1], vec![1]);
    }

    #[test]
    fn raw_vectors_accessible() {
        let n = net();
        let s = CapacitySnapshot::full(&n);
        assert_eq!(s.qubit_vec(), &[10, 12]);
        assert_eq!(s.channel_vec(), &[5]);
    }
}
