//! Quantum data network model.
//!
//! Combines the topology substrate (`qdn-graph`) with the physical layer
//! (`qdn-physics`) into the QDN of the paper's §III:
//!
//! * [`network`] — [`QdnNetwork`]: graph + per-node qubit capacities `Q_v`
//!   + per-edge channel capacities `W_e` + per-edge link models `p_e`,
//! * [`snapshot`] — per-slot available capacities `Q_v^t`, `W_e^t`,
//! * [`dynamics`] — the exogenous occupancy process that makes capacities
//!   time-varying ("some qubits may be occupied by other users", §III-A),
//! * [`request`] — SD pairs and per-slot request sets `Φ_t`,
//! * [`workload`] — request generators (the paper draws `|Φ_t| ~ U[1,5]`),
//! * [`routes`] — pre-computed candidate route sets `R(φ)` with the
//!   paper's `R` (routes per pair) and `L` (max hops) bounds,
//! * [`config`] — serde-serializable experiment configuration producing
//!   reproducible networks.
//!
//! # Example
//!
//! ```
//! use qdn_net::config::NetworkConfig;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
//! assert_eq!(net.node_count(), 20);
//! assert!(net.p_min() > 0.0);
//! ```

#![forbid(unsafe_code)]
pub mod config;
pub mod dynamics;
pub mod network;
pub mod request;
pub mod routes;
pub mod snapshot;
pub mod workload;

pub use config::NetworkConfig;
pub use network::QdnNetwork;
pub use request::SdPair;
pub use routes::CandidateRoutes;
pub use snapshot::CapacitySnapshot;

/// Errors raised while constructing or querying a QDN.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// The underlying graph rejected an operation.
    Graph(qdn_graph::GraphError),
    /// A physical parameter was invalid.
    Physics(qdn_physics::PhysicsError),
    /// A capacity range was empty or zero.
    InvalidCapacityRange {
        /// Name of the range for diagnostics.
        name: &'static str,
        /// Low bound supplied.
        low: u32,
        /// High bound supplied.
        high: u32,
    },
    /// A source node equals its destination.
    DegenerateSdPair {
        /// The offending node.
        node: qdn_graph::NodeId,
    },
    /// The network has too few nodes for the requested operation.
    TooFewNodes {
        /// Nodes present.
        have: usize,
        /// Nodes required.
        need: usize,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Graph(e) => write!(f, "{e}"),
            NetError::Physics(e) => write!(f, "{e}"),
            NetError::InvalidCapacityRange { name, low, high } => {
                write!(
                    f,
                    "{name} range [{low}, {high}] is invalid (need 1 <= low <= high)"
                )
            }
            NetError::DegenerateSdPair { node } => {
                write!(f, "SD pair has identical source and destination {node}")
            }
            NetError::TooFewNodes { have, need } => {
                write!(f, "network has {have} nodes but {need} are required")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Graph(e) => Some(e),
            NetError::Physics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qdn_graph::GraphError> for NetError {
    fn from(e: qdn_graph::GraphError) -> Self {
        NetError::Graph(e)
    }
}

impl From<qdn_physics::PhysicsError> for NetError {
    fn from(e: qdn_physics::PhysicsError) -> Self {
        NetError::Physics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = NetError::InvalidCapacityRange {
            name: "qubits",
            low: 5,
            high: 2,
        };
        assert!(e.to_string().contains("qubits"));
        assert!(e.source().is_none());

        let e: NetError = qdn_physics::PhysicsError::NonPositive {
            name: "x",
            value: 0.0,
        }
        .into();
        assert!(e.source().is_some());
    }
}
