//! Serializable network configuration and reproducible construction.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use qdn_graph::geometry::Point;
use qdn_graph::waxman::{calibrate_beta, GeometricGraph, WaxmanConfig};
use qdn_graph::{generators, Graph};
use qdn_physics::fiber::ChannelModel;
use qdn_physics::link::LinkModel;
use qdn_physics::swap::SwapModel;

use crate::network::{QdnNetwork, QdnNetworkBuilder};
use crate::NetError;

/// An inclusive integer range `[low, high]` for capacity draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityRange {
    /// Inclusive lower bound.
    pub low: u32,
    /// Inclusive upper bound.
    pub high: u32,
}

impl CapacityRange {
    /// Creates a validated range.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidCapacityRange`] unless
    /// `1 <= low <= high`.
    pub fn new(name: &'static str, low: u32, high: u32) -> Result<Self, NetError> {
        if low == 0 || low > high {
            return Err(NetError::InvalidCapacityRange { name, low, high });
        }
        Ok(CapacityRange { low, high })
    }

    /// Draws a value uniformly from the range.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.random_range(self.low..=self.high)
    }
}

/// Full description of a QDN instance, matching the paper's §V-A defaults.
///
/// # Example
///
/// ```
/// use qdn_net::config::NetworkConfig;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let cfg = NetworkConfig::paper_default();
/// let net = cfg.build(&mut rng).unwrap();
/// assert_eq!(net.node_count(), 20);
/// // Qubit capacities in U[10, 16].
/// assert!(net.graph().node_ids().all(|v| (10..=16).contains(&net.qubit_capacity(v))));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Topology family and generator parameters.
    pub topology: TopologyConfig,
    /// Qubit capacity draw `Q_v ~ U[low, high]` (paper: `U[10, 16]`).
    pub qubit_capacity: CapacityRange,
    /// Channel capacity draw `W_e ~ U[low, high]` (paper: `U[5, 8]`).
    pub channel_capacity: CapacityRange,
    /// Per-attempt success model (paper: constant `2×10⁻⁴`).
    pub channel_model: ChannelModel,
    /// Attempts per slot `A` (paper: 4000).
    pub attempts_per_slot: u64,
    /// Swapping success probability (paper: 1.0).
    pub swap_success: f64,
    /// Elementary per-link entanglement fidelity in `[1/4, 1]`. The paper
    /// abstracts fidelity away in the evaluation (perfect links); values
    /// below 1 feed the §III-C fidelity-constraint extension.
    pub elementary_fidelity: f64,
}

/// Topology family for network generation.
///
/// The paper evaluates on random Waxman graphs (§V-A); the classic
/// families below are the settings of the specialized entanglement-
/// routing literature its related-work section cites (grid \[15\],
/// ring \[16\], star \[17\]) and let the same experiment stack run on them.
/// All layouts place nodes in a `side × side` square so the fiber-loss
/// channel model sees realistic edge lengths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologyConfig {
    /// Random Waxman graph, optionally β-recalibrated per draw so the
    /// expected average degree matches a target (the paper holds degree
    /// ≈ 4 across network sizes).
    Waxman {
        /// Generator parameters.
        config: WaxmanConfig,
        /// Target expected average degree, if any.
        target_average_degree: Option<f64>,
    },
    /// A cycle laid out on a circle.
    Ring {
        /// Number of nodes (≥ 3 for a proper cycle).
        nodes: usize,
        /// Deployment square side length.
        side: f64,
    },
    /// A `rows × cols` lattice.
    Grid {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
        /// Deployment square side length.
        side: f64,
    },
    /// A hub with `leaves` spokes (the entanglement-switch setting).
    Star {
        /// Number of leaf nodes.
        leaves: usize,
        /// Deployment square side length.
        side: f64,
    },
    /// A path graph.
    Line {
        /// Number of nodes.
        nodes: usize,
        /// Deployment square side length.
        side: f64,
    },
}

impl TopologyConfig {
    /// The paper's topology: degree-calibrated 20-node Waxman.
    pub fn paper_default() -> Self {
        TopologyConfig::Waxman {
            config: WaxmanConfig::paper_default(),
            target_average_degree: Some(4.0),
        }
    }

    /// Number of nodes this configuration will generate.
    pub fn node_count(&self) -> usize {
        match self {
            TopologyConfig::Waxman { config, .. } => config.nodes,
            TopologyConfig::Ring { nodes, .. } | TopologyConfig::Line { nodes, .. } => *nodes,
            TopologyConfig::Grid { rows, cols, .. } => rows * cols,
            TopologyConfig::Star { leaves, .. } => leaves + 1,
        }
    }

    /// Returns a copy generating (approximately) `nodes` nodes: exact for
    /// Waxman/ring/line, `leaves = nodes − 1` for a star, and the nearest
    /// not-smaller `⌈√n⌉ × ⌈√n⌉` lattice for a grid.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        match &mut self {
            TopologyConfig::Waxman { config, .. } => config.nodes = nodes,
            TopologyConfig::Ring { nodes: n, .. } | TopologyConfig::Line { nodes: n, .. } => {
                *n = nodes;
            }
            TopologyConfig::Grid { rows, cols, .. } => {
                let s = (nodes as f64).sqrt().ceil() as usize;
                *rows = s;
                *cols = s;
            }
            TopologyConfig::Star { leaves, .. } => *leaves = nodes.saturating_sub(1),
        }
        self
    }

    /// Generates the topology with node positions.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> GeometricGraph {
        match self {
            TopologyConfig::Waxman {
                config,
                target_average_degree,
            } => {
                let mut waxman = config.clone();
                if let Some(target) = target_average_degree {
                    waxman.beta = calibrate_beta(&waxman, *target, rng);
                }
                waxman.generate(rng)
            }
            TopologyConfig::Ring { nodes, side } => {
                layout_circle(generators::ring(*nodes), *nodes, *side, false)
            }
            TopologyConfig::Grid { rows, cols, side } => {
                layout_grid(generators::grid(*rows, *cols), *rows, *cols, *side)
            }
            TopologyConfig::Star { leaves, side } => {
                // Node 0 is the hub at the center; leaves on the circle.
                layout_circle(generators::star(*leaves), *leaves, *side, true)
            }
            TopologyConfig::Line { nodes, side } => {
                layout_line(generators::line(*nodes), *nodes, *side)
            }
        }
    }
}

/// Lays `count` nodes on a circle of diameter `0.9·side`; with `hub`,
/// node 0 sits at the center and the remaining `count` nodes circle it.
fn layout_circle(graph: Graph, count: usize, side: f64, hub: bool) -> GeometricGraph {
    let center = side / 2.0;
    let radius = 0.45 * side;
    let mut positions = Vec::with_capacity(graph.node_count());
    if hub {
        positions.push(Point::new(center, center));
    }
    for i in 0..count {
        let angle = 2.0 * std::f64::consts::PI * i as f64 / count.max(1) as f64;
        positions.push(Point::new(
            center + radius * angle.cos(),
            center + radius * angle.sin(),
        ));
    }
    GeometricGraph { graph, positions }
}

/// Lays a lattice over the inner 90% of the square, row-major to match
/// [`generators::grid`]'s node numbering.
fn layout_grid(graph: Graph, rows: usize, cols: usize, side: f64) -> GeometricGraph {
    let margin = 0.05 * side;
    let span = side - 2.0 * margin;
    let step_x = span / cols.max(2).saturating_sub(1) as f64;
    let step_y = span / rows.max(2).saturating_sub(1) as f64;
    let positions = (0..rows)
        .flat_map(|r| {
            (0..cols)
                .map(move |c| Point::new(margin + c as f64 * step_x, margin + r as f64 * step_y))
        })
        .collect();
    GeometricGraph { graph, positions }
}

/// Lays a path along the horizontal midline.
fn layout_line(graph: Graph, nodes: usize, side: f64) -> GeometricGraph {
    let margin = 0.05 * side;
    let step = (side - 2.0 * margin) / nodes.max(2).saturating_sub(1) as f64;
    let positions = (0..nodes)
        .map(|i| Point::new(margin + i as f64 * step, side / 2.0))
        .collect();
    GeometricGraph { graph, positions }
}

impl NetworkConfig {
    /// The paper's §V-A default configuration.
    pub fn paper_default() -> Self {
        NetworkConfig {
            topology: TopologyConfig::paper_default(),
            qubit_capacity: CapacityRange { low: 10, high: 16 },
            channel_capacity: CapacityRange { low: 5, high: 8 },
            channel_model: ChannelModel::paper_default(),
            attempts_per_slot: 4000,
            swap_success: 1.0,
            elementary_fidelity: 1.0,
        }
    }

    /// Returns a copy with a different node count (used by the Fig. 6
    /// network-size sweep; degree calibration keeps the topology density
    /// comparable).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.topology = self.topology.with_nodes(nodes);
        self
    }

    /// Builds a concrete network, drawing the topology and capacities from
    /// `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if the physical parameters are invalid (e.g. a
    /// fiber channel model underflowing for very long generated edges).
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<QdnNetwork, NetError> {
        let topo = self.topology.generate(rng);

        // Default link model placeholder; replaced per edge below.
        let default_link = LinkModel::from_attempts(
            self.channel_model.attempt_probability(0.0)?,
            self.attempts_per_slot,
        );
        let edge_lengths: Vec<f64> = topo.graph.edge_ids().map(|e| topo.edge_length(e)).collect();
        let mut builder = QdnNetworkBuilder::from_topology(topo, 0, 0, default_link);

        // Capacities: Q_v ~ U[low, high], W_e ~ U[low, high].
        let node_ids: Vec<_> = (0..builder.node_count() as u32)
            .map(qdn_graph::NodeId)
            .collect();
        for v in node_ids {
            let q = self.qubit_capacity.sample(rng);
            builder.set_qubit_capacity(v, q);
        }
        for (i, &len) in edge_lengths.iter().enumerate() {
            let e = qdn_graph::EdgeId(i as u32);
            let w = self.channel_capacity.sample(rng);
            builder.set_channel_capacity(e, w);
            let attempt = self.channel_model.attempt_probability(len_km(len))?;
            builder.set_link(e, LinkModel::from_attempts(attempt, self.attempts_per_slot));
        }
        builder.set_swap(SwapModel::new(self.swap_success)?);
        builder.set_uniform_fidelity(qdn_physics::fidelity::Fidelity::new(
            self.elementary_fidelity,
        )?);
        Ok(builder.build())
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The paper's square is unitless; interpret coordinates as kilometres
/// for the fiber model (a 100 km metro area).
fn len_km(unit_length: f64) -> f64 {
    unit_length
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn capacity_range_validates() {
        assert!(CapacityRange::new("q", 0, 5).is_err());
        assert!(CapacityRange::new("q", 6, 5).is_err());
        assert!(CapacityRange::new("q", 1, 1).is_ok());
    }

    #[test]
    fn capacity_range_samples_inclusive() {
        let r = CapacityRange { low: 3, high: 5 };
        let mut rng = rng(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = r.sample(&mut rng);
            assert!((3..=5).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn paper_default_builds() {
        let cfg = NetworkConfig::paper_default();
        let net = cfg.build(&mut rng(3)).unwrap();
        assert_eq!(net.node_count(), 20);
        assert!(net.edge_count() > 0);
        for v in net.graph().node_ids() {
            assert!((10..=16).contains(&net.qubit_capacity(v)));
        }
        for e in net.graph().edge_ids() {
            assert!((5..=8).contains(&net.channel_capacity(e)));
            // Constant channel model: every edge has the same p_e ~ 0.5507.
            assert!((net.link(e).channel_success() - 0.5507).abs() < 1e-3);
        }
        assert!((net.swap().success() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let cfg = NetworkConfig::paper_default();
        let n1 = cfg.build(&mut rng(11)).unwrap();
        let n2 = cfg.build(&mut rng(11)).unwrap();
        assert_eq!(n1.graph(), n2.graph());
        assert_eq!(n1.total_qubits(), n2.total_qubits());
        assert_eq!(n1.total_channels(), n2.total_channels());
    }

    #[test]
    fn degree_calibration_applied_across_sizes() {
        for &n in &[10usize, 20, 30] {
            let cfg = NetworkConfig::paper_default().with_nodes(n);
            let mut degrees = 0.0;
            const TRIALS: usize = 15;
            for s in 0..TRIALS {
                let net = cfg.build(&mut rng(100 + s as u64)).unwrap();
                degrees += net.graph().average_degree();
            }
            let avg = degrees / TRIALS as f64;
            assert!(
                (2.5..=5.8).contains(&avg),
                "n={n}: average degree {avg} should be near 4"
            );
        }
    }

    #[test]
    fn fiber_model_varies_per_edge() {
        let mut cfg = NetworkConfig::paper_default();
        cfg.channel_model = ChannelModel::fiber(1e-3, 0.2).unwrap();
        let net = cfg.build(&mut rng(5)).unwrap();
        let probs: Vec<f64> = net
            .graph()
            .edge_ids()
            .map(|e| net.link(e).channel_success())
            .collect();
        // Edges have different lengths, so probabilities should differ.
        let first = probs[0];
        assert!(probs.iter().any(|&p| (p - first).abs() > 1e-9));
    }

    #[test]
    fn p_min_positive() {
        let net = NetworkConfig::paper_default().build(&mut rng(9)).unwrap();
        assert!(net.p_min() > 0.0 && net.p_min() < 1.0);
    }

    #[test]
    fn classic_topologies_build() {
        let cases: Vec<(TopologyConfig, usize, usize)> = vec![
            (
                TopologyConfig::Ring {
                    nodes: 8,
                    side: 100.0,
                },
                8,
                8,
            ),
            (
                TopologyConfig::Grid {
                    rows: 3,
                    cols: 4,
                    side: 100.0,
                },
                12,
                3 * 3 + 2 * 4, // (rows-1)*cols vertical + rows*(cols-1) horizontal
            ),
            (
                TopologyConfig::Star {
                    leaves: 6,
                    side: 100.0,
                },
                7,
                6,
            ),
            (
                TopologyConfig::Line {
                    nodes: 5,
                    side: 100.0,
                },
                5,
                4,
            ),
        ];
        for (topology, nodes, edges) in cases {
            assert_eq!(topology.node_count(), nodes, "{topology:?}");
            let cfg = NetworkConfig {
                topology: topology.clone(),
                ..NetworkConfig::paper_default()
            };
            let net = cfg.build(&mut rng(4)).unwrap();
            assert_eq!(net.node_count(), nodes, "{topology:?}");
            assert_eq!(net.edge_count(), edges, "{topology:?}");
            assert!(net.positions().is_some());
            assert!(qdn_graph::connectivity::is_connected(net.graph()));
        }
    }

    #[test]
    fn classic_layouts_fit_the_square() {
        for topology in [
            TopologyConfig::Ring {
                nodes: 10,
                side: 100.0,
            },
            TopologyConfig::Grid {
                rows: 4,
                cols: 4,
                side: 100.0,
            },
            TopologyConfig::Star {
                leaves: 9,
                side: 100.0,
            },
            TopologyConfig::Line {
                nodes: 7,
                side: 100.0,
            },
        ] {
            let topo = topology.generate(&mut rng(1));
            for p in &topo.positions {
                assert!((0.0..=100.0).contains(&p.x), "{topology:?}: x={}", p.x);
                assert!((0.0..=100.0).contains(&p.y), "{topology:?}: y={}", p.y);
            }
            // Every edge has a positive geometric length for the fiber model.
            for e in topo.graph.edge_ids() {
                assert!(topo.edge_length(e) > 0.0);
            }
        }
    }

    #[test]
    fn with_nodes_per_family() {
        let ring = TopologyConfig::Ring {
            nodes: 4,
            side: 100.0,
        }
        .with_nodes(9);
        assert_eq!(ring.node_count(), 9);
        let grid = TopologyConfig::Grid {
            rows: 2,
            cols: 2,
            side: 100.0,
        }
        .with_nodes(10);
        assert_eq!(grid.node_count(), 16, "next square lattice up from 10");
        let star = TopologyConfig::Star {
            leaves: 3,
            side: 100.0,
        }
        .with_nodes(8);
        assert_eq!(star.node_count(), 8);
        let waxman = TopologyConfig::paper_default().with_nodes(30);
        assert_eq!(waxman.node_count(), 30);
    }

    #[test]
    fn topology_config_round_trips_json() {
        for topology in [
            TopologyConfig::paper_default(),
            TopologyConfig::Grid {
                rows: 3,
                cols: 5,
                side: 50.0,
            },
            TopologyConfig::Star {
                leaves: 4,
                side: 100.0,
            },
        ] {
            let cfg = NetworkConfig {
                topology,
                ..NetworkConfig::paper_default()
            };
            let json = serde_json::to_string(&cfg).unwrap();
            let back: NetworkConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(cfg, back);
        }
    }
}
