//! Exogenous resource occupancy processes.
//!
//! The paper models qubit and channel availability as time-varying:
//! "the available qubits `Q_v^t` can change over time … as some qubits may
//! be occupied by other users. This occupancy is considered as an
//! exogenous process" (§III-A). The evaluation itself draws capacities
//! once and keeps them fixed, which corresponds to [`StaticDynamics`]; the
//! other implementations exercise the genuinely time-varying code path and
//! are used in robustness tests and ablations.

use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use qdn_graph::EdgeId;

use crate::network::QdnNetwork;
use crate::snapshot::CapacitySnapshot;

/// One link failure or repair, as emitted by [`ChurnDynamics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Slot in which the event took effect.
    pub t: u64,
    /// The affected edge.
    pub edge: EdgeId,
    /// Failure or repair.
    pub kind: ChurnEventKind,
}

/// The direction of a [`ChurnEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEventKind {
    /// The link went down (zero channels until repaired).
    Fail,
    /// The link came back at full pre-failure capacity.
    Repair,
}

/// A source of per-slot capacity snapshots.
///
/// Implementations observe the slot index and the installed network and
/// return what is left for our user after exogenous occupancy. They may
/// keep internal state (e.g. Markov chains) — hence `&mut self`.
pub trait ResourceDynamics: std::fmt::Debug + Send {
    /// Capacities available in slot `t`.
    fn snapshot(
        &mut self,
        t: u64,
        network: &QdnNetwork,
        rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot;

    /// Resets internal state so a new trial can replay the process.
    fn reset(&mut self) {}

    /// The full failure/repair trace so far, for dynamics that model
    /// topology churn. Occupancy-only processes return an empty slice.
    fn churn_events(&self) -> &[ChurnEvent] {
        &[]
    }
}

/// No exogenous occupancy: the full installed capacity every slot.
///
/// Matches the paper's evaluation setup (capacities drawn once per
/// topology, then constant over the horizon).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticDynamics;

impl ResourceDynamics for StaticDynamics {
    fn snapshot(
        &mut self,
        _t: u64,
        network: &QdnNetwork,
        _rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        CapacitySnapshot::full(network)
    }
}

/// I.i.d. uniform occupancy: each slot, every node/edge independently
/// loses a uniformly random fraction of its capacity up to
/// `max_occupied_fraction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformOccupancy {
    /// Upper bound on the occupied fraction, in `[0, 1]`.
    pub max_occupied_fraction: f64,
}

impl UniformOccupancy {
    /// Creates the process, clamping the fraction into `[0, 1]`.
    pub fn new(max_occupied_fraction: f64) -> Self {
        UniformOccupancy {
            max_occupied_fraction: max_occupied_fraction.clamp(0.0, 1.0),
        }
    }
}

impl ResourceDynamics for UniformOccupancy {
    fn snapshot(
        &mut self,
        _t: u64,
        network: &QdnNetwork,
        rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        let mut occupy = |cap: u32| -> u32 {
            let frac = rng.random_range(0.0..=self.max_occupied_fraction);
            let taken = (cap as f64 * frac).floor() as u32;
            cap - taken.min(cap)
        };
        let qubits = network
            .graph()
            .node_ids()
            .map(|v| occupy(network.qubit_capacity(v)))
            .collect();
        let channels = network
            .graph()
            .edge_ids()
            .map(|e| occupy(network.channel_capacity(e)))
            .collect();
        CapacitySnapshot::clamped(network, qubits, channels)
    }
}

/// Two-state Markov (Gilbert) occupancy: each resource is either *free*
/// (full capacity) or *busy* (a configurable fraction remains), with
/// geometric sojourn times.
///
/// This models bursty co-tenant workloads: once another user grabs
/// resources they tend to hold them for several slots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarkovOccupancy {
    /// Probability of transitioning free → busy each slot.
    pub p_busy: f64,
    /// Probability of transitioning busy → free each slot.
    pub p_free: f64,
    /// Fraction of capacity remaining while busy, in `[0, 1]`.
    pub busy_fraction: f64,
    #[serde(skip)]
    node_busy: Vec<bool>,
    #[serde(skip)]
    edge_busy: Vec<bool>,
}

impl MarkovOccupancy {
    /// Creates the chain with all resources initially free.
    pub fn new(p_busy: f64, p_free: f64, busy_fraction: f64) -> Self {
        MarkovOccupancy {
            p_busy: p_busy.clamp(0.0, 1.0),
            p_free: p_free.clamp(0.0, 1.0),
            busy_fraction: busy_fraction.clamp(0.0, 1.0),
            node_busy: Vec::new(),
            edge_busy: Vec::new(),
        }
    }

    fn step_states(&mut self, network: &QdnNetwork, rng: &mut dyn rand::Rng) {
        self.node_busy.resize(network.node_count(), false);
        self.edge_busy.resize(network.edge_count(), false);
        for busy in self.node_busy.iter_mut().chain(self.edge_busy.iter_mut()) {
            *busy = if *busy {
                !rng.random_bool(self.p_free)
            } else {
                rng.random_bool(self.p_busy)
            };
        }
    }
}

impl ResourceDynamics for MarkovOccupancy {
    fn snapshot(
        &mut self,
        _t: u64,
        network: &QdnNetwork,
        rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        self.step_states(network, rng);
        let frac = self.busy_fraction;
        let qubits = network
            .graph()
            .node_ids()
            .map(|v| {
                let cap = network.qubit_capacity(v);
                if self.node_busy[v.index()] {
                    (cap as f64 * frac).floor() as u32
                } else {
                    cap
                }
            })
            .collect();
        let channels = network
            .graph()
            .edge_ids()
            .map(|e| {
                let cap = network.channel_capacity(e);
                if self.edge_busy[e.index()] {
                    (cap as f64 * frac).floor() as u32
                } else {
                    cap
                }
            })
            .collect();
        CapacitySnapshot::clamped(network, qubits, channels)
    }

    fn reset(&mut self) {
        self.node_busy.clear();
        self.edge_busy.clear();
    }
}

/// Replays a fixed sequence of snapshots (e.g. captured from another run),
/// repeating the last one when the trace is exhausted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceDynamics {
    trace: Vec<CapacitySnapshot>,
}

impl TraceDynamics {
    /// Creates a trace player.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn new(trace: Vec<CapacitySnapshot>) -> Self {
        assert!(
            !trace.is_empty(),
            "trace must contain at least one snapshot"
        );
        TraceDynamics { trace }
    }
}

impl ResourceDynamics for TraceDynamics {
    fn snapshot(
        &mut self,
        t: u64,
        _network: &QdnNetwork,
        _rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        let idx = (t as usize).min(self.trace.len() - 1);
        self.trace[idx].clone()
    }
}

/// Poisson link failures with MTTR-distributed repair on top of a base
/// occupancy process.
///
/// Each slot, first any outage whose repair time has elapsed ends (the
/// link returns at full pre-failure capacity — the base process still
/// applies its occupancy on top), then `Pois(failure_rate)` fresh
/// failures strike uniformly random currently-alive links; each outage
/// lasts `Geom(1/mttr)` slots (mean `mttr`, minimum 1). A failed link
/// reports zero channels regardless of what the base process says.
///
/// The failure trace is driven by a private RNG seeded from `seed`, so it
/// is reproducible independently of the environment stream consumed by
/// the base process, and is recorded verbatim — see
/// [`ResourceDynamics::churn_events`].
#[derive(Debug)]
pub struct ChurnDynamics {
    failure_rate: f64,
    mttr: f64,
    seed: u64,
    base: Box<dyn ResourceDynamics>,
    churn_rng: rand::rngs::StdRng,
    /// Per edge: the slot at which it comes back up; 0 = currently up
    /// (an outage starting at slot t lasts ≥ 1 slot, so it always ends
    /// at t + d ≥ 1 and 0 is unambiguous).
    down_until: Vec<u64>,
    events: Vec<ChurnEvent>,
}

impl ChurnDynamics {
    /// Creates the process; `failure_rate` is clamped to `≥ 0` and `mttr`
    /// to `≥ 1` (an outage shorter than one slot is invisible).
    pub fn new(failure_rate: f64, mttr: f64, seed: u64, base: Box<dyn ResourceDynamics>) -> Self {
        ChurnDynamics {
            failure_rate: failure_rate.max(0.0),
            mttr: mttr.max(1.0),
            seed,
            base,
            churn_rng: rand::rngs::StdRng::seed_from_u64(seed),
            down_until: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Edges currently down, ascending.
    pub fn down_edges(&self) -> Vec<EdgeId> {
        self.down_until
            .iter()
            .enumerate()
            .filter(|(_, &du)| du != 0)
            .map(|(i, _)| EdgeId(i as u32))
            .collect()
    }

    fn sample_failures(&mut self, cap: usize) -> usize {
        // Knuth's product-of-uniforms sampler, capped at the number of
        // currently-alive links.
        let limit = (-self.failure_rate).exp();
        let mut count = 0usize;
        let mut product: f64 = self.churn_rng.random();
        while product > limit && count < cap {
            count += 1;
            let u: f64 = self.churn_rng.random();
            product *= u;
        }
        count
    }

    fn sample_outage(&mut self) -> u64 {
        // Geometric(1/mttr) by inversion: d ≥ 1 slots, mean mttr.
        let p = (1.0 / self.mttr).min(1.0);
        if p >= 1.0 {
            return 1;
        }
        let u: f64 = self.churn_rng.random();
        let d = ((1.0 - u).ln() / (1.0 - p).ln()).ceil();
        (d.max(1.0)) as u64
    }
}

impl ResourceDynamics for ChurnDynamics {
    fn snapshot(
        &mut self,
        t: u64,
        network: &QdnNetwork,
        rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        self.down_until.resize(network.edge_count(), 0);
        // Repairs first: a link repaired this slot may fail again below.
        for (i, du) in self.down_until.iter_mut().enumerate() {
            if *du != 0 && *du <= t {
                *du = 0;
                self.events.push(ChurnEvent {
                    t,
                    edge: EdgeId(i as u32),
                    kind: ChurnEventKind::Repair,
                });
            }
        }
        let alive = self.down_until.iter().filter(|&&du| du == 0).count();
        let failures = self.sample_failures(alive);
        for _ in 0..failures {
            let up: Vec<usize> = self
                .down_until
                .iter()
                .enumerate()
                .filter(|(_, &du)| du == 0)
                .map(|(i, _)| i)
                .collect();
            if up.is_empty() {
                break;
            }
            let victim = up[self.churn_rng.random_range(0..up.len())];
            let outage = self.sample_outage();
            self.down_until[victim] = t + outage;
            self.events.push(ChurnEvent {
                t,
                edge: EdgeId(victim as u32),
                kind: ChurnEventKind::Fail,
            });
        }
        let snap = self.base.snapshot(t, network, rng);
        if self.down_until.iter().all(|&du| du == 0) {
            return snap;
        }
        let mut channels = snap.channel_vec().to_vec();
        for (i, &du) in self.down_until.iter().enumerate() {
            if du != 0 {
                channels[i] = 0;
            }
        }
        CapacitySnapshot::clamped(network, snap.qubit_vec().to_vec(), channels)
    }

    fn reset(&mut self) {
        self.base.reset();
        self.churn_rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.down_until.clear();
        self.events.clear();
    }

    fn churn_events(&self) -> &[ChurnEvent] {
        &self.events
    }
}

/// Serializable choice of dynamics for experiment configs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum DynamicsConfig {
    /// [`StaticDynamics`].
    #[default]
    Static,
    /// [`UniformOccupancy`] with the given max occupied fraction.
    Uniform {
        /// Upper bound on the occupied fraction.
        max_occupied_fraction: f64,
    },
    /// [`MarkovOccupancy`].
    Markov {
        /// Free → busy transition probability.
        p_busy: f64,
        /// Busy → free transition probability.
        p_free: f64,
        /// Remaining capacity fraction while busy.
        busy_fraction: f64,
    },
    /// [`ChurnDynamics`]: link failures/repairs layered over a base
    /// process. All four fields are required (loud break over silently
    /// defaulting a failure model).
    Churn {
        /// Mean link failures per slot (Poisson).
        failure_rate: f64,
        /// Mean outage length in slots (geometric, minimum 1).
        mttr: f64,
        /// Seed for the private failure-trace RNG.
        seed: u64,
        /// The occupancy process the failures are layered over.
        base: Box<DynamicsConfig>,
    },
}

impl DynamicsConfig {
    /// Instantiates the configured dynamics.
    pub fn build(&self) -> Box<dyn ResourceDynamics> {
        match self {
            DynamicsConfig::Static => Box::new(StaticDynamics),
            DynamicsConfig::Uniform {
                max_occupied_fraction,
            } => Box::new(UniformOccupancy::new(*max_occupied_fraction)),
            DynamicsConfig::Markov {
                p_busy,
                p_free,
                busy_fraction,
            } => Box::new(MarkovOccupancy::new(*p_busy, *p_free, *busy_fraction)),
            DynamicsConfig::Churn {
                failure_rate,
                mttr,
                seed,
                base,
            } => Box::new(ChurnDynamics::new(
                *failure_rate,
                *mttr,
                *seed,
                base.build(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::QdnNetworkBuilder;
    use qdn_physics::link::LinkModel;
    use rand::SeedableRng;

    fn net() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(20);
        b.add_edge(a, c, 8, LinkModel::paper_default()).unwrap();
        b.build()
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn static_gives_full_capacity() {
        let n = net();
        let mut d = StaticDynamics;
        let mut r = rng();
        for t in 0..5 {
            let s = d.snapshot(t, &n, &mut r);
            assert_eq!(s, CapacitySnapshot::full(&n));
        }
    }

    #[test]
    fn uniform_never_exceeds_installed() {
        let n = net();
        let mut d = UniformOccupancy::new(0.8);
        let mut r = rng();
        for t in 0..50 {
            let s = d.snapshot(t, &n, &mut r);
            assert!(s.qubits(qdn_graph::NodeId(0)) <= 10);
            assert!(s.qubits(qdn_graph::NodeId(1)) <= 20);
            assert!(s.channels(qdn_graph::EdgeId(0)) <= 8);
        }
    }

    #[test]
    fn uniform_fraction_clamped() {
        let d = UniformOccupancy::new(3.0);
        assert_eq!(d.max_occupied_fraction, 1.0);
        let d = UniformOccupancy::new(-1.0);
        assert_eq!(d.max_occupied_fraction, 0.0);
    }

    #[test]
    fn uniform_zero_fraction_is_static() {
        let n = net();
        let mut d = UniformOccupancy::new(0.0);
        let mut r = rng();
        let s = d.snapshot(0, &n, &mut r);
        assert_eq!(s, CapacitySnapshot::full(&n));
    }

    #[test]
    fn markov_states_persist_and_recover() {
        let n = net();
        // Always become busy, never recover: capacity halves and stays.
        let mut d = MarkovOccupancy::new(1.0, 0.0, 0.5);
        let mut r = rng();
        let s1 = d.snapshot(0, &n, &mut r);
        assert_eq!(s1.qubits(qdn_graph::NodeId(0)), 5);
        let s2 = d.snapshot(1, &n, &mut r);
        assert_eq!(s2.qubits(qdn_graph::NodeId(0)), 5);
        d.reset();
        // After reset with p_busy=0 nothing becomes busy.
        let mut d2 = MarkovOccupancy::new(0.0, 1.0, 0.5);
        let s3 = d2.snapshot(0, &n, &mut r);
        assert_eq!(s3, CapacitySnapshot::full(&n));
    }

    #[test]
    fn trace_replays_and_repeats() {
        let n = net();
        let full = CapacitySnapshot::full(&n);
        let half = CapacitySnapshot::clamped(&n, vec![5, 10], vec![4]);
        let mut d = TraceDynamics::new(vec![full.clone(), half.clone()]);
        let mut r = rng();
        assert_eq!(d.snapshot(0, &n, &mut r), full);
        assert_eq!(d.snapshot(1, &n, &mut r), half);
        assert_eq!(d.snapshot(7, &n, &mut r), half); // repeats last
    }

    #[test]
    #[should_panic(expected = "at least one snapshot")]
    fn empty_trace_panics() {
        let _ = TraceDynamics::new(vec![]);
    }

    #[test]
    fn config_builds_each_variant() {
        let n = net();
        let mut r = rng();
        for cfg in [
            DynamicsConfig::Static,
            DynamicsConfig::Uniform {
                max_occupied_fraction: 0.5,
            },
            DynamicsConfig::Markov {
                p_busy: 0.2,
                p_free: 0.5,
                busy_fraction: 0.5,
            },
            DynamicsConfig::Churn {
                failure_rate: 0.5,
                mttr: 2.0,
                seed: 7,
                base: Box::new(DynamicsConfig::Static),
            },
        ] {
            let mut d = cfg.build();
            let s = d.snapshot(0, &n, &mut r);
            assert!(s.total_qubits() <= n.total_qubits());
        }
        assert_eq!(DynamicsConfig::default(), DynamicsConfig::Static);
    }

    /// A line of several edges, so failures have room to spread.
    fn line_net(edges: usize) -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let nodes: Vec<_> = (0..=edges).map(|_| b.add_node(10)).collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], 6, LinkModel::paper_default())
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn churn_downs_links_and_repairs_them() {
        let n = line_net(5);
        // Certain failure every slot, 1-slot outages: every fail has a
        // matching repair one slot later.
        let mut d = ChurnDynamics::new(1.0, 1.0, 42, Box::new(StaticDynamics));
        let mut r = rng();
        let mut saw_zero = false;
        for t in 0..20 {
            let s = d.snapshot(t, &n, &mut r);
            let down = d.down_edges();
            for e in n.graph().edge_ids() {
                if down.contains(&e) {
                    assert_eq!(s.channels(e), 0, "down edge {e} has channels");
                    saw_zero = true;
                } else {
                    assert_eq!(s.channels(e), 6);
                }
            }
        }
        assert!(saw_zero, "failure rate 1.0 never downed a link");
        let fails = d
            .churn_events()
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Fail)
            .count();
        let repairs = d.churn_events().len() - fails;
        assert!(fails > 0);
        // Every outage lasts exactly 1 slot here, so each fail at t < 19
        // has its repair inside the horizon.
        assert!(repairs >= fails - d.down_edges().len());
    }

    #[test]
    fn churn_reset_replays_the_same_trace() {
        let n = line_net(4);
        let mut d = ChurnDynamics::new(0.7, 3.0, 11, Box::new(StaticDynamics));
        let mut r = rng();
        for t in 0..15 {
            let _ = d.snapshot(t, &n, &mut r);
        }
        let first = d.churn_events().to_vec();
        assert!(!first.is_empty());
        d.reset();
        assert!(d.churn_events().is_empty());
        // The env stream differs; the private churn stream must not care.
        let mut r2 = rand::rngs::StdRng::seed_from_u64(999);
        for t in 0..15 {
            let _ = d.snapshot(t, &n, &mut r2);
        }
        assert_eq!(d.churn_events(), first.as_slice());
    }

    #[test]
    fn churn_zero_rate_is_transparent() {
        let n = line_net(3);
        let mut d = ChurnDynamics::new(0.0, 5.0, 1, Box::new(StaticDynamics));
        let mut r = rng();
        for t in 0..10 {
            assert_eq!(d.snapshot(t, &n, &mut r), CapacitySnapshot::full(&n));
        }
        assert!(d.churn_events().is_empty());
    }

    #[test]
    fn churn_composes_with_occupancy_base() {
        let n = line_net(3);
        let mut d = ChurnDynamics::new(10.0, 4.0, 3, Box::new(UniformOccupancy::new(0.5)));
        let mut r = rng();
        for t in 0..10 {
            let s = d.snapshot(t, &n, &mut r);
            for e in n.graph().edge_ids() {
                if d.down_edges().contains(&e) {
                    assert_eq!(s.channels(e), 0);
                } else {
                    // Base occupancy still applies to surviving links.
                    assert!(s.channels(e) <= 6);
                }
            }
        }
        // Rate 10 over 3 links: everything should be down at some point.
        assert!(d.churn_events().len() >= 3);
    }
}
