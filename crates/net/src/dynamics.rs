//! Exogenous resource occupancy processes.
//!
//! The paper models qubit and channel availability as time-varying:
//! "the available qubits `Q_v^t` can change over time … as some qubits may
//! be occupied by other users. This occupancy is considered as an
//! exogenous process" (§III-A). The evaluation itself draws capacities
//! once and keeps them fixed, which corresponds to [`StaticDynamics`]; the
//! other implementations exercise the genuinely time-varying code path and
//! are used in robustness tests and ablations.

use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use qdn_graph::{EdgeId, NodeId};

use crate::network::QdnNetwork;
use crate::snapshot::CapacitySnapshot;

/// One link failure or repair, as emitted by churn-style dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Slot in which the event took effect.
    pub t: u64,
    /// The affected edge.
    pub edge: EdgeId,
    /// Failure or repair.
    pub kind: ChurnEventKind,
    /// What kind of outage produced the event.
    pub class: OutageClass,
}

/// The direction of a [`ChurnEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEventKind {
    /// The link went down (zero channels until repaired).
    Fail,
    /// The link came back at full pre-failure capacity.
    Repair,
}

/// The outage process behind a [`ChurnEvent`], ordered by blast radius
/// (`Link < Node < Regional < Planned`) so a slot with several classes
/// of cuts can be classified by its `max()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OutageClass {
    /// A single link failed on its own ([`ChurnDynamics`]).
    Link,
    /// A node cut took every incident link down ([`NodeChurnDynamics`]).
    Node,
    /// A correlated regional blackout ([`RegionalOutageDynamics`]).
    Regional,
    /// A declared maintenance window ([`MaintenanceDynamics`]).
    Planned,
}

/// A source of per-slot capacity snapshots.
///
/// Implementations observe the slot index and the installed network and
/// return what is left for our user after exogenous occupancy. They may
/// keep internal state (e.g. Markov chains) — hence `&mut self`.
pub trait ResourceDynamics: std::fmt::Debug + Send {
    /// Capacities available in slot `t`.
    fn snapshot(
        &mut self,
        t: u64,
        network: &QdnNetwork,
        rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot;

    /// Resets internal state so a new trial can replay the process.
    fn reset(&mut self) {}

    /// The full failure/repair trace so far, for dynamics that model
    /// topology churn. Occupancy-only processes return an empty slice.
    fn churn_events(&self) -> &[ChurnEvent] {
        &[]
    }
}

/// No exogenous occupancy: the full installed capacity every slot.
///
/// Matches the paper's evaluation setup (capacities drawn once per
/// topology, then constant over the horizon).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticDynamics;

impl ResourceDynamics for StaticDynamics {
    fn snapshot(
        &mut self,
        _t: u64,
        network: &QdnNetwork,
        _rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        CapacitySnapshot::full(network)
    }
}

/// I.i.d. uniform occupancy: each slot, every node/edge independently
/// loses a uniformly random fraction of its capacity up to
/// `max_occupied_fraction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformOccupancy {
    /// Upper bound on the occupied fraction, in `[0, 1]`.
    pub max_occupied_fraction: f64,
}

impl UniformOccupancy {
    /// Creates the process, clamping the fraction into `[0, 1]`.
    pub fn new(max_occupied_fraction: f64) -> Self {
        UniformOccupancy {
            max_occupied_fraction: max_occupied_fraction.clamp(0.0, 1.0),
        }
    }
}

impl ResourceDynamics for UniformOccupancy {
    fn snapshot(
        &mut self,
        _t: u64,
        network: &QdnNetwork,
        rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        let mut occupy = |cap: u32| -> u32 {
            let frac = rng.random_range(0.0..=self.max_occupied_fraction);
            let taken = (cap as f64 * frac).floor() as u32;
            cap - taken.min(cap)
        };
        let qubits = network
            .graph()
            .node_ids()
            .map(|v| occupy(network.qubit_capacity(v)))
            .collect();
        let channels = network
            .graph()
            .edge_ids()
            .map(|e| occupy(network.channel_capacity(e)))
            .collect();
        CapacitySnapshot::clamped(network, qubits, channels)
    }
}

/// Two-state Markov (Gilbert) occupancy: each resource is either *free*
/// (full capacity) or *busy* (a configurable fraction remains), with
/// geometric sojourn times.
///
/// This models bursty co-tenant workloads: once another user grabs
/// resources they tend to hold them for several slots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarkovOccupancy {
    /// Probability of transitioning free → busy each slot.
    pub p_busy: f64,
    /// Probability of transitioning busy → free each slot.
    pub p_free: f64,
    /// Fraction of capacity remaining while busy, in `[0, 1]`.
    pub busy_fraction: f64,
    #[serde(skip)]
    node_busy: Vec<bool>,
    #[serde(skip)]
    edge_busy: Vec<bool>,
}

impl MarkovOccupancy {
    /// Creates the chain with all resources initially free.
    pub fn new(p_busy: f64, p_free: f64, busy_fraction: f64) -> Self {
        MarkovOccupancy {
            p_busy: p_busy.clamp(0.0, 1.0),
            p_free: p_free.clamp(0.0, 1.0),
            busy_fraction: busy_fraction.clamp(0.0, 1.0),
            node_busy: Vec::new(),
            edge_busy: Vec::new(),
        }
    }

    fn step_states(&mut self, network: &QdnNetwork, rng: &mut dyn rand::Rng) {
        self.node_busy.resize(network.node_count(), false);
        self.edge_busy.resize(network.edge_count(), false);
        for busy in self.node_busy.iter_mut().chain(self.edge_busy.iter_mut()) {
            *busy = if *busy {
                !rng.random_bool(self.p_free)
            } else {
                rng.random_bool(self.p_busy)
            };
        }
    }
}

impl ResourceDynamics for MarkovOccupancy {
    fn snapshot(
        &mut self,
        _t: u64,
        network: &QdnNetwork,
        rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        self.step_states(network, rng);
        let frac = self.busy_fraction;
        let qubits = network
            .graph()
            .node_ids()
            .map(|v| {
                let cap = network.qubit_capacity(v);
                if self.node_busy[v.index()] {
                    (cap as f64 * frac).floor() as u32
                } else {
                    cap
                }
            })
            .collect();
        let channels = network
            .graph()
            .edge_ids()
            .map(|e| {
                let cap = network.channel_capacity(e);
                if self.edge_busy[e.index()] {
                    (cap as f64 * frac).floor() as u32
                } else {
                    cap
                }
            })
            .collect();
        CapacitySnapshot::clamped(network, qubits, channels)
    }

    fn reset(&mut self) {
        self.node_busy.clear();
        self.edge_busy.clear();
    }
}

/// Replays a fixed sequence of snapshots (e.g. captured from another run),
/// repeating the last one when the trace is exhausted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceDynamics {
    trace: Vec<CapacitySnapshot>,
}

impl TraceDynamics {
    /// Creates a trace player.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn new(trace: Vec<CapacitySnapshot>) -> Self {
        assert!(
            !trace.is_empty(),
            "trace must contain at least one snapshot"
        );
        TraceDynamics { trace }
    }
}

impl ResourceDynamics for TraceDynamics {
    fn snapshot(
        &mut self,
        t: u64,
        _network: &QdnNetwork,
        _rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        let idx = (t as usize).min(self.trace.len() - 1);
        self.trace[idx].clone()
    }
}

/// Poisson link failures with MTTR-distributed repair on top of a base
/// occupancy process.
///
/// Each slot, first any outage whose repair time has elapsed ends (the
/// link returns at full pre-failure capacity — the base process still
/// applies its occupancy on top), then `Pois(failure_rate)` fresh
/// failures strike uniformly random currently-alive links; each outage
/// lasts `Geom(1/mttr)` slots (mean `mttr`, minimum 1). A failed link
/// reports zero channels regardless of what the base process says.
///
/// The failure trace is driven by a private RNG seeded from `seed`, so it
/// is reproducible independently of the environment stream consumed by
/// the base process, and is recorded verbatim — see
/// [`ResourceDynamics::churn_events`].
#[derive(Debug)]
pub struct ChurnDynamics {
    failure_rate: f64,
    mttr: f64,
    seed: u64,
    base: Box<dyn ResourceDynamics>,
    churn_rng: rand::rngs::StdRng,
    /// Per edge: the slot at which it comes back up; 0 = currently up
    /// (an outage starting at slot t lasts ≥ 1 slot, so it always ends
    /// at t + d ≥ 1 and 0 is unambiguous).
    down_until: Vec<u64>,
    events: Vec<ChurnEvent>,
}

impl ChurnDynamics {
    /// Creates the process; `failure_rate` is clamped to `≥ 0` and `mttr`
    /// to `≥ 1` (an outage shorter than one slot is invisible).
    pub fn new(failure_rate: f64, mttr: f64, seed: u64, base: Box<dyn ResourceDynamics>) -> Self {
        ChurnDynamics {
            failure_rate: failure_rate.max(0.0),
            mttr: mttr.max(1.0),
            seed,
            base,
            churn_rng: rand::rngs::StdRng::seed_from_u64(seed),
            down_until: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Edges currently down, ascending.
    pub fn down_edges(&self) -> Vec<EdgeId> {
        let mut down: Vec<EdgeId> = self
            .down_until
            .iter()
            .enumerate()
            .filter(|(_, &du)| du != 0)
            .map(|(i, _)| EdgeId(i as u32))
            .collect();
        // Enumeration order is already ascending today, but the sorted
        // result is a documented contract (callers diff these lists and
        // feed them into decision paths), so pin it explicitly.
        down.sort_unstable();
        down
    }

    fn sample_failures(&mut self, cap: usize) -> usize {
        poisson_capped(&mut self.churn_rng, self.failure_rate, cap)
    }

    fn sample_outage(&mut self) -> u64 {
        geometric_dwell(&mut self.churn_rng, self.mttr)
    }
}

/// Knuth's product-of-uniforms Poisson sampler, capped at `cap` (the
/// number of elements still eligible to fail this slot).
fn poisson_capped(rng: &mut dyn rand::Rng, rate: f64, cap: usize) -> usize {
    let limit = (-rate).exp();
    let mut count = 0usize;
    let mut product: f64 = rng.random();
    while product > limit && count < cap {
        count += 1;
        let u: f64 = rng.random();
        product *= u;
    }
    count
}

/// Geometric(1/mttr) outage length by inversion: `d ≥ 1` slots, mean
/// `mttr`.
fn geometric_dwell(rng: &mut dyn rand::Rng, mttr: f64) -> u64 {
    let p = (1.0 / mttr).min(1.0);
    if p >= 1.0 {
        return 1;
    }
    let u: f64 = rng.random();
    let d = ((1.0 - u).ln() / (1.0 - p).ln()).ceil();
    (d.max(1.0)) as u64
}

impl ResourceDynamics for ChurnDynamics {
    fn snapshot(
        &mut self,
        t: u64,
        network: &QdnNetwork,
        rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        self.down_until.resize(network.edge_count(), 0);
        // Repairs first: a link repaired this slot may fail again below.
        for (i, du) in self.down_until.iter_mut().enumerate() {
            if *du != 0 && *du <= t {
                *du = 0;
                self.events.push(ChurnEvent {
                    t,
                    edge: EdgeId(i as u32),
                    kind: ChurnEventKind::Repair,
                    class: OutageClass::Link,
                });
            }
        }
        let alive = self.down_until.iter().filter(|&&du| du == 0).count();
        let failures = self.sample_failures(alive);
        for _ in 0..failures {
            let up: Vec<usize> = self
                .down_until
                .iter()
                .enumerate()
                .filter(|(_, &du)| du == 0)
                .map(|(i, _)| i)
                .collect();
            if up.is_empty() {
                break;
            }
            let victim = up[self.churn_rng.random_range(0..up.len())];
            let outage = self.sample_outage();
            self.down_until[victim] = t + outage;
            self.events.push(ChurnEvent {
                t,
                edge: EdgeId(victim as u32),
                kind: ChurnEventKind::Fail,
                class: OutageClass::Link,
            });
        }
        let snap = self.base.snapshot(t, network, rng);
        if self.down_until.iter().all(|&du| du == 0) {
            return snap;
        }
        let mut channels = snap.channel_vec().to_vec();
        for (i, &du) in self.down_until.iter().enumerate() {
            if du != 0 {
                channels[i] = 0;
            }
        }
        CapacitySnapshot::clamped(network, snap.qubit_vec().to_vec(), channels)
    }

    fn reset(&mut self) {
        self.base.reset();
        self.churn_rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.down_until.clear();
        self.events.clear();
    }

    fn churn_events(&self) -> &[ChurnEvent] {
        &self.events
    }
}

/// Shared machinery for outage processes that darken whole *node sets*
/// (node cuts, regional blackouts, maintenance windows): derive this
/// slot's dead edge set (every link incident to a dark node), emit
/// Fail/Repair transition events against the previous slot's dead set —
/// repairs first, then failures, each in ascending edge order — and
/// zero the darkened capacities over the base snapshot.
fn apply_dark_nodes(
    t: u64,
    network: &QdnNetwork,
    dark: &[bool],
    edge_dead: &mut Vec<bool>,
    events: &mut Vec<ChurnEvent>,
    class: OutageClass,
    snap: CapacitySnapshot,
) -> CapacitySnapshot {
    let graph = network.graph();
    let mut now_dead = vec![false; network.edge_count()];
    for e in graph.edge_ids() {
        let (u, v) = graph.endpoints(e);
        now_dead[e.index()] = dark[u.index()] || dark[v.index()];
    }
    edge_dead.resize(network.edge_count(), false);
    for kind in [ChurnEventKind::Repair, ChurnEventKind::Fail] {
        let to = kind == ChurnEventKind::Fail;
        for (i, (&now, &was)) in now_dead.iter().zip(edge_dead.iter()).enumerate() {
            if now != was && now == to {
                events.push(ChurnEvent {
                    t,
                    edge: EdgeId(i as u32),
                    kind,
                    class,
                });
            }
        }
    }
    *edge_dead = now_dead;
    if dark.iter().all(|&d| !d) {
        return snap;
    }
    let mut qubits = snap.qubit_vec().to_vec();
    let mut channels = snap.channel_vec().to_vec();
    for (i, &d) in dark.iter().enumerate() {
        if d {
            qubits[i] = 0;
        }
    }
    for (i, &d) in edge_dead.iter().enumerate() {
        if d {
            channels[i] = 0;
        }
    }
    CapacitySnapshot::clamped(network, qubits, channels)
}

/// Poisson *node* failures with MTTR-distributed repair on top of a base
/// occupancy process: a node cut kills all incident links atomically.
///
/// Each slot, outages whose repair time has elapsed end first, then
/// `Pois(failure_rate)` fresh cuts strike uniformly random currently-up
/// nodes; each outage lasts `Geom(1/mttr)` slots. A down node reports
/// zero qubits and every incident link reports zero channels. Edges
/// shared by two overlapping cuts stay dead until *both* nodes are back
/// (the dead set is recomputed from the dark-node mask each slot, so
/// per-edge Fail/Repair events pair up correctly).
///
/// Like [`ChurnDynamics`], the trace is driven by a private RNG seeded
/// from `seed`, independent of the environment stream.
#[derive(Debug)]
pub struct NodeChurnDynamics {
    failure_rate: f64,
    mttr: f64,
    seed: u64,
    base: Box<dyn ResourceDynamics>,
    churn_rng: rand::rngs::StdRng,
    /// Per node: the slot at which it comes back up; 0 = currently up.
    node_down_until: Vec<u64>,
    edge_dead: Vec<bool>,
    events: Vec<ChurnEvent>,
}

impl NodeChurnDynamics {
    /// Creates the process; `failure_rate` is clamped to `≥ 0` and
    /// `mttr` to `≥ 1`.
    pub fn new(failure_rate: f64, mttr: f64, seed: u64, base: Box<dyn ResourceDynamics>) -> Self {
        NodeChurnDynamics {
            failure_rate: failure_rate.max(0.0),
            mttr: mttr.max(1.0),
            seed,
            base,
            churn_rng: rand::rngs::StdRng::seed_from_u64(seed),
            node_down_until: Vec::new(),
            edge_dead: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Nodes currently down, ascending.
    pub fn down_nodes(&self) -> Vec<NodeId> {
        let mut down: Vec<NodeId> = self
            .node_down_until
            .iter()
            .enumerate()
            .filter(|(_, &du)| du != 0)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        down.sort_unstable();
        down
    }

    /// Edges currently dead (incident to a down node), ascending.
    pub fn down_edges(&self) -> Vec<EdgeId> {
        let mut down: Vec<EdgeId> = self
            .edge_dead
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| EdgeId(i as u32))
            .collect();
        down.sort_unstable();
        down
    }
}

impl ResourceDynamics for NodeChurnDynamics {
    fn snapshot(
        &mut self,
        t: u64,
        network: &QdnNetwork,
        rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        self.node_down_until.resize(network.node_count(), 0);
        // Repairs first: a node repaired this slot may be cut again.
        for du in &mut self.node_down_until {
            if *du != 0 && *du <= t {
                *du = 0;
            }
        }
        let alive = self.node_down_until.iter().filter(|&&du| du == 0).count();
        let cuts = poisson_capped(&mut self.churn_rng, self.failure_rate, alive);
        for _ in 0..cuts {
            let up: Vec<usize> = self
                .node_down_until
                .iter()
                .enumerate()
                .filter(|(_, &du)| du == 0)
                .map(|(i, _)| i)
                .collect();
            if up.is_empty() {
                break;
            }
            let victim = up[self.churn_rng.random_range(0..up.len())];
            let outage = geometric_dwell(&mut self.churn_rng, self.mttr);
            self.node_down_until[victim] = t + outage;
        }
        let dark: Vec<bool> = self.node_down_until.iter().map(|&du| du != 0).collect();
        let snap = self.base.snapshot(t, network, rng);
        apply_dark_nodes(
            t,
            network,
            &dark,
            &mut self.edge_dead,
            &mut self.events,
            OutageClass::Node,
            snap,
        )
    }

    fn reset(&mut self) {
        self.base.reset();
        self.churn_rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.node_down_until.clear();
        self.edge_dead.clear();
        self.events.clear();
    }

    fn churn_events(&self) -> &[ChurnEvent] {
        &self.events
    }
}

/// Correlated cluster-going-dark: each declared region independently
/// blacks out with probability `outage_rate` per slot and stays dark for
/// `Geom(1/mttr)` slots (mean `mttr`), taking every member node — and
/// every link incident to one — down together.
///
/// Regions are declared node sets; they may overlap, and nodes outside
/// any region never black out under this process. The trace is driven by
/// a private RNG seeded from `seed`.
#[derive(Debug)]
pub struct RegionalOutageDynamics {
    regions: Vec<Vec<NodeId>>,
    outage_rate: f64,
    mttr: f64,
    seed: u64,
    base: Box<dyn ResourceDynamics>,
    churn_rng: rand::rngs::StdRng,
    /// Per region: the slot at which it relights; 0 = currently lit.
    region_down_until: Vec<u64>,
    edge_dead: Vec<bool>,
    events: Vec<ChurnEvent>,
}

impl RegionalOutageDynamics {
    /// Creates the process; `outage_rate` is clamped into `[0, 1]` and
    /// `mttr` to `≥ 1`.
    pub fn new(
        regions: Vec<Vec<NodeId>>,
        outage_rate: f64,
        mttr: f64,
        seed: u64,
        base: Box<dyn ResourceDynamics>,
    ) -> Self {
        let down = vec![0; regions.len()];
        RegionalOutageDynamics {
            regions,
            outage_rate: outage_rate.clamp(0.0, 1.0),
            mttr: mttr.max(1.0),
            seed,
            base,
            churn_rng: rand::rngs::StdRng::seed_from_u64(seed),
            region_down_until: down,
            edge_dead: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Indices of regions currently dark, ascending.
    pub fn dark_regions(&self) -> Vec<usize> {
        self.region_down_until
            .iter()
            .enumerate()
            .filter(|(_, &du)| du != 0)
            .map(|(i, _)| i)
            .collect()
    }
}

impl ResourceDynamics for RegionalOutageDynamics {
    fn snapshot(
        &mut self,
        t: u64,
        network: &QdnNetwork,
        rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        // Relights first, then fresh blackouts, in region order.
        for du in &mut self.region_down_until {
            if *du != 0 && *du <= t {
                *du = 0;
            }
        }
        for i in 0..self.region_down_until.len() {
            if self.region_down_until[i] == 0 && self.churn_rng.random_bool(self.outage_rate) {
                self.region_down_until[i] = t + geometric_dwell(&mut self.churn_rng, self.mttr);
            }
        }
        let mut dark = vec![false; network.node_count()];
        for (i, region) in self.regions.iter().enumerate() {
            if self.region_down_until[i] == 0 {
                continue;
            }
            for &v in region {
                if v.index() < dark.len() {
                    dark[v.index()] = true;
                }
            }
        }
        let snap = self.base.snapshot(t, network, rng);
        apply_dark_nodes(
            t,
            network,
            &dark,
            &mut self.edge_dead,
            &mut self.events,
            OutageClass::Regional,
            snap,
        )
    }

    fn reset(&mut self) {
        self.base.reset();
        self.churn_rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.region_down_until = vec![0; self.regions.len()];
        self.edge_dead.clear();
        self.events.clear();
    }

    fn churn_events(&self) -> &[ChurnEvent] {
        &self.events
    }
}

/// One declared maintenance window: the listed nodes are dark for every
/// slot in `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceWindow {
    /// First dark slot.
    pub start: u64,
    /// First slot back up (exclusive end).
    pub end: u64,
    /// The nodes taken down for the window.
    pub nodes: Vec<NodeId>,
}

impl MaintenanceWindow {
    /// Whether slot `t` falls inside the window.
    pub fn covers(&self, t: u64) -> bool {
        self.start <= t && t < self.end
    }
}

/// Deterministic planned maintenance: declared windows take their node
/// sets dark for `[start, end)`, layered over a base occupancy process.
/// No randomness — the schedule *is* the trace, so replays are exact by
/// construction.
#[derive(Debug)]
pub struct MaintenanceDynamics {
    windows: Vec<MaintenanceWindow>,
    base: Box<dyn ResourceDynamics>,
    edge_dead: Vec<bool>,
    events: Vec<ChurnEvent>,
}

impl MaintenanceDynamics {
    /// Creates the schedule player.
    pub fn new(windows: Vec<MaintenanceWindow>, base: Box<dyn ResourceDynamics>) -> Self {
        MaintenanceDynamics {
            windows,
            base,
            edge_dead: Vec::new(),
            events: Vec::new(),
        }
    }

    /// The declared windows.
    pub fn windows(&self) -> &[MaintenanceWindow] {
        &self.windows
    }
}

impl ResourceDynamics for MaintenanceDynamics {
    fn snapshot(
        &mut self,
        t: u64,
        network: &QdnNetwork,
        rng: &mut dyn rand::Rng,
    ) -> CapacitySnapshot {
        let mut dark = vec![false; network.node_count()];
        for w in &self.windows {
            if !w.covers(t) {
                continue;
            }
            for &v in &w.nodes {
                if v.index() < dark.len() {
                    dark[v.index()] = true;
                }
            }
        }
        let snap = self.base.snapshot(t, network, rng);
        apply_dark_nodes(
            t,
            network,
            &dark,
            &mut self.edge_dead,
            &mut self.events,
            OutageClass::Planned,
            snap,
        )
    }

    fn reset(&mut self) {
        self.base.reset();
        self.edge_dead.clear();
        self.events.clear();
    }

    fn churn_events(&self) -> &[ChurnEvent] {
        &self.events
    }
}

/// Serializable choice of dynamics for experiment configs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum DynamicsConfig {
    /// [`StaticDynamics`].
    #[default]
    Static,
    /// [`UniformOccupancy`] with the given max occupied fraction.
    Uniform {
        /// Upper bound on the occupied fraction.
        max_occupied_fraction: f64,
    },
    /// [`MarkovOccupancy`].
    Markov {
        /// Free → busy transition probability.
        p_busy: f64,
        /// Busy → free transition probability.
        p_free: f64,
        /// Remaining capacity fraction while busy.
        busy_fraction: f64,
    },
    /// [`ChurnDynamics`]: link failures/repairs layered over a base
    /// process. All four fields are required (loud break over silently
    /// defaulting a failure model).
    Churn {
        /// Mean link failures per slot (Poisson).
        failure_rate: f64,
        /// Mean outage length in slots (geometric, minimum 1).
        mttr: f64,
        /// Seed for the private failure-trace RNG.
        seed: u64,
        /// The occupancy process the failures are layered over.
        base: Box<DynamicsConfig>,
    },
    /// [`NodeChurnDynamics`]: whole-node cuts layered over a base
    /// process. All four fields are required.
    NodeChurn {
        /// Mean node cuts per slot (Poisson).
        failure_rate: f64,
        /// Mean outage length in slots (geometric, minimum 1).
        mttr: f64,
        /// Seed for the private failure-trace RNG.
        seed: u64,
        /// The occupancy process the cuts are layered over.
        base: Box<DynamicsConfig>,
    },
    /// [`RegionalOutageDynamics`]: correlated regional blackouts over
    /// declared node sets. All five fields are required.
    RegionalOutage {
        /// The declared regions (node sets; may overlap).
        regions: Vec<Vec<NodeId>>,
        /// Per-region per-slot blackout probability, in `[0, 1]`.
        outage_rate: f64,
        /// Mean blackout length in slots (geometric, minimum 1).
        mttr: f64,
        /// Seed for the private blackout-trace RNG.
        seed: u64,
        /// The occupancy process the blackouts are layered over.
        base: Box<DynamicsConfig>,
    },
    /// [`MaintenanceDynamics`]: deterministic declared windows. Both
    /// fields are required.
    Maintenance {
        /// The declared maintenance windows.
        windows: Vec<MaintenanceWindow>,
        /// The occupancy process the windows are layered over.
        base: Box<DynamicsConfig>,
    },
}

impl DynamicsConfig {
    /// Instantiates the configured dynamics.
    pub fn build(&self) -> Box<dyn ResourceDynamics> {
        match self {
            DynamicsConfig::Static => Box::new(StaticDynamics),
            DynamicsConfig::Uniform {
                max_occupied_fraction,
            } => Box::new(UniformOccupancy::new(*max_occupied_fraction)),
            DynamicsConfig::Markov {
                p_busy,
                p_free,
                busy_fraction,
            } => Box::new(MarkovOccupancy::new(*p_busy, *p_free, *busy_fraction)),
            DynamicsConfig::Churn {
                failure_rate,
                mttr,
                seed,
                base,
            } => Box::new(ChurnDynamics::new(
                *failure_rate,
                *mttr,
                *seed,
                base.build(),
            )),
            DynamicsConfig::NodeChurn {
                failure_rate,
                mttr,
                seed,
                base,
            } => Box::new(NodeChurnDynamics::new(
                *failure_rate,
                *mttr,
                *seed,
                base.build(),
            )),
            DynamicsConfig::RegionalOutage {
                regions,
                outage_rate,
                mttr,
                seed,
                base,
            } => Box::new(RegionalOutageDynamics::new(
                regions.clone(),
                *outage_rate,
                *mttr,
                *seed,
                base.build(),
            )),
            DynamicsConfig::Maintenance { windows, base } => {
                Box::new(MaintenanceDynamics::new(windows.clone(), base.build()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::QdnNetworkBuilder;
    use qdn_physics::link::LinkModel;
    use rand::SeedableRng;

    fn net() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let a = b.add_node(10);
        let c = b.add_node(20);
        b.add_edge(a, c, 8, LinkModel::paper_default()).unwrap();
        b.build()
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn static_gives_full_capacity() {
        let n = net();
        let mut d = StaticDynamics;
        let mut r = rng();
        for t in 0..5 {
            let s = d.snapshot(t, &n, &mut r);
            assert_eq!(s, CapacitySnapshot::full(&n));
        }
    }

    #[test]
    fn uniform_never_exceeds_installed() {
        let n = net();
        let mut d = UniformOccupancy::new(0.8);
        let mut r = rng();
        for t in 0..50 {
            let s = d.snapshot(t, &n, &mut r);
            assert!(s.qubits(qdn_graph::NodeId(0)) <= 10);
            assert!(s.qubits(qdn_graph::NodeId(1)) <= 20);
            assert!(s.channels(qdn_graph::EdgeId(0)) <= 8);
        }
    }

    #[test]
    fn uniform_fraction_clamped() {
        let d = UniformOccupancy::new(3.0);
        assert_eq!(d.max_occupied_fraction, 1.0);
        let d = UniformOccupancy::new(-1.0);
        assert_eq!(d.max_occupied_fraction, 0.0);
    }

    #[test]
    fn uniform_zero_fraction_is_static() {
        let n = net();
        let mut d = UniformOccupancy::new(0.0);
        let mut r = rng();
        let s = d.snapshot(0, &n, &mut r);
        assert_eq!(s, CapacitySnapshot::full(&n));
    }

    #[test]
    fn markov_states_persist_and_recover() {
        let n = net();
        // Always become busy, never recover: capacity halves and stays.
        let mut d = MarkovOccupancy::new(1.0, 0.0, 0.5);
        let mut r = rng();
        let s1 = d.snapshot(0, &n, &mut r);
        assert_eq!(s1.qubits(qdn_graph::NodeId(0)), 5);
        let s2 = d.snapshot(1, &n, &mut r);
        assert_eq!(s2.qubits(qdn_graph::NodeId(0)), 5);
        d.reset();
        // After reset with p_busy=0 nothing becomes busy.
        let mut d2 = MarkovOccupancy::new(0.0, 1.0, 0.5);
        let s3 = d2.snapshot(0, &n, &mut r);
        assert_eq!(s3, CapacitySnapshot::full(&n));
    }

    #[test]
    fn trace_replays_and_repeats() {
        let n = net();
        let full = CapacitySnapshot::full(&n);
        let half = CapacitySnapshot::clamped(&n, vec![5, 10], vec![4]);
        let mut d = TraceDynamics::new(vec![full.clone(), half.clone()]);
        let mut r = rng();
        assert_eq!(d.snapshot(0, &n, &mut r), full);
        assert_eq!(d.snapshot(1, &n, &mut r), half);
        assert_eq!(d.snapshot(7, &n, &mut r), half); // repeats last
    }

    #[test]
    #[should_panic(expected = "at least one snapshot")]
    fn empty_trace_panics() {
        let _ = TraceDynamics::new(vec![]);
    }

    #[test]
    fn config_builds_each_variant() {
        let n = net();
        let mut r = rng();
        for cfg in [
            DynamicsConfig::Static,
            DynamicsConfig::Uniform {
                max_occupied_fraction: 0.5,
            },
            DynamicsConfig::Markov {
                p_busy: 0.2,
                p_free: 0.5,
                busy_fraction: 0.5,
            },
            DynamicsConfig::Churn {
                failure_rate: 0.5,
                mttr: 2.0,
                seed: 7,
                base: Box::new(DynamicsConfig::Static),
            },
        ] {
            let mut d = cfg.build();
            let s = d.snapshot(0, &n, &mut r);
            assert!(s.total_qubits() <= n.total_qubits());
        }
        assert_eq!(DynamicsConfig::default(), DynamicsConfig::Static);
    }

    /// A line of several edges, so failures have room to spread.
    fn line_net(edges: usize) -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let nodes: Vec<_> = (0..=edges).map(|_| b.add_node(10)).collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], 6, LinkModel::paper_default())
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn churn_downs_links_and_repairs_them() {
        let n = line_net(5);
        // Certain failure every slot, 1-slot outages: every fail has a
        // matching repair one slot later.
        let mut d = ChurnDynamics::new(1.0, 1.0, 42, Box::new(StaticDynamics));
        let mut r = rng();
        let mut saw_zero = false;
        for t in 0..20 {
            let s = d.snapshot(t, &n, &mut r);
            let down = d.down_edges();
            for e in n.graph().edge_ids() {
                if down.contains(&e) {
                    assert_eq!(s.channels(e), 0, "down edge {e} has channels");
                    saw_zero = true;
                } else {
                    assert_eq!(s.channels(e), 6);
                }
            }
        }
        assert!(saw_zero, "failure rate 1.0 never downed a link");
        let fails = d
            .churn_events()
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Fail)
            .count();
        let repairs = d.churn_events().len() - fails;
        assert!(fails > 0);
        // Every outage lasts exactly 1 slot here, so each fail at t < 19
        // has its repair inside the horizon.
        assert!(repairs >= fails - d.down_edges().len());
    }

    #[test]
    fn churn_reset_replays_the_same_trace() {
        let n = line_net(4);
        let mut d = ChurnDynamics::new(0.7, 3.0, 11, Box::new(StaticDynamics));
        let mut r = rng();
        for t in 0..15 {
            let _ = d.snapshot(t, &n, &mut r);
        }
        let first = d.churn_events().to_vec();
        assert!(!first.is_empty());
        d.reset();
        assert!(d.churn_events().is_empty());
        // The env stream differs; the private churn stream must not care.
        let mut r2 = rand::rngs::StdRng::seed_from_u64(999);
        for t in 0..15 {
            let _ = d.snapshot(t, &n, &mut r2);
        }
        assert_eq!(d.churn_events(), first.as_slice());
    }

    #[test]
    fn churn_zero_rate_is_transparent() {
        let n = line_net(3);
        let mut d = ChurnDynamics::new(0.0, 5.0, 1, Box::new(StaticDynamics));
        let mut r = rng();
        for t in 0..10 {
            assert_eq!(d.snapshot(t, &n, &mut r), CapacitySnapshot::full(&n));
        }
        assert!(d.churn_events().is_empty());
    }

    #[test]
    fn down_edges_is_sorted_ascending() {
        let n = line_net(6);
        let mut d = ChurnDynamics::new(2.0, 4.0, 9, Box::new(StaticDynamics));
        let mut r = rng();
        let mut saw_multi = false;
        for t in 0..30 {
            let _ = d.snapshot(t, &n, &mut r);
            let down = d.down_edges();
            assert!(
                down.windows(2).all(|w| w[0] < w[1]),
                "down_edges not strictly ascending at t={t}: {down:?}"
            );
            saw_multi |= down.len() >= 2;
        }
        assert!(saw_multi, "rate 2.0 never had two links down at once");
    }

    #[test]
    fn node_churn_cuts_all_incident_links_atomically() {
        let n = line_net(5);
        let mut d = NodeChurnDynamics::new(1.0, 2.0, 13, Box::new(StaticDynamics));
        let mut r = rng();
        let mut saw_cut = false;
        for t in 0..25 {
            let s = d.snapshot(t, &n, &mut r);
            let down_nodes = d.down_nodes();
            let down_edges = d.down_edges();
            assert!(down_edges.windows(2).all(|w| w[0] < w[1]));
            for v in n.graph().node_ids() {
                if down_nodes.contains(&v) {
                    saw_cut = true;
                    assert_eq!(s.qubits(v), 0, "down node {v} has qubits");
                    for (_, e) in n.graph().neighbors(v) {
                        assert_eq!(s.channels(e), 0, "link {e} of down node {v} alive");
                        assert!(down_edges.contains(&e));
                    }
                }
            }
            // Every dead edge traces back to a down endpoint.
            for &e in &down_edges {
                let (u, v) = n.graph().endpoints(e);
                assert!(down_nodes.contains(&u) || down_nodes.contains(&v));
            }
        }
        assert!(saw_cut, "rate 1.0 never cut a node");
        assert!(d
            .churn_events()
            .iter()
            .all(|e| e.class == OutageClass::Node));
        // Per edge, fails and repairs alternate (the dark mask is
        // recomputed each slot, so overlapping cuts cannot double-fail).
        for e in n.graph().edge_ids() {
            let mut dead = false;
            for ev in d.churn_events().iter().filter(|ev| ev.edge == e) {
                match ev.kind {
                    ChurnEventKind::Fail => {
                        assert!(!dead, "double fail on {e}");
                        dead = true;
                    }
                    ChurnEventKind::Repair => {
                        assert!(dead, "repair of live {e}");
                        dead = false;
                    }
                }
            }
        }
    }

    #[test]
    fn node_churn_reset_replays_the_same_trace() {
        let n = line_net(4);
        let mut d = NodeChurnDynamics::new(0.6, 3.0, 21, Box::new(StaticDynamics));
        let mut r = rng();
        for t in 0..15 {
            let _ = d.snapshot(t, &n, &mut r);
        }
        let first = d.churn_events().to_vec();
        assert!(!first.is_empty());
        d.reset();
        let mut r2 = rand::rngs::StdRng::seed_from_u64(777);
        for t in 0..15 {
            let _ = d.snapshot(t, &n, &mut r2);
        }
        assert_eq!(d.churn_events(), first.as_slice());
    }

    #[test]
    fn regional_outage_darkens_whole_region_together() {
        let n = line_net(5); // nodes 0..=5
        let region: Vec<NodeId> = vec![NodeId(0), NodeId(1), NodeId(2)];
        let mut d = RegionalOutageDynamics::new(
            vec![region.clone()],
            1.0, // certain blackout
            3.0,
            5,
            Box::new(StaticDynamics),
        );
        let mut r = rng();
        let s = d.snapshot(0, &n, &mut r);
        assert_eq!(d.dark_regions(), vec![0]);
        for &v in &region {
            assert_eq!(s.qubits(v), 0);
        }
        // Nodes outside the region keep their qubits; only links touching
        // the region die (edges 0-1, 1-2, 2-3 on the line).
        assert_eq!(s.qubits(NodeId(4)), 10);
        assert_eq!(s.channels(EdgeId(0)), 0);
        assert_eq!(s.channels(EdgeId(2)), 0); // 2-3: one endpoint dark
        assert_eq!(s.channels(EdgeId(4)), 6);
        assert!(d
            .churn_events()
            .iter()
            .all(|e| e.class == OutageClass::Regional));
        // Correlated: the whole region's incident links failed in slot 0.
        let fails = d
            .churn_events()
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Fail && e.t == 0)
            .count();
        assert_eq!(fails, 3);
    }

    #[test]
    fn regional_outage_zero_rate_is_transparent() {
        let n = line_net(3);
        let mut d = RegionalOutageDynamics::new(
            vec![vec![NodeId(0), NodeId(1)]],
            0.0,
            5.0,
            1,
            Box::new(StaticDynamics),
        );
        let mut r = rng();
        for t in 0..10 {
            assert_eq!(d.snapshot(t, &n, &mut r), CapacitySnapshot::full(&n));
        }
        assert!(d.churn_events().is_empty());
    }

    #[test]
    fn maintenance_windows_are_deterministic_and_planned() {
        let n = line_net(4);
        let windows = vec![MaintenanceWindow {
            start: 2,
            end: 5,
            nodes: vec![NodeId(1)],
        }];
        let mut d = MaintenanceDynamics::new(windows, Box::new(StaticDynamics));
        let mut r = rng();
        for t in 0..8 {
            let s = d.snapshot(t, &n, &mut r);
            let dark = (2..5).contains(&t);
            assert_eq!(s.qubits(NodeId(1)) == 0, dark, "slot {t}");
            assert_eq!(s.channels(EdgeId(0)) == 0, dark, "slot {t}");
            assert_eq!(s.channels(EdgeId(1)) == 0, dark, "slot {t}");
            assert_eq!(s.channels(EdgeId(3)), 6, "slot {t}"); // far link
        }
        let events = d.churn_events().to_vec();
        assert!(events.iter().all(|e| e.class == OutageClass::Planned));
        let fails = events
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Fail)
            .count();
        let repairs = events.len() - fails;
        assert_eq!(fails, 2); // both incident links, once
        assert_eq!(repairs, 2);
        // Deterministic by construction: replay gives the same trace.
        d.reset();
        let mut r2 = rand::rngs::StdRng::seed_from_u64(4242);
        for t in 0..8 {
            let _ = d.snapshot(t, &n, &mut r2);
        }
        assert_eq!(d.churn_events(), events.as_slice());
    }

    #[test]
    fn overlapping_windows_keep_shared_links_dead() {
        // Windows over nodes 1 and 2 overlap in time: the shared link
        // 1-2 must stay dead until both are back.
        let n = line_net(4);
        let windows = vec![
            MaintenanceWindow {
                start: 0,
                end: 4,
                nodes: vec![NodeId(1)],
            },
            MaintenanceWindow {
                start: 2,
                end: 6,
                nodes: vec![NodeId(2)],
            },
        ];
        let mut d = MaintenanceDynamics::new(windows, Box::new(StaticDynamics));
        let mut r = rng();
        for t in 0..8 {
            let s = d.snapshot(t, &n, &mut r);
            let shared_dead = t < 6; // EdgeId(1) = link 1-2
            assert_eq!(s.channels(EdgeId(1)) == 0, shared_dead, "slot {t}");
        }
        // The shared link failed once and repaired once.
        let shared: Vec<_> = d
            .churn_events()
            .iter()
            .filter(|e| e.edge == EdgeId(1))
            .collect();
        assert_eq!(shared.len(), 2);
        assert_eq!(shared[0].kind, ChurnEventKind::Fail);
        assert_eq!(shared[0].t, 0);
        assert_eq!(shared[1].kind, ChurnEventKind::Repair);
        assert_eq!(shared[1].t, 6);
    }

    #[test]
    fn new_configs_build_and_respect_capacity() {
        let n = line_net(3);
        let mut r = rng();
        for cfg in [
            DynamicsConfig::NodeChurn {
                failure_rate: 0.5,
                mttr: 2.0,
                seed: 7,
                base: Box::new(DynamicsConfig::Static),
            },
            DynamicsConfig::RegionalOutage {
                regions: vec![vec![NodeId(0), NodeId(1)]],
                outage_rate: 0.5,
                mttr: 2.0,
                seed: 7,
                base: Box::new(DynamicsConfig::Static),
            },
            DynamicsConfig::Maintenance {
                windows: vec![MaintenanceWindow {
                    start: 0,
                    end: 2,
                    nodes: vec![NodeId(0)],
                }],
                base: Box::new(DynamicsConfig::Static),
            },
        ] {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: DynamicsConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, cfg);
            let mut d = cfg.build();
            for t in 0..5 {
                let s = d.snapshot(t, &n, &mut r);
                assert!(s.total_qubits() <= n.total_qubits());
            }
        }
    }

    #[test]
    fn churn_composes_with_occupancy_base() {
        let n = line_net(3);
        let mut d = ChurnDynamics::new(10.0, 4.0, 3, Box::new(UniformOccupancy::new(0.5)));
        let mut r = rng();
        for t in 0..10 {
            let s = d.snapshot(t, &n, &mut r);
            for e in n.graph().edge_ids() {
                if d.down_edges().contains(&e) {
                    assert_eq!(s.channels(e), 0);
                } else {
                    // Base occupancy still applies to surviving links.
                    assert!(s.channels(e) <= 6);
                }
            }
        }
        // Rate 10 over 3 links: everything should be down at some point.
        assert!(d.churn_events().len() >= 3);
    }
}
