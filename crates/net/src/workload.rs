//! Per-slot EC request generators.
//!
//! The paper's evaluation draws the number of SD pairs per slot from
//! `U[1, 5]` with endpoints picked at random (§V-A-2); this corresponds to
//! [`UniformWorkload::paper_default`]. Additional generators model DQC
//! workload patterns (Poisson arrivals, hotspot traffic) for robustness
//! experiments and examples.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use qdn_graph::NodeId;

use crate::network::QdnNetwork;
use crate::request::{RequestSet, SdPair};

/// A source of per-slot request sets `Φ_t`.
pub trait Workload: std::fmt::Debug + Send {
    /// The SD pairs requesting ECs in slot `t`.
    fn requests(&mut self, t: u64, network: &QdnNetwork, rng: &mut dyn rand::Rng) -> RequestSet;

    /// Upper bound `F` on `|Φ_t|`, needed by the theory bounds (paper
    /// Assumption 1 and Prop. 2 use `F`).
    fn max_pairs(&self) -> usize;

    /// Resets internal state for a fresh trial.
    fn reset(&mut self) {}
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn requests(&mut self, t: u64, network: &QdnNetwork, rng: &mut dyn rand::Rng) -> RequestSet {
        (**self).requests(t, network, rng)
    }

    fn max_pairs(&self) -> usize {
        (**self).max_pairs()
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

/// Samples a random SD pair with distinct endpoints.
///
/// # Panics
///
/// Panics if the network has fewer than two nodes.
pub fn random_sd_pair<R: Rng + ?Sized>(rng: &mut R, network: &QdnNetwork) -> SdPair {
    let n = network.node_count();
    assert!(n >= 2, "need at least two nodes to form an SD pair");
    let s = rng.random_range(0..n as u32);
    let mut d = rng.random_range(0..n as u32 - 1);
    if d >= s {
        d += 1;
    }
    SdPair::new(NodeId(s), NodeId(d)).expect("s != d by construction")
}

/// The paper's workload: `|Φ_t| ~ U[min_pairs, max_pairs]`, endpoints
/// uniform over distinct node pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformWorkload {
    /// Minimum pairs per slot.
    pub min_pairs: usize,
    /// Maximum pairs per slot (the paper's `F`).
    pub max_pairs: usize,
}

impl UniformWorkload {
    /// The paper's §V-A default: `U[1, 5]`.
    pub fn paper_default() -> Self {
        UniformWorkload {
            min_pairs: 1,
            max_pairs: 5,
        }
    }

    /// Creates a uniform workload, normalising an inverted range.
    pub fn new(min_pairs: usize, max_pairs: usize) -> Self {
        let (lo, hi) = if min_pairs <= max_pairs {
            (min_pairs, max_pairs)
        } else {
            (max_pairs, min_pairs)
        };
        UniformWorkload {
            min_pairs: lo,
            max_pairs: hi,
        }
    }
}

impl Workload for UniformWorkload {
    fn requests(&mut self, _t: u64, network: &QdnNetwork, rng: &mut dyn rand::Rng) -> RequestSet {
        let count = rng.random_range(self.min_pairs..=self.max_pairs);
        (0..count).map(|_| random_sd_pair(rng, network)).collect()
    }

    fn max_pairs(&self) -> usize {
        self.max_pairs
    }
}

/// Poisson arrivals truncated at `max_pairs`: `|Φ_t| = min(Pois(rate), F)`.
///
/// Models DQC job arrivals where the request intensity reflects an
/// underlying workload process rather than a bounded uniform draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonWorkload {
    /// Mean arrivals per slot.
    pub rate: f64,
    /// Hard cap `F` on pairs per slot.
    pub max_pairs: usize,
}

impl PoissonWorkload {
    /// Creates a Poisson workload.
    ///
    /// Negative rates are clamped to zero.
    pub fn new(rate: f64, max_pairs: usize) -> Self {
        PoissonWorkload {
            rate: rate.max(0.0),
            max_pairs,
        }
    }

    /// Knuth's algorithm: count multiplications of uniforms until the
    /// product drops below `e^{-rate}`.
    fn sample_poisson(&self, rng: &mut dyn rand::Rng) -> usize {
        let limit = (-self.rate).exp();
        let mut count = 0usize;
        let mut product: f64 = rng.random();
        while product > limit && count < self.max_pairs {
            count += 1;
            let u: f64 = rng.random();
            product *= u;
        }
        count
    }
}

impl Workload for PoissonWorkload {
    fn requests(&mut self, _t: u64, network: &QdnNetwork, rng: &mut dyn rand::Rng) -> RequestSet {
        let count = self.sample_poisson(rng).min(self.max_pairs);
        (0..count).map(|_| random_sd_pair(rng, network)).collect()
    }

    fn max_pairs(&self) -> usize {
        self.max_pairs
    }
}

/// Hotspot workload: a fraction of traffic concentrates on a small set of
/// "data-center" nodes; the rest is uniform.
///
/// Models the DQC motivation of the paper's introduction, where a few
/// large quantum computers serve many smaller ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotspotWorkload {
    /// Pairs per slot (fixed).
    pub pairs_per_slot: usize,
    /// Nodes that attract traffic.
    pub hotspots: Vec<NodeId>,
    /// Probability that a request touches a hotspot endpoint.
    pub hotspot_probability: f64,
}

impl HotspotWorkload {
    /// Creates a hotspot workload.
    ///
    /// The probability is clamped into `[0, 1]`; an empty hotspot list
    /// degenerates to uniform traffic.
    pub fn new(pairs_per_slot: usize, hotspots: Vec<NodeId>, hotspot_probability: f64) -> Self {
        HotspotWorkload {
            pairs_per_slot,
            hotspots,
            hotspot_probability: hotspot_probability.clamp(0.0, 1.0),
        }
    }
}

impl Workload for HotspotWorkload {
    fn requests(&mut self, _t: u64, network: &QdnNetwork, rng: &mut dyn rand::Rng) -> RequestSet {
        let mut set = Vec::with_capacity(self.pairs_per_slot);
        for _ in 0..self.pairs_per_slot {
            let pair = if !self.hotspots.is_empty() && rng.random_bool(self.hotspot_probability) {
                // One endpoint is a hotspot, the other uniform (distinct).
                let h = self.hotspots[rng.random_range(0..self.hotspots.len())];
                loop {
                    let other = NodeId(rng.random_range(0..network.node_count() as u32));
                    if other != h {
                        break SdPair::new(other, h).expect("distinct by loop");
                    }
                }
            } else {
                random_sd_pair(rng, network)
            };
            set.push(pair);
        }
        set
    }

    fn max_pairs(&self) -> usize {
        self.pairs_per_slot
    }
}

/// Temporally-correlated renewal workload: a sticky set of
/// `pairs_per_slot` active SD pairs where each slot keeps each active
/// pair with probability `keep_probability` and replaces departures
/// with fresh uniform pairs.
///
/// This models session-like DQC traffic — an entanglement consumer
/// typically requests connections over many consecutive slots, not for
/// one slot in isolation — and is the regime where cross-slot selection
/// state (λ warm starts, previous-profile seeding via
/// `SelectorSession`) pays: consecutive slots share most of their
/// pairs, so route spaces, coupling components, and near-optimal
/// profiles carry over. `keep_probability = 0` degenerates to a fresh
/// uniform draw every slot; `1` pins the first slot's pairs forever.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistentWorkload {
    /// Size of the active pair set (fixed per slot).
    pub pairs_per_slot: usize,
    /// Per-slot survival probability of each active pair.
    pub keep_probability: f64,
    /// The current active set (empty before the first slot).
    active: Vec<SdPair>,
}

impl PersistentWorkload {
    /// Creates the workload; `keep_probability` is clamped into `[0, 1]`
    /// and `pairs_per_slot` is raised to at least 1.
    pub fn new(pairs_per_slot: usize, keep_probability: f64) -> Self {
        PersistentWorkload {
            pairs_per_slot: pairs_per_slot.max(1),
            keep_probability: keep_probability.clamp(0.0, 1.0),
            active: Vec::new(),
        }
    }

    /// A paper-scale default: 5 active pairs, 80% per-slot survival
    /// (mean session length 5 slots).
    pub fn paper_scale() -> Self {
        Self::new(5, 0.8)
    }
}

impl Workload for PersistentWorkload {
    fn requests(&mut self, _t: u64, network: &QdnNetwork, rng: &mut dyn rand::Rng) -> RequestSet {
        if self.active.is_empty() {
            self.active = (0..self.pairs_per_slot)
                .map(|_| random_sd_pair(rng, network))
                .collect();
        } else {
            for pair in &mut self.active {
                if !rng.random_bool(self.keep_probability) {
                    *pair = random_sd_pair(rng, network);
                }
            }
        }
        self.active.clone()
    }

    fn max_pairs(&self) -> usize {
        self.pairs_per_slot
    }

    fn reset(&mut self) {
        self.active.clear();
    }
}

/// Wraps a base workload so every drawn SD pair issues several EC
/// requests in the same slot.
///
/// The paper's §III-C prescribes exactly this treatment: "the extension
/// to multiple EC requests from a single SD pair is straightforward. In
/// such cases, we can treat each entanglement connection request as a
/// separate SD pair, each with a single EC request." Each base pair is
/// therefore repeated `k ~ U[1, max_requests_per_pair]` times in the
/// returned request set; the routing stack treats every copy as an
/// independent request (they may be assigned different routes and
/// allocations).
///
/// # Example
///
/// ```
/// use qdn_net::workload::{MultiEcWorkload, UniformWorkload, Workload};
///
/// let w = MultiEcWorkload::new(UniformWorkload::paper_default(), 3);
/// // F = 5 base pairs × up to 3 requests each.
/// assert_eq!(w.max_pairs(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiEcWorkload<W> {
    base: W,
    max_requests_per_pair: usize,
}

impl<W: Workload> MultiEcWorkload<W> {
    /// Wraps `base` with per-pair multiplicity `U[1, max_requests_per_pair]`.
    ///
    /// A multiplicity bound of zero is clamped to one (every pair makes at
    /// least one request).
    pub fn new(base: W, max_requests_per_pair: usize) -> Self {
        MultiEcWorkload {
            base,
            max_requests_per_pair: max_requests_per_pair.max(1),
        }
    }

    /// The wrapped workload.
    pub fn base(&self) -> &W {
        &self.base
    }

    /// Upper bound on EC requests issued by a single SD pair per slot.
    pub fn max_requests_per_pair(&self) -> usize {
        self.max_requests_per_pair
    }
}

impl<W: Workload> Workload for MultiEcWorkload<W> {
    fn requests(&mut self, t: u64, network: &QdnNetwork, rng: &mut dyn rand::Rng) -> RequestSet {
        let base_set = self.base.requests(t, network, rng);
        let mut out = Vec::with_capacity(base_set.len());
        for pair in base_set {
            let copies = rng.random_range(1..=self.max_requests_per_pair);
            out.extend(std::iter::repeat_n(pair, copies));
        }
        out
    }

    fn max_pairs(&self) -> usize {
        self.base.max_pairs() * self.max_requests_per_pair
    }

    fn reset(&mut self) {
        self.base.reset();
    }
}

/// Replays a fixed per-slot request trace, returning empty sets past its
/// end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceWorkload {
    trace: Vec<RequestSet>,
}

impl TraceWorkload {
    /// Creates a trace workload.
    pub fn new(trace: Vec<RequestSet>) -> Self {
        TraceWorkload { trace }
    }
}

impl Workload for TraceWorkload {
    fn requests(&mut self, t: u64, _network: &QdnNetwork, _rng: &mut dyn rand::Rng) -> RequestSet {
        self.trace.get(t as usize).cloned().unwrap_or_default()
    }

    fn max_pairs(&self) -> usize {
        self.trace.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// The same fixed request set every slot.
///
/// This is the churn-recovery harness workload: with demand pinned, the
/// utility series before and after a link cut is directly comparable, so
/// slots-to-recover (see `RunMetrics::recovery_records` in `qdn_sim`) is
/// a property of the cut and the policy, not of workload noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PinnedWorkload {
    pairs: Vec<SdPair>,
}

impl PinnedWorkload {
    /// Creates a pinned workload issuing exactly `pairs` every slot.
    pub fn new(pairs: Vec<SdPair>) -> Self {
        PinnedWorkload { pairs }
    }
}

impl Workload for PinnedWorkload {
    fn requests(&mut self, _t: u64, _network: &QdnNetwork, _rng: &mut dyn rand::Rng) -> RequestSet {
        self.pairs.clone()
    }

    fn max_pairs(&self) -> usize {
        self.pairs.len()
    }
}

/// Serializable workload choice for experiment configs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadConfig {
    /// [`UniformWorkload`].
    Uniform {
        /// Minimum pairs per slot.
        min_pairs: usize,
        /// Maximum pairs per slot.
        max_pairs: usize,
    },
    /// [`PoissonWorkload`].
    Poisson {
        /// Mean arrivals per slot.
        rate: f64,
        /// Cap on pairs per slot.
        max_pairs: usize,
    },
    /// [`HotspotWorkload`] with hotspot node indices.
    Hotspot {
        /// Pairs per slot.
        pairs_per_slot: usize,
        /// Hotspot node indices.
        hotspots: Vec<u32>,
        /// Probability a request touches a hotspot.
        hotspot_probability: f64,
    },
    /// [`MultiEcWorkload`] over a base configuration (paper §III-C:
    /// multiple EC requests from one SD pair become repeated pairs).
    MultiEc {
        /// The base workload whose pairs are multiplied.
        base: Box<WorkloadConfig>,
        /// Upper bound on EC requests per pair per slot.
        max_requests_per_pair: usize,
    },
    /// [`PersistentWorkload`]: a sticky pair set with per-slot survival
    /// probability — the temporal-correlation scenario for cross-slot
    /// selection sessions.
    Persistent {
        /// Size of the active pair set.
        pairs_per_slot: usize,
        /// Per-slot survival probability of each active pair.
        keep_probability: f64,
    },
    /// [`PinnedWorkload`]: the identical request set every slot, given as
    /// `(source, destination)` node indices. Both fields of each pair are
    /// required and must be distinct — `build` panics otherwise (loud
    /// break over silently dropping bad pairs).
    Pinned {
        /// The `(source, destination)` node-index pairs issued each slot.
        pairs: Vec<(u32, u32)>,
    },
}

impl WorkloadConfig {
    /// The paper's default workload (`U[1,5]`).
    pub fn paper_default() -> Self {
        WorkloadConfig::Uniform {
            min_pairs: 1,
            max_pairs: 5,
        }
    }

    /// Instantiates the configured workload.
    pub fn build(&self) -> Box<dyn Workload> {
        match self {
            WorkloadConfig::Uniform {
                min_pairs,
                max_pairs,
            } => Box::new(UniformWorkload::new(*min_pairs, *max_pairs)),
            WorkloadConfig::Poisson { rate, max_pairs } => {
                Box::new(PoissonWorkload::new(*rate, *max_pairs))
            }
            WorkloadConfig::Hotspot {
                pairs_per_slot,
                hotspots,
                hotspot_probability,
            } => Box::new(HotspotWorkload::new(
                *pairs_per_slot,
                hotspots.iter().map(|&i| NodeId(i)).collect(),
                *hotspot_probability,
            )),
            WorkloadConfig::MultiEc {
                base,
                max_requests_per_pair,
            } => Box::new(MultiEcWorkload::new(base.build(), *max_requests_per_pair)),
            WorkloadConfig::Persistent {
                pairs_per_slot,
                keep_probability,
            } => Box::new(PersistentWorkload::new(*pairs_per_slot, *keep_probability)),
            WorkloadConfig::Pinned { pairs } => Box::new(PinnedWorkload::new(
                pairs
                    .iter()
                    .map(|&(s, d)| {
                        SdPair::new(NodeId(s), NodeId(d))
                            .expect("pinned workload pairs must have distinct endpoints")
                    })
                    .collect(),
            )),
        }
    }

    /// Upper bound `F` on pairs per slot for this configuration.
    pub fn max_pairs(&self) -> usize {
        match self {
            WorkloadConfig::Uniform { max_pairs, .. } => *max_pairs,
            WorkloadConfig::Poisson { max_pairs, .. } => *max_pairs,
            WorkloadConfig::Hotspot { pairs_per_slot, .. } => *pairs_per_slot,
            WorkloadConfig::MultiEc {
                base,
                max_requests_per_pair,
            } => base.max_pairs() * (*max_requests_per_pair).max(1),
            WorkloadConfig::Persistent { pairs_per_slot, .. } => (*pairs_per_slot).max(1),
            WorkloadConfig::Pinned { pairs } => pairs.len(),
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::QdnNetworkBuilder;
    use qdn_physics::link::LinkModel;
    use rand::SeedableRng;

    fn net(nodes: u32) -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let ids: Vec<_> = (0..nodes).map(|_| b.add_node(10)).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 5, LinkModel::paper_default())
                .unwrap();
        }
        b.build()
    }

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_pair_distinct_endpoints() {
        let n = net(6);
        let mut r = rng(1);
        for _ in 0..500 {
            let p = random_sd_pair(&mut r, &n);
            assert_ne!(p.source(), p.destination());
            assert!(p.source().index() < 6);
            assert!(p.destination().index() < 6);
        }
    }

    #[test]
    fn random_pair_covers_all_nodes() {
        let n = net(5);
        let mut r = rng(2);
        let mut seen_src = [false; 5];
        let mut seen_dst = [false; 5];
        for _ in 0..1000 {
            let p = random_sd_pair(&mut r, &n);
            seen_src[p.source().index()] = true;
            seen_dst[p.destination().index()] = true;
        }
        assert!(seen_src.iter().all(|&s| s));
        assert!(seen_dst.iter().all(|&d| d));
    }

    #[test]
    fn uniform_workload_respects_bounds() {
        let n = net(8);
        let mut w = UniformWorkload::paper_default();
        let mut r = rng(3);
        let mut seen_min = usize::MAX;
        let mut seen_max = 0;
        for t in 0..300 {
            let set = w.requests(t, &n, &mut r);
            seen_min = seen_min.min(set.len());
            seen_max = seen_max.max(set.len());
            assert!((1..=5).contains(&set.len()));
        }
        assert_eq!(seen_min, 1);
        assert_eq!(seen_max, 5);
        assert_eq!(w.max_pairs(), 5);
    }

    #[test]
    fn uniform_workload_normalises_range() {
        let w = UniformWorkload::new(7, 2);
        assert_eq!(w.min_pairs, 2);
        assert_eq!(w.max_pairs, 7);
    }

    #[test]
    fn poisson_workload_mean_and_cap() {
        let n = net(8);
        let mut w = PoissonWorkload::new(2.0, 10);
        let mut r = rng(5);
        let mut total = 0usize;
        const SLOTS: u64 = 3000;
        for t in 0..SLOTS {
            let set = w.requests(t, &n, &mut r);
            assert!(set.len() <= 10);
            total += set.len();
        }
        let mean = total as f64 / SLOTS as f64;
        assert!(
            (mean - 2.0).abs() < 0.15,
            "Poisson mean {mean} should be ~2"
        );
    }

    #[test]
    fn poisson_zero_rate_is_empty() {
        let n = net(4);
        let mut w = PoissonWorkload::new(0.0, 5);
        let mut r = rng(6);
        // exp(0)=1, product starts <= 1... first uniform draw is < 1 w.p. 1.
        for t in 0..50 {
            assert!(w.requests(t, &n, &mut r).len() <= 1);
        }
    }

    #[test]
    fn hotspot_bias_observed() {
        let n = net(10);
        let hot = NodeId(0);
        let mut w = HotspotWorkload::new(4, vec![hot], 0.9);
        let mut r = rng(7);
        let mut touching = 0usize;
        let mut total = 0usize;
        for t in 0..500 {
            for p in w.requests(t, &n, &mut r) {
                total += 1;
                if p.source() == hot || p.destination() == hot {
                    touching += 1;
                }
            }
        }
        let frac = touching as f64 / total as f64;
        assert!(frac > 0.7, "hotspot fraction {frac} should reflect bias");
    }

    #[test]
    fn hotspot_empty_list_is_uniform() {
        let n = net(6);
        let mut w = HotspotWorkload::new(3, vec![], 0.9);
        let mut r = rng(8);
        let set = w.requests(0, &n, &mut r);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn trace_workload_replays() {
        let n = net(4);
        let a = SdPair::new(NodeId(0), NodeId(1)).unwrap();
        let b = SdPair::new(NodeId(2), NodeId(3)).unwrap();
        let mut w = TraceWorkload::new(vec![vec![a], vec![a, b]]);
        let mut r = rng(9);
        assert_eq!(w.requests(0, &n, &mut r), vec![a]);
        assert_eq!(w.requests(1, &n, &mut r), vec![a, b]);
        assert!(w.requests(2, &n, &mut r).is_empty());
        assert_eq!(w.max_pairs(), 2);
    }

    #[test]
    fn multi_ec_repeats_pairs() {
        let n = net(8);
        let base = TraceWorkload::new(vec![vec![
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(1), NodeId(5)).unwrap(),
        ]]);
        let mut w = MultiEcWorkload::new(base, 4);
        let mut r = rng(11);
        let set = w.requests(0, &n, &mut r);
        // Each base pair appears 1..=4 times, contiguously.
        assert!(set.len() >= 2 && set.len() <= 8);
        let first = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let second = SdPair::new(NodeId(1), NodeId(5)).unwrap();
        let firsts = set.iter().filter(|&&p| p == first).count();
        let seconds = set.iter().filter(|&&p| p == second).count();
        assert!((1..=4).contains(&firsts));
        assert!((1..=4).contains(&seconds));
        assert_eq!(firsts + seconds, set.len());
    }

    #[test]
    fn multi_ec_multiplicity_covers_range() {
        let n = net(8);
        let mut w = MultiEcWorkload::new(
            TraceWorkload::new(vec![vec![SdPair::new(NodeId(0), NodeId(1)).unwrap()]; 400]),
            3,
        );
        let mut r = rng(12);
        let mut seen = [false; 3];
        for t in 0..400 {
            let set = w.requests(t, &n, &mut r);
            assert!((1..=3).contains(&set.len()));
            seen[set.len() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "all multiplicities 1..=3 drawn");
    }

    #[test]
    fn multi_ec_f_bound_and_clamping() {
        let w = MultiEcWorkload::new(UniformWorkload::paper_default(), 3);
        assert_eq!(w.max_pairs(), 15);
        assert_eq!(w.max_requests_per_pair(), 3);
        // Zero clamps to one: degenerates to the base workload.
        let w0 = MultiEcWorkload::new(UniformWorkload::paper_default(), 0);
        assert_eq!(w0.max_requests_per_pair(), 1);
        assert_eq!(w0.max_pairs(), 5);
    }

    #[test]
    fn multi_ec_multiplicity_one_matches_base() {
        // With multiplicity 1 every pair appears exactly once, so a
        // deterministic base trace passes through unchanged.
        let n = net(8);
        let a = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let b = SdPair::new(NodeId(1), NodeId(5)).unwrap();
        let trace = vec![vec![a], vec![a, b], vec![b]];
        let mut wrapped = MultiEcWorkload::new(TraceWorkload::new(trace.clone()), 1);
        let mut r = rng(13);
        for (t, expected) in trace.iter().enumerate() {
            assert_eq!(&wrapped.requests(t as u64, &n, &mut r), expected);
        }
    }

    #[test]
    fn boxed_workload_forwards() {
        let n = net(6);
        let mut w: Box<dyn Workload> = Box::new(UniformWorkload::paper_default());
        let mut r = rng(14);
        let set = w.requests(0, &n, &mut r);
        assert!((1..=5).contains(&set.len()));
        assert_eq!(w.max_pairs(), 5);
        w.reset();
        // A MultiEcWorkload over a boxed base also composes.
        let mut nested = MultiEcWorkload::new(w, 2);
        assert_eq!(nested.max_pairs(), 10);
        let set = nested.requests(1, &n, &mut r);
        assert!(!set.is_empty());
    }

    #[test]
    fn multi_ec_config_builds_and_reports_f() {
        let n = net(8);
        let cfg = WorkloadConfig::MultiEc {
            base: Box::new(WorkloadConfig::Uniform {
                min_pairs: 2,
                max_pairs: 3,
            }),
            max_requests_per_pair: 2,
        };
        assert_eq!(cfg.max_pairs(), 6);
        let mut w = cfg.build();
        let mut r = rng(15);
        for t in 0..30 {
            let set = w.requests(t, &n, &mut r);
            assert!((2..=6).contains(&set.len()));
        }
        assert_eq!(w.max_pairs(), 6);
    }

    #[test]
    fn persistent_workload_keeps_and_replaces() {
        let n = net(12);
        let mut w = PersistentWorkload::new(6, 0.75);
        let mut r = rng(21);
        let first = w.requests(0, &n, &mut r);
        assert_eq!(first.len(), 6);
        let mut kept_total = 0usize;
        let mut prev = first;
        for t in 1..200 {
            let cur = w.requests(t, &n, &mut r);
            assert_eq!(cur.len(), 6, "active set size is fixed");
            // Position-wise survival: a kept slot keeps its exact pair.
            kept_total += prev.iter().zip(&cur).filter(|(a, b)| a == b).count();
            prev = cur;
        }
        let kept_frac = kept_total as f64 / (199.0 * 6.0);
        assert!(
            (kept_frac - 0.75).abs() < 0.06,
            "per-slot survival should track keep_probability, got {kept_frac}"
        );
    }

    #[test]
    fn persistent_workload_extremes_and_reset() {
        let n = net(10);
        // keep = 1: the first slot's pairs persist forever.
        let mut sticky = PersistentWorkload::new(4, 1.0);
        let mut r = rng(22);
        let first = sticky.requests(0, &n, &mut r);
        for t in 1..20 {
            assert_eq!(sticky.requests(t, &n, &mut r), first);
        }
        // reset clears the active set: the next slot redraws.
        sticky.reset();
        let redrawn = sticky.requests(0, &n, &mut r);
        assert_eq!(redrawn.len(), 4);
        assert_ne!(redrawn, first, "fresh draw after reset (w.h.p.)");
        // keep = 0: every slot is a fresh draw (no positional survivors
        // beyond chance; just sanity-check it runs and sizes hold).
        let mut churn = PersistentWorkload::new(3, 0.0);
        for t in 0..10 {
            assert_eq!(churn.requests(t, &n, &mut r).len(), 3);
        }
        // Degenerate parameters are clamped.
        let w = PersistentWorkload::new(0, 7.5);
        assert_eq!(w.max_pairs(), 1);
        assert_eq!(w.keep_probability, 1.0);
    }

    #[test]
    fn persistent_config_builds_and_reports_f() {
        let n = net(8);
        let cfg = WorkloadConfig::Persistent {
            pairs_per_slot: 4,
            keep_probability: 0.8,
        };
        assert_eq!(cfg.max_pairs(), 4);
        let mut w = cfg.build();
        let mut r = rng(23);
        let a = w.requests(0, &n, &mut r);
        let b = w.requests(1, &n, &mut r);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        assert_eq!(w.max_pairs(), 4);
    }

    #[test]
    fn config_builds_and_reports_f() {
        let n = net(6);
        let mut r = rng(10);
        for cfg in [
            WorkloadConfig::paper_default(),
            WorkloadConfig::Poisson {
                rate: 1.5,
                max_pairs: 4,
            },
            WorkloadConfig::Hotspot {
                pairs_per_slot: 3,
                hotspots: vec![0],
                hotspot_probability: 0.5,
            },
            WorkloadConfig::Persistent {
                pairs_per_slot: 2,
                keep_probability: 0.5,
            },
        ] {
            let mut w = cfg.build();
            let set = w.requests(0, &n, &mut r);
            assert!(set.len() <= cfg.max_pairs());
            assert_eq!(w.max_pairs(), cfg.max_pairs());
        }
    }
}
