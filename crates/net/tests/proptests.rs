//! Property-based tests for the QDN model layer.

use proptest::prelude::*;
use qdn_net::config::{CapacityRange, NetworkConfig};
use qdn_net::dynamics::{MarkovOccupancy, ResourceDynamics, StaticDynamics, UniformOccupancy};
use qdn_net::routes::{CandidateRoutes, RouteLimits};
use qdn_net::workload::{random_sd_pair, PoissonWorkload, UniformWorkload, Workload};
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated networks respect every configured range and are usable:
    /// connected topology, capacities within bounds, p_min in (0,1).
    #[test]
    fn network_config_invariants(
        seed in 0u64..10_000,
        nodes in 5usize..25,
        q_lo in 2u32..8, q_extra in 0u32..8,
        w_lo in 2u32..5, w_extra in 0u32..5,
    ) {
        let mut cfg = NetworkConfig::paper_default().with_nodes(nodes);
        cfg.qubit_capacity = CapacityRange { low: q_lo, high: q_lo + q_extra };
        cfg.channel_capacity = CapacityRange { low: w_lo, high: w_lo + w_extra };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = cfg.build(&mut rng).unwrap();
        prop_assert_eq!(net.node_count(), nodes);
        prop_assert!(qdn_graph::connectivity::is_connected(net.graph()));
        for v in net.graph().node_ids() {
            prop_assert!((q_lo..=q_lo + q_extra).contains(&net.qubit_capacity(v)));
        }
        for e in net.graph().edge_ids() {
            prop_assert!((w_lo..=w_lo + w_extra).contains(&net.channel_capacity(e)));
        }
        prop_assert!(net.p_min() > 0.0 && net.p_min() < 1.0);
    }

    /// Classic topology families generate connected graphs with the
    /// advertised node counts and in-square layouts at any size.
    #[test]
    fn classic_topologies_invariants(
        seed in 0u64..10_000,
        nodes in 3usize..20,
        rows in 2usize..5,
        cols in 2usize..5,
        side in 10.0f64..200.0,
    ) {
        use qdn_net::config::TopologyConfig;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for topology in [
            TopologyConfig::Ring { nodes, side },
            TopologyConfig::Grid { rows, cols, side },
            TopologyConfig::Star { leaves: nodes, side },
            TopologyConfig::Line { nodes, side },
        ] {
            let topo = topology.generate(&mut rng);
            prop_assert_eq!(topo.graph.node_count(), topology.node_count(), "{:?}", topology);
            prop_assert!(qdn_graph::connectivity::is_connected(&topo.graph), "{:?}", topology);
            for p in &topo.positions {
                prop_assert!((0.0..=side).contains(&p.x));
                prop_assert!((0.0..=side).contains(&p.y));
            }
            // Builds into a network without physical-parameter errors.
            let cfg = NetworkConfig {
                topology: topology.clone(),
                ..NetworkConfig::paper_default()
            };
            prop_assert!(cfg.build(&mut rng).is_ok(), "{:?}", topology);
        }
    }

    /// All dynamics produce snapshots bounded by installed capacity, and
    /// static dynamics produce exactly the installed capacity.
    #[test]
    fn dynamics_respect_installed_capacity(seed in 0u64..10_000, frac in 0.0f64..1.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = NetworkConfig::paper_default().with_nodes(10).build(&mut rng).unwrap();
        let mut dynamics: Vec<Box<dyn ResourceDynamics>> = vec![
            Box::new(StaticDynamics),
            Box::new(UniformOccupancy::new(frac)),
            Box::new(MarkovOccupancy::new(frac, 1.0 - frac, 0.5)),
        ];
        for d in &mut dynamics {
            for t in 0..5 {
                let snap = d.snapshot(t, &net, &mut rng);
                for v in net.graph().node_ids() {
                    prop_assert!(snap.qubits(v) <= net.qubit_capacity(v));
                }
                for e in net.graph().edge_ids() {
                    prop_assert!(snap.channels(e) <= net.channel_capacity(e));
                }
            }
        }
    }

    /// Workloads always return valid SD pairs within their cap `F`.
    #[test]
    fn workloads_within_bounds(seed in 0u64..10_000, rate in 0.1f64..6.0, cap in 1usize..8) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = NetworkConfig::paper_default().with_nodes(8).build(&mut rng).unwrap();
        let mut workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(UniformWorkload::new(1, cap)),
            Box::new(PoissonWorkload::new(rate, cap)),
        ];
        for w in &mut workloads {
            for t in 0..10 {
                let set = w.requests(t, &net, &mut rng);
                prop_assert!(set.len() <= w.max_pairs());
                for p in set {
                    prop_assert!(p.source() != p.destination());
                    prop_assert!(p.source().index() < net.node_count());
                    prop_assert!(p.destination().index() < net.node_count());
                }
            }
        }
    }

    /// Candidate routes: valid endpoints, hop bounds, sorted lengths, and
    /// consistent between orientations.
    #[test]
    fn candidate_routes_invariants(seed in 0u64..10_000, max_routes in 1usize..6, max_hops in 2usize..8) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = NetworkConfig::paper_default().with_nodes(12).build(&mut rng).unwrap();
        let mut cr = CandidateRoutes::new(RouteLimits { max_routes, max_hops });
        let pair = random_sd_pair(&mut rng, &net);
        let routes = cr.routes(&net, pair).to_vec();
        prop_assert!(routes.len() <= max_routes);
        for w in routes.windows(2) {
            prop_assert!(w[0].hops() <= w[1].hops());
        }
        for r in &routes {
            prop_assert_eq!(r.source(), pair.source());
            prop_assert_eq!(r.destination(), pair.destination());
            prop_assert!(r.hops() >= 1 && r.hops() <= max_hops);
        }
        let reversed = cr.routes(&net, pair.reversed()).to_vec();
        prop_assert_eq!(routes.len(), reversed.len());
    }

    /// Churn snapshots stay within builder bounds: downed links report
    /// zero channels, everything else stays within installed capacity.
    #[test]
    fn churn_snapshots_within_bounds(
        seed in 0u64..10_000,
        rate in 0.0f64..3.0,
        mttr in 1.0f64..6.0,
    ) {
        use qdn_net::dynamics::{ChurnDynamics, ChurnEventKind};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = NetworkConfig::paper_default().with_nodes(10).build(&mut rng).unwrap();
        let mut d = ChurnDynamics::new(rate, mttr, seed ^ 0xdead, Box::new(StaticDynamics));
        for t in 0..12 {
            let snap = d.snapshot(t, &net, &mut rng);
            let down = d.down_edges();
            for v in net.graph().node_ids() {
                prop_assert!(snap.qubits(v) <= net.qubit_capacity(v));
            }
            for e in net.graph().edge_ids() {
                prop_assert!(snap.channels(e) <= net.channel_capacity(e));
                if down.contains(&e) {
                    prop_assert_eq!(snap.channels(e), 0);
                }
            }
        }
        // Event sanity: fails and repairs alternate per edge.
        for e in net.graph().edge_ids() {
            let mut down = false;
            for ev in d.churn_events().iter().filter(|ev| ev.edge == e) {
                match ev.kind {
                    ChurnEventKind::Fail => {
                        prop_assert!(!down, "edge {} failed while down", e);
                        down = true;
                    }
                    ChurnEventKind::Repair => {
                        prop_assert!(down, "edge {} repaired while up", e);
                        down = false;
                    }
                }
            }
        }
    }

    /// A repaired link restores its exact pre-failure capacity: over a
    /// static base, every up edge (including one repaired this very slot)
    /// reports exactly its installed channel count, and a fully-drained
    /// outage set yields the full snapshot.
    #[test]
    fn churn_repairs_restore_exact_capacity(
        seed in 0u64..10_000,
        rate in 0.5f64..3.0,
        mttr in 1.0f64..4.0,
    ) {
        use qdn_net::dynamics::{ChurnDynamics, ChurnEventKind};
        use qdn_net::CapacitySnapshot;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = NetworkConfig::paper_default().with_nodes(8).build(&mut rng).unwrap();
        let mut d = ChurnDynamics::new(rate, mttr, seed, Box::new(StaticDynamics));
        let mut saw_repair = false;
        for t in 0..20 {
            let snap = d.snapshot(t, &net, &mut rng);
            let down = d.down_edges();
            let repaired_now: Vec<_> = d
                .churn_events()
                .iter()
                .filter(|ev| ev.t == t && ev.kind == ChurnEventKind::Repair)
                .map(|ev| ev.edge)
                .collect();
            for e in net.graph().edge_ids() {
                if !down.contains(&e) {
                    prop_assert_eq!(snap.channels(e), net.channel_capacity(e));
                }
            }
            for e in repaired_now {
                if !down.contains(&e) {
                    saw_repair = true;
                    prop_assert_eq!(snap.channels(e), net.channel_capacity(e));
                }
            }
            if down.is_empty() {
                prop_assert_eq!(snap, CapacitySnapshot::full(&net));
            }
        }
        let _ = saw_repair; // invariants above are the property; repairs
                            // are exercised whenever the trace has them
    }

    /// A fixed seed reproduces the identical failure trace, regardless of
    /// what the environment RNG stream does.
    #[test]
    fn churn_trace_reproducible(seed in 0u64..10_000, env_a in 0u64..1000, env_b in 0u64..1000) {
        use qdn_net::dynamics::{ChurnDynamics, ResourceDynamics};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let net = NetworkConfig::paper_default().with_nodes(10).build(&mut rng).unwrap();
        let run = |env_seed: u64| {
            let mut d = ChurnDynamics::new(0.8, 3.0, seed, Box::new(UniformOccupancy::new(0.4)));
            let mut env = rand::rngs::StdRng::seed_from_u64(env_seed);
            for t in 0..15 {
                let _ = d.snapshot(t, &net, &mut env);
            }
            d.churn_events().to_vec()
        };
        let trace_a = run(env_a);
        let trace_b = run(env_b);
        prop_assert_eq!(trace_a, trace_b);
    }

    /// Route success probabilities are monotone in the allocation on real
    /// networks.
    #[test]
    fn route_success_monotone(seed in 0u64..10_000, base in 1u32..4) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = NetworkConfig::paper_default().with_nodes(10).build(&mut rng).unwrap();
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        let pair = random_sd_pair(&mut rng, &net);
        let Some(route) = cr.routes(&net, pair).first().cloned() else {
            return Ok(());
        };
        let small = vec![base; route.hops()];
        let big = vec![base + 1; route.hops()];
        prop_assert!(net.route_success(&route, &big) >= net.route_success(&route, &small));
        prop_assert!(net.route_success(&route, &small) > 0.0);
        prop_assert!(net.route_success(&route, &big) < 1.0);
    }
}
