//! CLI for the workspace invariant checker.
//!
//! ```text
//! qdn-lint [--root DIR] [--report FILE] [--quiet]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/config/io error. The JSON
//! report (when requested) is written for clean and dirty runs alike —
//! CI archives it either way. A relative `--report` path resolves
//! against the workspace root, mirroring the criterion shim's
//! `CRITERION_JSON` convention.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = Some(PathBuf::from(v)),
                None => return usage("--report needs a file path"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: qdn-lint [--root DIR] [--report FILE] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    let root = root
        .or_else(|| std::env::var_os("CARGO_WORKSPACE_DIR").map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."));

    let report = match qdn_lint::lint_workspace_with_manifest(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qdn-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = report_path {
        let path = if path.is_absolute() {
            path
        } else {
            root.join(path)
        };
        if let Err(e) = write_report(&path, &report) {
            eprintln!("qdn-lint: {e}");
            return ExitCode::from(2);
        }
    }

    if !quiet || !report.is_clean() {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_report(path: &Path, report: &qdn_lint::LintReport) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    let json = serde_json::to_string_pretty(report).map_err(|e| format!("encode report: {e:?}"))?;
    std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
}

fn usage(message: &str) -> ExitCode {
    eprintln!("qdn-lint: {message}\nusage: qdn-lint [--root DIR] [--report FILE] [--quiet]");
    ExitCode::from(2)
}
