//! The rule catalog and per-file analysis passes.
//!
//! Each rule is a pass over the token stream from [`crate::lexer`].
//! Findings inside `#[cfg(test)]` items are dropped (tests are exempt
//! from every rule), and a finding can be suppressed by a
//! `// qdn-lint: allow(<rule>, reason="...")` comment on the same line
//! or the line above. Suppressions are themselves checked: a malformed
//! directive, an unknown rule name, a missing reason, or a suppression
//! that matches no finding is an error — the suppression inventory
//! stays honest.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::lexer::{lex, Suppression, Token, TokenKind};
use crate::report::Diagnostic;

/// One catalog entry.
pub struct RuleInfo {
    /// The rule name used in `lint.toml` and `allow(...)`.
    pub name: &'static str,
    /// The short code used in ISSUE/README prose.
    pub code: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The rule catalog. `crates/lint/README.md` documents each rule's
/// rationale, detection heuristic, and limits.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "unordered-iter",
        code: "D1",
        summary: "no HashMap/HashSet iteration in decision-path crates",
    },
    RuleInfo {
        name: "nondet-time",
        code: "D2",
        summary: "no wall-clock or OS entropy outside the allowlist",
    },
    RuleInfo {
        name: "raw-spawn",
        code: "D3",
        summary: "no ad-hoc thread spawning outside the shared compat pool",
    },
    RuleInfo {
        name: "serde-default",
        code: "C1",
        summary: "no #[serde(default)] — configs break loudly",
    },
    RuleInfo {
        name: "snapshot-version",
        code: "C2",
        summary: "pub *Snapshot types deriving Serialize carry a version field",
    },
    RuleInfo {
        name: "no-panic",
        code: "R1",
        summary: "no .unwrap()/.expect() in serving and daemon paths",
    },
    RuleInfo {
        name: "float-eq",
        code: "N1",
        summary: "no bare f64 ==/!= comparisons",
    },
];

/// Whether `name` is a catalog rule.
pub fn known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

fn hint_for(rule: &str) -> String {
    let fix = match rule {
        "unordered-iter" => {
            "use a BTreeMap/Vec, or sort the collected entries and prove order cannot leak"
        }
        "nondet-time" => "derive every draw from the seeded RNG / slot counter",
        "raw-spawn" => {
            "run the stage on the shared pool (threadpool::current().map_indexed/scope) \
             so width and reduction order stay configured in one place"
        }
        "serde-default" => "make the field required and document the break in MIGRATION.md",
        "snapshot-version" => "add a `version: u32` field mirroring *_SNAPSHOT_VERSION",
        "no-panic" => "return the error through the three-tier discipline instead of panicking",
        "float-eq" => "compare against a tolerance, or justify the exact comparison",
        _ => "fix the directive",
    };
    if known_rule(rule) {
        format!("{fix}; or suppress with // qdn-lint: allow({rule}, reason=\"...\")")
    } else {
        fix.to_string()
    }
}

/// The result of linting one file.
pub struct FileLint {
    pub diagnostics: Vec<Diagnostic>,
    pub suppressions_used: u32,
}

/// Lints one file. `path` must be workspace-relative with `/`
/// separators — rule scoping keys on it.
pub fn lint_source(path: &str, source: &str, config: &Config) -> FileLint {
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let test_spans = cfg_test_spans(tokens);
    let in_test = |line: u32| test_spans.iter().any(|&(a, b)| line >= a && line <= b);

    let mut findings: Vec<(u32, &'static str, String)> = Vec::new();
    if config.rule_applies("unordered-iter", path) {
        findings.extend(check_unordered_iter(tokens));
    }
    if config.rule_applies("nondet-time", path) {
        findings.extend(check_nondet_time(tokens));
    }
    if config.rule_applies("raw-spawn", path) {
        findings.extend(check_raw_spawn(tokens));
    }
    if config.rule_applies("serde-default", path) {
        findings.extend(check_serde_default(tokens));
    }
    if config.rule_applies("snapshot-version", path) {
        findings.extend(check_snapshot_version(tokens));
    }
    if config.rule_applies("no-panic", path) {
        findings.extend(check_no_panic(tokens));
    }
    if config.rule_applies("float-eq", path) {
        findings.extend(check_float_eq(tokens));
    }
    findings.retain(|&(line, _, _)| !in_test(line));

    // Resolve suppressions: one covers its own line and the next line.
    let mut diagnostics = Vec::new();
    let mut used = vec![false; lexed.suppressions.len()];
    'finding: for (line, rule, message) in findings {
        for (si, s) in lexed.suppressions.iter().enumerate() {
            let covers = s.line == line || s.line + 1 == line;
            if covers && s.well_formed && s.rule.as_deref() == Some(rule) {
                used[si] = true;
                continue 'finding;
            }
        }
        diagnostics.push(Diagnostic {
            file: path.to_string(),
            line,
            rule: rule.to_string(),
            message,
            hint: hint_for(rule),
        });
    }

    // Audit the suppressions themselves (outside test code).
    for (si, s) in lexed.suppressions.iter().enumerate() {
        if in_test(s.line) {
            continue;
        }
        let problem = suppression_problem(s, used[si]);
        if let Some(message) = problem {
            diagnostics.push(Diagnostic {
                file: path.to_string(),
                line: s.line,
                rule: "suppression".to_string(),
                message,
                hint: "write // qdn-lint: allow(<rule>, reason=\"why this site is safe\") \
                       and delete it when the site goes away"
                    .to_string(),
            });
        }
    }

    diagnostics.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    FileLint {
        diagnostics,
        suppressions_used: used.iter().filter(|&&u| u).count() as u32,
    }
}

fn suppression_problem(s: &Suppression, used: bool) -> Option<String> {
    if !s.well_formed {
        return Some(
            "malformed qdn-lint directive (expected allow(<rule>, reason=\"...\"))".into(),
        );
    }
    let rule = s.rule.as_deref().unwrap_or("");
    if !known_rule(rule) {
        return Some(format!("suppression names unknown rule `{rule}`"));
    }
    if s.reason.is_none() {
        return Some(format!(
            "suppression of `{rule}` carries no reason — every suppression must say why"
        ));
    }
    if !used {
        return Some(format!(
            "unused suppression of `{rule}` — the next line no longer trips the rule"
        ));
    }
    None
}

// ---------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == text
}

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

/// Spans (start line, end line) of `#[cfg(test)]` items.
fn cfg_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(is_punct(&tokens[i], "#") && i + 1 < tokens.len() && is_punct(&tokens[i + 1], "[")) {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let (attr_end, is_cfg_test) = scan_attr(tokens, i + 1);
        if !is_cfg_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between cfg(test) and the item.
        let mut j = attr_end + 1;
        while j + 1 < tokens.len() && is_punct(&tokens[j], "#") && is_punct(&tokens[j + 1], "[") {
            let (end, _) = scan_attr(tokens, j + 1);
            j = end + 1;
        }
        // Find the item's body: the first `{` before a `;`.
        let mut body = None;
        while j < tokens.len() {
            if is_punct(&tokens[j], "{") {
                body = Some(j);
                break;
            }
            if is_punct(&tokens[j], ";") {
                break; // out-of-line item (`mod tests;`) — no span here
            }
            j += 1;
        }
        if let Some(open) = body {
            let close = match_brace(tokens, open);
            spans.push((start_line, tokens[close.min(tokens.len() - 1)].line));
            i = close + 1;
        } else {
            i = j + 1;
        }
    }
    spans
}

/// Scans an attribute starting at its `[`; returns (index of closing
/// `]`, whether it is a `cfg(...)` containing the ident `test` — but
/// not under a `not(...)`, so `#[cfg(not(test))]` is not a test item).
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    debug_assert!(is_punct(&tokens[open], "["));
    let mut depth = 0usize;
    let mut is_cfg = false;
    let mut has_test = false;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, "[") {
            depth += 1;
        } else if is_punct(t, "]") {
            depth -= 1;
            if depth == 0 {
                return (i, is_cfg && has_test);
            }
        } else if i == open + 1 && is_ident(t, "cfg") {
            is_cfg = true;
        } else if is_ident(t, "test") {
            let negated =
                i >= 2 && is_ident(&tokens[i - 2], "not") && is_punct(&tokens[i - 1], "(");
            if !negated {
                has_test = true;
            }
        }
        i += 1;
    }
    (tokens.len() - 1, false)
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, "}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len() - 1
}

// ---------------------------------------------------------------------
// D1 — unordered-iter
// ---------------------------------------------------------------------

const BANNED_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "into_iter",
    "drain",
    "retain",
];

/// Detects iteration over `HashMap`/`HashSet`-typed names.
///
/// Heuristic (documented in the README): the pass tracks names declared
/// with an outermost hash type — struct fields and fn params
/// (`name: HashMap<..>`), `let` bindings (by annotation or by
/// `HashMap::new()`-style initializer), and `type` aliases — then flags
/// banned methods and `for .. in` over those names. `let`/`for`
/// rebindings with non-hash types shadow the bare name; field accesses
/// (`x.name.iter()`) resolve against the file's field declarations.
fn check_unordered_iter(tokens: &[Token]) -> Vec<(u32, &'static str, String)> {
    let mut hash_types: BTreeSet<String> = ["HashMap".to_string(), "HashSet".to_string()].into();
    // Pass A: `type X = HashMap<..>` aliases. Repeated until no new
    // alias appears, so alias-of-alias chains resolve regardless of
    // declaration order.
    loop {
        let before = hash_types.len();
        for i in 0..tokens.len() {
            if is_ident(&tokens[i], "type")
                && i + 2 < tokens.len()
                && tokens[i + 1].kind == TokenKind::Ident
                && is_punct(&tokens[i + 2], "=")
                && hash_type_at(tokens, i + 3, &hash_types)
            {
                hash_types.insert(tokens[i + 1].text.clone());
            }
        }
        if hash_types.len() == before {
            break;
        }
    }
    // Pass B: field/param declarations (order-independent).
    let mut fields: BTreeSet<String> = BTreeSet::new();
    for i in 0..tokens.len() {
        if tokens[i].kind == TokenKind::Ident
            && i + 2 < tokens.len()
            && is_punct(&tokens[i + 1], ":")
            && hash_type_at(tokens, i + 2, &hash_types)
        {
            fields.insert(tokens[i].text.clone());
        }
    }

    // Pass C: forward scan with local shadow tracking.
    let mut locals: BTreeSet<String> = BTreeSet::new();
    let mut findings = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        // Declarations add to locals as they are passed.
        if t.kind == TokenKind::Ident
            && i + 2 < tokens.len()
            && is_punct(&tokens[i + 1], ":")
            && hash_type_at(tokens, i + 2, &hash_types)
        {
            locals.insert(t.text.clone());
        }
        if is_ident(t, "let") {
            let mut j = i + 1;
            while j < tokens.len() && is_ident(&tokens[j], "mut") {
                j += 1;
            }
            if j + 1 < tokens.len() && tokens[j].kind == TokenKind::Ident {
                let name = tokens[j].text.clone();
                let hash = if is_punct(&tokens[j + 1], ":") || is_punct(&tokens[j + 1], "=") {
                    hash_type_at(tokens, j + 2, &hash_types)
                } else {
                    false
                };
                if hash {
                    locals.insert(name);
                } else if is_punct(&tokens[j + 1], ":") || is_punct(&tokens[j + 1], "=") {
                    locals.remove(&name);
                }
            }
            i += 1;
            continue;
        }
        if is_ident(t, "for") && !(i + 1 < tokens.len() && is_punct(&tokens[i + 1], "<")) {
            if let Some((pat_end, expr)) = for_in_parts(tokens, i) {
                // New loop bindings shadow same-named hash locals.
                for p in &tokens[i + 1..pat_end] {
                    if p.kind == TokenKind::Ident && p.text != "mut" && p.text != "ref" {
                        locals.remove(&p.text);
                    }
                }
                if let Some(name) = simple_iterated_name(&tokens[expr.clone()]) {
                    let via_field = name.1;
                    let hash = if via_field {
                        fields.contains(name.0)
                    } else {
                        locals.contains(name.0)
                    };
                    if hash {
                        findings.push((
                            t.line,
                            "unordered-iter",
                            format!("`for .. in {}` iterates a hash collection", name.0),
                        ));
                    }
                }
            }
            i += 1;
            continue;
        }
        // `<recv>.banned_method(`
        if is_punct(t, ".")
            && i + 2 < tokens.len()
            && tokens[i + 1].kind == TokenKind::Ident
            && BANNED_ITER_METHODS.contains(&tokens[i + 1].text.as_str())
            && is_punct(&tokens[i + 2], "(")
            && i >= 1
            && tokens[i - 1].kind == TokenKind::Ident
        {
            let name = &tokens[i - 1].text;
            // Bare names resolve against the shadow-tracked locals only,
            // so a `let`/`for` rebinding with a non-hash type clears the
            // name. `self.field` accesses resolve against field decls;
            // fields reached through any other receiver (`snapshot.x`)
            // are out of scope — the whole-file field set cannot tell
            // whose field `x` is.
            let qualified = i >= 2 && is_punct(&tokens[i - 2], ".");
            let via_self = qualified && i >= 3 && is_ident(&tokens[i - 3], "self");
            let hash = if via_self {
                fields.contains(name)
            } else if qualified {
                false
            } else {
                locals.contains(name)
            };
            if hash {
                findings.push((
                    t.line,
                    "unordered-iter",
                    format!(
                        "`{}.{}()` iterates a hash collection in a decision path",
                        name,
                        tokens[i + 1].text
                    ),
                ));
            }
        }
        i += 1;
    }
    findings
}

/// At `i`, does an outermost hash type (or hash-aliased path) start?
/// Skips `&`/`mut` and leading path segments (`std::collections::`).
fn hash_type_at(tokens: &[Token], mut i: usize, hash_types: &BTreeSet<String>) -> bool {
    while i < tokens.len() && (is_punct(&tokens[i], "&") || is_ident(&tokens[i], "mut")) {
        i += 1;
    }
    loop {
        let Some(t) = tokens.get(i) else {
            return false;
        };
        if t.kind != TokenKind::Ident {
            return false;
        }
        if hash_types.contains(t.text.as_str()) {
            return true;
        }
        match tokens.get(i + 1) {
            Some(next) if is_punct(next, "::") => i += 2,
            _ => return false,
        }
    }
}

/// For a `for` at `start`, finds the `in` keyword and the expression
/// range `(in_index+1 .. body_open)`. Returns `None` when there is no
/// `in` before the body (e.g. `impl Trait for Type`).
fn for_in_parts(tokens: &[Token], start: usize) -> Option<(usize, std::ops::Range<usize>)> {
    let mut depth = 0i32;
    let mut j = start + 1;
    let mut in_at = None;
    while j < tokens.len() {
        let t = &tokens[j];
        if is_punct(t, "(") || is_punct(t, "[") {
            depth += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") {
            depth -= 1;
        } else if depth == 0 && is_ident(t, "in") {
            in_at = Some(j);
            break;
        } else if depth == 0 && (is_punct(t, "{") || is_punct(t, ";")) {
            return None;
        }
        j += 1;
    }
    let in_at = in_at?;
    let mut k = in_at + 1;
    let mut d = 0i32;
    while k < tokens.len() {
        let t = &tokens[k];
        if is_punct(t, "(") || is_punct(t, "[") {
            d += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") {
            d -= 1;
        } else if d == 0 && is_punct(t, "{") {
            return Some((in_at, in_at + 1..k));
        }
        k += 1;
    }
    None
}

/// If the iterated expression is a plain `[&[mut]] [self.]name`,
/// returns `(name, via_field)`.
fn simple_iterated_name(expr: &[Token]) -> Option<(&str, bool)> {
    let mut i = 0;
    while i < expr.len() && (is_punct(&expr[i], "&") || is_ident(&expr[i], "mut")) {
        i += 1;
    }
    let rest = &expr[i..];
    match rest {
        [t] if t.kind == TokenKind::Ident => Some((&t.text, false)),
        [s, dot, t] if is_ident(s, "self") && is_punct(dot, ".") && t.kind == TokenKind::Ident => {
            Some((&t.text, true))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------
// D2 — nondet-time
// ---------------------------------------------------------------------

fn check_nondet_time(tokens: &[Token]) -> Vec<(u32, &'static str, String)> {
    let mut findings = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "SystemTime" => findings.push((
                t.line,
                "nondet-time",
                "`SystemTime` leaks wall-clock into a deterministic path".to_string(),
            )),
            "thread_rng" | "from_entropy" => findings.push((
                t.line,
                "nondet-time",
                format!("`{}` draws OS entropy — selection must be seeded", t.text),
            )),
            "Instant"
                if tokens.get(i + 1).is_some_and(|n| is_punct(n, "::"))
                    && tokens.get(i + 2).is_some_and(|n| is_ident(n, "now")) =>
            {
                findings.push((
                    t.line,
                    "nondet-time",
                    "`Instant::now()` reads the wall clock".to_string(),
                ));
            }
            _ => {}
        }
    }
    findings
}

// ---------------------------------------------------------------------
// D3 — raw-spawn
// ---------------------------------------------------------------------

/// Detects ad-hoc threading: `thread::spawn(..)`, `thread::scope(..)`,
/// and `thread::Builder` (any path ending in the `thread` segment, so
/// `std::thread::spawn` trips too). Parallel stages in decision-path
/// crates must go through the shared compat pool, which owns width
/// configuration and the fixed-index-order reduction the bit-identity
/// guarantee hangs on. `thread::JoinHandle`, `thread_local!`, and other
/// `thread::` items are deliberately not flagged — only the three
/// spawn entry points.
fn check_raw_spawn(tokens: &[Token]) -> Vec<(u32, &'static str, String)> {
    let mut findings = Vec::new();
    for i in 0..tokens.len() {
        if !is_ident(&tokens[i], "thread") {
            continue;
        }
        let Some(next) = tokens.get(i + 1) else {
            continue;
        };
        if !is_punct(next, "::") {
            continue;
        }
        let Some(item) = tokens.get(i + 2) else {
            continue;
        };
        if item.kind == TokenKind::Ident
            && matches!(item.text.as_str(), "spawn" | "scope" | "Builder")
        {
            findings.push((
                item.line,
                "raw-spawn",
                format!(
                    "`thread::{}` spawns outside the shared pool — ad-hoc threads \
                     bypass the configured width and deterministic reduction",
                    item.text
                ),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------------
// C1 — serde-default
// ---------------------------------------------------------------------

fn check_serde_default(tokens: &[Token]) -> Vec<(u32, &'static str, String)> {
    let mut findings = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_ident(&tokens[i], "serde") && tokens.get(i + 1).is_some_and(|t| is_punct(t, "(")) {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < tokens.len() {
                if is_punct(&tokens[j], "(") {
                    depth += 1;
                } else if is_punct(&tokens[j], ")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if is_ident(&tokens[j], "default") {
                    findings.push((
                        tokens[i].line,
                        "serde-default",
                        "#[serde(default)] hides missing config fields — the workspace \
                         policy is loud breaks"
                            .to_string(),
                    ));
                    break;
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    findings
}

// ---------------------------------------------------------------------
// C2 — snapshot-version
// ---------------------------------------------------------------------

/// Every `pub struct *Snapshot` deriving `Serialize` must declare a
/// `version` field. Private `*Snapshot` structs are exempt by design:
/// they are only reachable through their (versioned) parent record.
fn check_snapshot_version(tokens: &[Token]) -> Vec<(u32, &'static str, String)> {
    let mut findings = Vec::new();
    let mut has_serialize = false;
    let mut pending_pub = false;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, "#") && tokens.get(i + 1).is_some_and(|n| is_punct(n, "[")) {
            let (end, _) = scan_attr(tokens, i + 1);
            if tokens.get(i + 2).is_some_and(|n| is_ident(n, "derive")) {
                has_serialize |= tokens[i + 2..end].iter().any(|t| is_ident(t, "Serialize"));
            }
            i = end + 1;
            continue;
        }
        if is_ident(t, "pub") {
            pending_pub = true;
            // Skip a visibility qualifier like pub(crate).
            if tokens.get(i + 1).is_some_and(|n| is_punct(n, "(")) {
                let mut d = 0i32;
                let mut j = i + 1;
                while j < tokens.len() {
                    if is_punct(&tokens[j], "(") {
                        d += 1;
                    } else if is_punct(&tokens[j], ")") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = j + 1;
            } else {
                i += 1;
            }
            continue;
        }
        if is_ident(t, "struct") {
            let struct_is_pub = pending_pub;
            let name = tokens.get(i + 1);
            if let Some(name) = name {
                if has_serialize && struct_is_pub && name.text.ends_with("Snapshot") {
                    // Find the body and look for a `version` field.
                    let mut j = i + 2;
                    let mut body_open = None;
                    while j < tokens.len() {
                        if is_punct(&tokens[j], "{") {
                            body_open = Some(j);
                            break;
                        }
                        if is_punct(&tokens[j], ";") || is_punct(&tokens[j], "(") {
                            break; // unit or tuple struct: no named fields
                        }
                        j += 1;
                    }
                    let mut has_version = false;
                    if let Some(open) = body_open {
                        let close = match_brace(tokens, open);
                        let mut depth = 0i32;
                        for k in open..close {
                            if is_punct(&tokens[k], "{") {
                                depth += 1;
                            } else if is_punct(&tokens[k], "}") {
                                depth -= 1;
                            } else if depth == 1
                                && is_ident(&tokens[k], "version")
                                && tokens.get(k + 1).is_some_and(|n| is_punct(n, ":"))
                            {
                                has_version = true;
                                break;
                            }
                        }
                    }
                    if !has_version {
                        findings.push((
                            name.line,
                            "snapshot-version",
                            format!(
                                "serializable snapshot `{}` has no `version` field — \
                                 restore paths cannot reject stale layouts",
                                name.text
                            ),
                        ));
                    }
                }
            }
            has_serialize = false;
            pending_pub = false;
            i += 1;
            continue;
        }
        // Any other non-attribute token between a derive and a struct
        // header (doc comments are not tokens) ends the association.
        has_serialize = false;
        pending_pub = false;
        i += 1;
    }
    findings
}

// ---------------------------------------------------------------------
// R1 — no-panic
// ---------------------------------------------------------------------

fn check_no_panic(tokens: &[Token]) -> Vec<(u32, &'static str, String)> {
    let mut findings = Vec::new();
    for i in 0..tokens.len() {
        if is_punct(&tokens[i], ".")
            && tokens
                .get(i + 1)
                .is_some_and(|t| is_ident(t, "unwrap") || is_ident(t, "expect"))
            && tokens.get(i + 2).is_some_and(|t| is_punct(t, "("))
        {
            findings.push((
                tokens[i + 1].line,
                "no-panic",
                format!(
                    "`.{}()` can panic a serving thread on hostile input",
                    tokens[i + 1].text
                ),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------------
// N1 — float-eq
// ---------------------------------------------------------------------

fn check_float_eq(tokens: &[Token]) -> Vec<(u32, &'static str, String)> {
    let mut findings = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(is_punct(t, "==") || is_punct(t, "!=")) {
            continue;
        }
        let left_float = i >= 1 && tokens[i - 1].kind == TokenKind::Float;
        let right_float = match tokens.get(i + 1) {
            Some(n) if n.kind == TokenKind::Float => true,
            Some(n) if is_punct(n, "-") => tokens
                .get(i + 2)
                .is_some_and(|m| m.kind == TokenKind::Float),
            _ => false,
        };
        if left_float || right_float {
            findings.push((
                t.line,
                "float-eq",
                format!(
                    "bare float `{}` comparison — exact equality on f64 is \
                     order/rounding-sensitive",
                    t.text
                ),
            ));
        }
    }
    findings
}
