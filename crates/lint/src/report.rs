//! Diagnostics and the machine-readable report.

use serde::{Deserialize, Serialize};

/// Version tag of [`LintReport`]; bump on layout changes.
pub const LINT_REPORT_VERSION: u32 = 1;

/// One finding. Sorted (file, line, rule) before reporting, so equal
/// workspaces produce byte-identical reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (`unordered-iter`, `nondet-time`, ...).
    pub rule: String,
    /// What was found.
    pub message: String,
    /// How to fix or suppress it.
    pub hint: String,
}

/// The machine-readable report `qdn-lint --report` writes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// Layout version ([`LINT_REPORT_VERSION`]).
    pub version: u32,
    /// Files scanned (after skips and exempt directories).
    pub files_scanned: u32,
    /// Suppression comments honored (matched a finding).
    pub suppressions_used: u32,
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The human rendering, one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    hint: {}\n",
                d.file, d.line, d.rule, d.message, d.hint
            ));
        }
        out.push_str(&format!(
            "qdn-lint: {} error(s), {} file(s) scanned, {} suppression(s) used\n",
            self.diagnostics.len(),
            self.files_scanned,
            self.suppressions_used
        ));
        out
    }
}
