//! Deterministic workspace walker.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;

/// Collects every `.rs` file under `root`, workspace-relative and
/// sorted, honoring the config's skip prefixes and exempt directory
/// names. `target` and dot-directories are always skipped.
pub fn rust_files(root: &Path, config: &Config) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    descend(root, root, config, &mut files)?;
    files.sort();
    Ok(files)
}

fn descend(
    root: &Path,
    dir: &Path,
    config: &Config,
    files: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel = rel_str(root, &path);
        if path.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            if config.exempt_dirs.iter().any(|d| d == name) {
                continue;
            }
            if config
                .skip
                .iter()
                .any(|s| rel == *s || rel.starts_with(&format!("{s}/")))
            {
                continue;
            }
            descend(root, &path, config, files)?;
        } else if name.ends_with(".rs") && !config.skip.iter().any(|s| rel.starts_with(s.as_str()))
        {
            files.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
pub fn rel_str(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
