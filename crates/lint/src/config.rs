//! `lint.toml` — rule scoping and allowlists.
//!
//! The parser accepts the minimal TOML subset the schema needs (same
//! vendored-shim culture as the rest of the workspace — no crates.io):
//! `[section]` / `[section.sub]` headers, `key = "string"`,
//! `key = true|false`, and `key = ["array", "of", "strings"]` (single
//! line). `#` comments. Anything else is a loud parse error — a config
//! the checker half-understands must not silently weaken the gate.
//!
//! Schema (see `crates/lint/README.md` for the full story):
//!
//! ```toml
//! [workspace]
//! skip = ["crates/compat", "target"]          # never scanned
//! exempt_dirs = ["tests", "benches"]          # path segments exempt
//!
//! [rule.unordered-iter]
//! crates = ["core", "solve"]                  # scope (omit = all)
//! allow = ["crates/core/src/generated.rs"]    # path-prefix allowlist
//! enabled = true                              # default
//! ```

use std::collections::BTreeMap;

/// Per-rule scoping from `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct RuleScope {
    /// Crate names (the directory under `crates/`, or `"qdn"` for the
    /// root facade crate) the rule applies to. `None` = every crate.
    pub crates: Option<Vec<String>>,
    /// Path prefixes (workspace-relative, `/`-separated) where the rule
    /// is allowed without suppression comments.
    pub allow: Vec<String>,
    /// Whether the rule runs at all.
    pub enabled: bool,
}

impl RuleScope {
    fn enabled_everywhere() -> RuleScope {
        RuleScope {
            crates: None,
            allow: Vec::new(),
            enabled: true,
        }
    }
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace-relative path prefixes never scanned.
    pub skip: Vec<String>,
    /// Directory names whose subtrees are exempt from every rule
    /// (tests, benches, examples, fixtures by default).
    pub exempt_dirs: Vec<String>,
    /// Rule name → scope. Rules absent from the map run everywhere.
    pub rules: BTreeMap<String, RuleScope>,
}

impl Default for Config {
    /// Everything enabled everywhere; only the universal exemptions.
    /// This is what fixture tests use — the workspace run parses
    /// `lint.toml` instead.
    fn default() -> Config {
        Config {
            skip: Vec::new(),
            exempt_dirs: vec![
                "tests".into(),
                "benches".into(),
                "examples".into(),
                "fixtures".into(),
            ],
            rules: BTreeMap::new(),
        }
    }
}

impl Config {
    /// Parses the `lint.toml` text. Errors carry the offending line.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section: Vec<String> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = header.split('.').map(|s| s.trim().to_string()).collect();
                if section.iter().any(String::is_empty) {
                    return Err(format!("lint.toml:{lineno}: empty section name"));
                }
                if section[0] == "rule" && section.len() == 2 {
                    config
                        .rules
                        .entry(section[1].clone())
                        .or_insert_with(RuleScope::enabled_everywhere);
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = value`"));
            };
            let key = key.trim();
            let value =
                parse_value(value.trim()).map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
            match section.first().map(String::as_str) {
                Some("workspace") => match (key, value) {
                    ("skip", Value::Array(v)) => config.skip = v,
                    ("exempt_dirs", Value::Array(v)) => config.exempt_dirs = v,
                    _ => {
                        return Err(format!(
                            "lint.toml:{lineno}: unknown [workspace] key `{key}` (or wrong type)"
                        ));
                    }
                },
                Some("rule") if section.len() == 2 => {
                    let scope = config
                        .rules
                        .entry(section[1].clone())
                        .or_insert_with(RuleScope::enabled_everywhere);
                    match (key, value) {
                        ("crates", Value::Array(v)) => scope.crates = Some(v),
                        ("allow", Value::Array(v)) => scope.allow = v,
                        ("enabled", Value::Bool(b)) => scope.enabled = b,
                        _ => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown rule key `{key}` (or wrong type)"
                            ));
                        }
                    }
                }
                _ => {
                    return Err(format!(
                        "lint.toml:{lineno}: key outside a [workspace] or [rule.*] section"
                    ));
                }
            }
        }
        Ok(config)
    }

    /// The crate a workspace-relative path belongs to: the directory
    /// under `crates/`, or `qdn` for the root facade (`src/...`).
    pub fn crate_of(path: &str) -> &str {
        if let Some(rest) = path.strip_prefix("crates/") {
            rest.split('/').next().unwrap_or("")
        } else {
            "qdn"
        }
    }

    /// Whether `rule` applies to `path` (workspace-relative). Exempt
    /// directories are handled by the walker; this resolves crate scope
    /// and the per-rule allowlist.
    pub fn rule_applies(&self, rule: &str, path: &str) -> bool {
        let Some(scope) = self.rules.get(rule) else {
            return true; // absent = enabled everywhere
        };
        if !scope.enabled {
            return false;
        }
        if let Some(crates) = &scope.crates {
            if !crates.iter().any(|c| c == Self::crate_of(path)) {
                return false;
            }
        }
        !scope.allow.iter().any(|prefix| path.starts_with(prefix))
    }

    /// Whether any path segment is an exempt directory name.
    pub fn path_exempt(&self, path: &str) -> bool {
        path.split('/')
            .any(|seg| self.exempt_dirs.iter().any(|d| d == seg))
    }
}

enum Value {
    Bool(bool),
    Array(Vec<String>),
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<Value, String> {
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let mut items = Vec::new();
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Value::Array(items));
        }
        for item in inner.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_string(item)?);
        }
        return Ok(Value::Array(items));
    }
    Err(format!(
        "unsupported value `{text}` (expected true/false or [\"array\"])"
    ))
}

fn parse_string(text: &str) -> Result<String, String> {
    text.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{text}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scopes_and_allowlists() {
        let toml = r#"
            # comment
            [workspace]
            skip = ["crates/compat", "target"]

            [rule.unordered-iter]
            crates = ["core", "solve"]
            allow = ["crates/core/src/generated.rs"]

            [rule.float-eq]
            crates = ["solve"]

            [rule.nondet-time] # enabled everywhere, one allow
            allow = ["crates/serve/src/loadgen.rs"]
        "#;
        let c = Config::parse(toml).unwrap();
        assert_eq!(c.skip, ["crates/compat", "target"]);
        assert!(c.rule_applies("unordered-iter", "crates/core/src/engine.rs"));
        assert!(!c.rule_applies("unordered-iter", "crates/sim/src/engine.rs"));
        assert!(!c.rule_applies("unordered-iter", "crates/core/src/generated.rs"));
        assert!(!c.rule_applies("float-eq", "crates/core/src/engine.rs"));
        assert!(c.rule_applies("nondet-time", "crates/core/src/engine.rs"));
        assert!(!c.rule_applies("nondet-time", "crates/serve/src/loadgen.rs"));
        // Absent rule: everywhere.
        assert!(c.rule_applies("serde-default", "crates/sim/src/engine.rs"));
    }

    #[test]
    fn disabled_rule_applies_nowhere() {
        let c = Config::parse("[rule.no-panic]\nenabled = false\n").unwrap();
        assert!(!c.rule_applies("no-panic", "crates/serve/src/shard.rs"));
    }

    #[test]
    fn crate_of_resolves_root_and_members() {
        assert_eq!(Config::crate_of("crates/core/src/engine.rs"), "core");
        assert_eq!(Config::crate_of("src/bin/qdn_cli.rs"), "qdn");
    }

    #[test]
    fn exempt_dirs_cover_tests_and_fixtures() {
        let c = Config::default();
        assert!(c.path_exempt("crates/core/tests/proptests.rs"));
        assert!(c.path_exempt("crates/lint/tests/fixtures/d1/pos.rs"));
        assert!(!c.path_exempt("crates/core/src/engine.rs"));
    }

    #[test]
    fn unknown_keys_and_bad_values_fail_loudly() {
        assert!(Config::parse("[workspace]\nskip = true\n").is_err());
        assert!(Config::parse("orphan = \"x\"\n").is_err());
        assert!(Config::parse("[rule.x]\ncrates = [unquoted]\n").is_err());
    }
}
