//! `qdn-lint` — the workspace invariant checker.
//!
//! Every speedup in this workspace is held by bit-identity proptests,
//! but the *invariants that make bit-identity possible* — no unordered
//! iteration in decision paths, no wall-clock or OS entropy in
//! selection, versioned snapshots, loud-break configs — used to live
//! only in ROADMAP prose. This crate makes them machine-enforced: a
//! hand-rolled lexer/light parser (no syn, no crates.io) walks the
//! workspace and reports rule violations as errors.
//!
//! See `crates/lint/README.md` for the rule catalog, the suppression
//! syntax, the `lint.toml` schema, and how to add a rule.
#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::fs;
use std::path::Path;

pub use config::Config;
pub use report::{Diagnostic, LintReport, LINT_REPORT_VERSION};

/// Lints every `.rs` file under `root` against `config`.
pub fn lint_workspace(root: &Path, config: &Config) -> Result<LintReport, String> {
    let files = walk::rust_files(root, config)?;
    let mut diagnostics = Vec::new();
    let mut suppressions_used = 0u32;
    let files_scanned = files.len() as u32;
    for path in files {
        let source =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = walk::rel_str(root, &path);
        let lint = rules::lint_source(&rel, &source, config);
        diagnostics.extend(lint.diagnostics);
        suppressions_used += lint.suppressions_used;
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(LintReport {
        version: LINT_REPORT_VERSION,
        files_scanned,
        suppressions_used,
        diagnostics,
    })
}

/// Loads `lint.toml` from `root` and lints the workspace with it.
pub fn lint_workspace_with_manifest(root: &Path) -> Result<LintReport, String> {
    let manifest = root.join("lint.toml");
    let text = fs::read_to_string(&manifest).map_err(|e| {
        format!(
            "read {}: {e} (qdn-lint requires lint.toml)",
            manifest.display()
        )
    })?;
    let config = Config::parse(&text)?;
    lint_workspace(root, &config)
}
