//! A hand-rolled Rust lexer — the same vendored-shim culture as the
//! serde-derive proc macro: no `syn`, no crates.io.
//!
//! The lexer produces a flat token stream (identifiers, lifetimes,
//! numbers, strings, chars, punctuation) with 1-based line numbers, and
//! separately collects `// qdn-lint: allow(...)` suppression comments.
//! Comments and string/char literal *contents* never reach the rule
//! passes, so a banned pattern quoted in a doc comment or an error
//! message cannot trip a rule.
//!
//! This is a lexer plus light pattern matching, not a parser: the rule
//! passes in [`crate::rules`] work on token windows. The known
//! heuristics (and their limits) are documented in the crate README.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`let`, `for`, `HashMap`, ...).
    Ident,
    /// A lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// An integer literal.
    Int,
    /// A floating-point literal (`0.0`, `1e-12`, `2.5f64`).
    Float,
    /// A string or byte-string literal (contents dropped).
    Str,
    /// A character or byte literal (contents dropped).
    Char,
    /// Punctuation; multi-character operators that matter to the rule
    /// passes (`::`, `==`, `!=`, `->`, `=>`, ...) arrive merged.
    Punct,
}

/// One token with its source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// The token text. For `Str`/`Char` this is a placeholder — literal
    /// contents are deliberately not retained.
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

/// One `// qdn-lint: allow(rule, reason="...")` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the comment sits on. The suppression covers this
    /// line and the next source line.
    pub line: u32,
    /// The rule name inside `allow(...)`, if the comment parsed.
    pub rule: Option<String>,
    /// The `reason="..."` argument, if present and non-empty.
    pub reason: Option<String>,
    /// Whether the directive parsed as `allow(<rule>, ...)` at all.
    pub well_formed: bool,
}

/// The output of lexing one file.
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub suppressions: Vec<Suppression>,
}

/// Multi-character operators merged into single tokens, longest first.
const MERGED_OPS: &[&str] = &[
    "..=", "::", "==", "!=", "<=", ">=", "->", "=>", "&&", "||", "..", "+=", "-=", "*=", "/=",
    "%=", "^=",
];

/// Lexes `source`, collecting tokens and suppression comments.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut suppressions = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let comment = &source[start..i];
                if let Some(s) = parse_suppression(comment, line) {
                    suppressions.push(s);
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment, nesting respected.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let (consumed, newlines) = skip_string_like(bytes, i);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i += consumed;
            }
            b'"' => {
                let (consumed, newlines) = skip_plain_string(bytes, i);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i += consumed;
            }
            b'\'' => {
                let (consumed, kind, text) = lex_quote(bytes, i, source);
                tokens.push(Token { kind, text, line });
                i += consumed;
            }
            _ if c.is_ascii_digit() => {
                let (consumed, is_float) = lex_number(bytes, i);
                tokens.push(Token {
                    kind: if is_float {
                        TokenKind::Float
                    } else {
                        TokenKind::Int
                    },
                    text: source[i..i + consumed].to_string(),
                    line,
                });
                i += consumed;
            }
            _ if is_ident_start(c) => {
                let start = i;
                i += 1;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                // `b'x'` byte char, handled when the quote follows.
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                let rest = &source[i..];
                let mut matched = None;
                for op in MERGED_OPS {
                    if rest.starts_with(op) {
                        matched = Some(*op);
                        break;
                    }
                }
                if let Some(op) = matched {
                    tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: op.to_string(),
                        line,
                    });
                    i += op.len();
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: (c as char).to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }

    Lexed {
        tokens,
        suppressions,
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Does `r"`, `r#"`, `b"`, `br"`, `br#"`, or `rb...` start here? (Raw
/// identifiers like `r#type` do not — they are followed by an ident
/// character, not a quote.)
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (r, b, br, rb).
    let mut letters = 0;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && letters < 2 {
        j += 1;
        letters += 1;
    }
    if letters == 0 {
        return false;
    }
    // Byte char b'x'.
    if bytes[i] == b'b' && j < bytes.len() && bytes[j] == b'\'' {
        return true;
    }
    let mut k = j;
    while k < bytes.len() && bytes[k] == b'#' {
        k += 1;
    }
    k < bytes.len() && bytes[k] == b'"' && (k > j || bytes[j] == b'"')
}

/// Skips a raw/byte string (or byte char) starting at `i`; returns
/// (bytes consumed, newlines inside).
fn skip_string_like(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'\'' {
        // Byte char: b'x' or b'\n'.
        let (consumed, _, _) = lex_quote(bytes, j, "");
        return (j - i + consumed, 0);
    }
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < bytes.len() && bytes[j] == b'"');
    j += 1; // opening quote
    let raw = bytes[i..j].contains(&b'r');
    let mut newlines = 0u32;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
            j += 1;
        } else if !raw && bytes[j] == b'\\' {
            j += 2;
        } else if bytes[j] == b'"' {
            // For raw strings the closer needs `hashes` trailing #s.
            let mut k = j + 1;
            let mut seen = 0usize;
            while raw && seen < hashes && k < bytes.len() && bytes[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if !raw || seen == hashes {
                return (k - i, newlines);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (j - i, newlines)
}

/// Skips a plain `"..."` string starting at the opening quote.
fn skip_plain_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut newlines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'"' => return (j + 1 - i, newlines),
            _ => j += 1,
        }
    }
    (j - i, newlines)
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) at a `'`.
fn lex_quote(bytes: &[u8], i: usize, source: &str) -> (usize, TokenKind, String) {
    debug_assert_eq!(bytes[i], b'\'');
    if i + 1 >= bytes.len() {
        return (1, TokenKind::Punct, "'".into());
    }
    if bytes[i + 1] == b'\\' {
        // Escaped char literal: scan to the closing quote.
        let mut j = i + 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        return (j + 1 - i, TokenKind::Char, String::new());
    }
    if i + 2 < bytes.len() && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\'' {
        return (3, TokenKind::Char, String::new());
    }
    // Lifetime: consume identifier characters.
    let mut j = i + 1;
    while j < bytes.len() && is_ident_continue(bytes[j]) {
        j += 1;
    }
    let text = if source.is_empty() {
        String::new()
    } else {
        source[i..j].to_string()
    };
    (j - i, TokenKind::Lifetime, text)
}

/// Lexes a number; returns (bytes consumed, is_float).
fn lex_number(bytes: &[u8], i: usize) -> (usize, bool) {
    let mut j = i;
    let mut is_float = false;
    if bytes[j] == b'0' && j + 1 < bytes.len() && matches!(bytes[j + 1], b'x' | b'o' | b'b') {
        j += 2;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        return (j - i, false);
    }
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
        j += 1;
    }
    // A fractional part: `.` followed by a digit (or end of number —
    // `1.` — but not `1..4` or `1.max(2)`).
    if j < bytes.len() && bytes[j] == b'.' {
        match bytes.get(j + 1).copied() {
            Some(n) if n.is_ascii_digit() => {
                is_float = true;
                j += 1;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                    j += 1;
                }
            }
            Some(n) if n == b'.' || is_ident_start(n) => {
                // Range (`1..4`) or method call (`1.max(2)`): the dot
                // is not part of this number.
            }
            _ => {
                // Trailing dot: `1.` is a float.
                is_float = true;
                j += 1;
            }
        }
    }
    // Exponent.
    if j < bytes.len() && matches!(bytes[j], b'e' | b'E') {
        let mut k = j + 1;
        if k < bytes.len() && matches!(bytes[k], b'+' | b'-') {
            k += 1;
        }
        if k < bytes.len() && bytes[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (f64 makes it a float; u32 etc. keep it an int).
    if j < bytes.len() && is_ident_start(bytes[j]) {
        let start = j;
        while j < bytes.len() && is_ident_continue(bytes[j]) {
            j += 1;
        }
        let suffix = &bytes[start..j];
        if suffix == b"f32" || suffix == b"f64" {
            is_float = true;
        }
    }
    (j - i, is_float)
}

/// Parses a `// qdn-lint: allow(rule, reason="...")` comment. Returns
/// `None` for comments without the marker. Doc comments (`///`, `//!`)
/// are ignored — suppressions must be plain comments.
fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    let body = comment.strip_prefix("//")?;
    if body.starts_with('/') || body.starts_with('!') {
        return None; // doc comment
    }
    let marker = "qdn-lint:";
    let at = body.find(marker)?;
    let rest = body[at + marker.len()..].trim();
    let malformed = Suppression {
        line,
        rule: None,
        reason: None,
        well_formed: false,
    };
    let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    else {
        return Some(malformed);
    };
    let (rule_part, reason_part) = match args.split_once(',') {
        Some((r, rest)) => (r.trim(), Some(rest.trim())),
        None => (args.trim(), None),
    };
    if rule_part.is_empty() {
        return Some(malformed);
    }
    let reason = reason_part.and_then(|p| {
        let val = p.strip_prefix("reason")?.trim_start().strip_prefix('=')?;
        let val = val.trim().strip_prefix('"')?.strip_suffix('"')?;
        if val.trim().is_empty() {
            None
        } else {
            Some(val.to_string())
        }
    });
    Some(Suppression {
        line,
        rule: Some(rule_part.to_string()),
        reason,
        well_formed: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_contents() {
        let src = r##"
            // HashMap iteration in a comment: map.iter()
            /* block HashMap */
            let s = "HashMap::iter()";
            let r = r#"thread_rng"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn char_vs_lifetime() {
        let lexed = lex("let c = 'a'; fn f<'a>(x: &'a str) {}");
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(chars, 1);
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn float_vs_int_literals() {
        let lexed = lex("a == 0.0; b != 1e-12; c == 3; d == 0x10; e == 2.5f64; f == 1.max(2)");
        let floats: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Float)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(floats, ["0.0", "1e-12", "2.5f64"]);
        // `1.max(2)` lexes as int 1, dot, ident max.
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Int && t.text == "1"));
    }

    #[test]
    fn merged_operators() {
        let lexed = lex("a == b; c != d; p::q; x -> y; m => n");
        let ops: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text.len() > 1)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ops, ["==", "!=", "::", "->", "=>"]);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn suppression_parses_rule_and_reason() {
        let src = "// qdn-lint: allow(unordered-iter, reason=\"sorted below\")\nx();";
        let lexed = lex(src);
        assert_eq!(lexed.suppressions.len(), 1);
        let s = &lexed.suppressions[0];
        assert!(s.well_formed);
        assert_eq!(s.rule.as_deref(), Some("unordered-iter"));
        assert_eq!(s.reason.as_deref(), Some("sorted below"));
    }

    #[test]
    fn suppression_without_reason_is_flagged_reasonless() {
        let src = "// qdn-lint: allow(float-eq)\nx();";
        let s = &lex(src).suppressions[0];
        assert!(s.well_formed);
        assert_eq!(s.rule.as_deref(), Some("float-eq"));
        assert!(s.reason.is_none());
    }

    #[test]
    fn malformed_suppression_is_marked() {
        let s = &lex("// qdn-lint: alow(typo)\n").suppressions[0];
        assert!(!s.well_formed);
        // Doc comments never parse as suppressions.
        assert!(lex("/// qdn-lint: allow(float-eq)\n")
            .suppressions
            .is_empty());
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let ids = idents("let r#type = 1; let rb = 2;");
        assert!(ids.contains(&"type".to_string()) || ids.contains(&"r".to_string()));
        assert!(ids.contains(&"rb".to_string()));
    }
}
