//! The workspace must lint clean against its own `lint.toml` — the
//! invariants the linter enforces hold in the code that ships it, and
//! every suppression in the tree carries a written reason (reason-less
//! or unused suppressions are themselves errors, so a clean report
//! certifies the suppression inventory too).

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::PathBuf::from(
        std::env::var_os("CARGO_WORKSPACE_DIR").expect("CARGO_WORKSPACE_DIR set by .cargo/config"),
    );
    let report = qdn_lint::lint_workspace_with_manifest(&root).expect("lint run");
    assert!(report.files_scanned > 50, "walker found the workspace");
    assert!(
        report.is_clean(),
        "workspace has lint errors:\n{}",
        report.render_human()
    );
    assert!(
        report.suppressions_used > 0,
        "the tree carries reasoned suppressions; zero used means the \
         suppression scanner broke"
    );
}

#[test]
fn report_is_versioned_and_serializable() {
    let root = std::path::PathBuf::from(
        std::env::var_os("CARGO_WORKSPACE_DIR").expect("CARGO_WORKSPACE_DIR set by .cargo/config"),
    );
    let report = qdn_lint::lint_workspace_with_manifest(&root).expect("lint run");
    let wire = serde_json::to_string(&report).expect("encode");
    let back: qdn_lint::LintReport = serde_json::from_str(&wire).expect("decode");
    assert_eq!(back, report);
    assert_eq!(back.version, qdn_lint::LINT_REPORT_VERSION);
}
