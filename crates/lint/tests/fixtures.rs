//! Fixture corpus: at least one true positive and one true negative
//! per rule, plus the suppression round trip. Fixtures are linted with
//! the default config (every rule enabled everywhere), so the tests pin
//! the detectors themselves, independent of `lint.toml` scoping.

use qdn_lint::rules::lint_source;
use qdn_lint::Config;

fn lint_fixture(name: &str) -> qdn_lint::rules::FileLint {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    lint_source(name, &source, &Config::default())
}

/// Every diagnostic in `name` is for `rule`, and there are `at_least`
/// of them.
fn assert_positive(name: &str, rule: &str, at_least: usize) {
    let lint = lint_fixture(name);
    assert!(
        lint.diagnostics.len() >= at_least,
        "{name}: expected at least {at_least} findings, got {:#?}",
        lint.diagnostics
    );
    for d in &lint.diagnostics {
        assert_eq!(d.rule, rule, "{name}: unexpected finding {d:#?}");
    }
}

fn assert_clean(name: &str) {
    let lint = lint_fixture(name);
    assert!(
        lint.diagnostics.is_empty(),
        "{name}: expected clean, got {:#?}",
        lint.diagnostics
    );
}

#[test]
fn unordered_iter_positives() {
    // Field iter, field for-loop, drain, alias-typed local, local for.
    assert_positive("d1_pos.rs", "unordered-iter", 5);
}

#[test]
fn unordered_iter_negatives() {
    assert_clean("d1_neg.rs");
}

#[test]
fn nondet_time_positives() {
    // Instant::now, SystemTime (import + call), thread_rng, from_entropy.
    assert_positive("d2_pos.rs", "nondet-time", 4);
}

#[test]
fn nondet_time_negatives() {
    assert_clean("d2_neg.rs");
}

#[test]
fn raw_spawn_positives() {
    // thread::spawn, std::thread::scope, thread::Builder.
    assert_positive("d3_pos.rs", "raw-spawn", 3);
}

#[test]
fn raw_spawn_negatives() {
    // Pool submission, JoinHandle/yield/sleep/thread_local, quoted
    // mentions, and a suppressed long-lived-owner Builder site.
    assert_clean("d3_neg.rs");
}

#[test]
fn serde_default_positives() {
    // Bare `default` and `default = "path"`.
    assert_positive("c1_pos.rs", "serde-default", 2);
}

#[test]
fn serde_default_negatives() {
    assert_clean("c1_neg.rs");
}

#[test]
fn snapshot_version_positives() {
    let lint = lint_fixture("c2_pos.rs");
    assert_eq!(lint.diagnostics.len(), 1, "{:#?}", lint.diagnostics);
    assert_eq!(lint.diagnostics[0].rule, "snapshot-version");
    assert!(
        lint.diagnostics[0].message.contains("EngineSnapshot"),
        "{:#?}",
        lint.diagnostics
    );
}

#[test]
fn snapshot_version_negatives() {
    assert_clean("c2_neg.rs");
}

#[test]
fn no_panic_positives() {
    assert_positive("r1_pos.rs", "no-panic", 2);
}

#[test]
fn no_panic_negatives() {
    assert_clean("r1_neg.rs");
}

#[test]
fn float_eq_positives() {
    assert_positive("n1_pos.rs", "float-eq", 3);
}

#[test]
fn float_eq_negatives() {
    assert_clean("n1_neg.rs");
}

#[test]
fn suppression_round_trip() {
    // A well-formed suppression silences the finding, counts as used,
    // and draws no suppression-audit error.
    let lint = lint_fixture("suppress_ok.rs");
    assert!(
        lint.diagnostics.is_empty(),
        "suppressed file should lint clean: {:#?}",
        lint.diagnostics
    );
    assert_eq!(lint.suppressions_used, 1);

    // Removing the suppression must bring the finding back — the round
    // trip, exercised by re-linting with the directive stripped.
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/suppress_ok.rs");
    let source = std::fs::read_to_string(path).unwrap();
    let stripped: String = source
        .lines()
        .filter(|l| !l.contains("qdn-lint:"))
        .collect::<Vec<_>>()
        .join("\n");
    let relint = lint_source("suppress_ok.rs", &stripped, &Config::default());
    assert_eq!(relint.diagnostics.len(), 1, "{:#?}", relint.diagnostics);
    assert_eq!(relint.diagnostics[0].rule, "unordered-iter");
    assert_eq!(relint.suppressions_used, 0);
}

#[test]
fn suppression_audit_errors() {
    // Unused, reason-less, unknown-rule, and malformed directives are
    // each an error of rule `suppression`.
    let lint = lint_fixture("suppress_bad.rs");
    assert_eq!(lint.diagnostics.len(), 4, "{:#?}", lint.diagnostics);
    for d in &lint.diagnostics {
        assert_eq!(d.rule, "suppression", "{d:#?}");
    }
    let all = format!("{:?}", lint.diagnostics);
    for needle in ["unused", "no reason", "unknown rule", "malformed"] {
        assert!(all.contains(needle), "missing `{needle}` in {all}");
    }
}
