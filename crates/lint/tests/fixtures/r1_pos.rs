// True positives for no-panic (R1).
fn read_frame(payload: Option<Vec<u8>>) -> Vec<u8> {
    payload.unwrap()
}

fn decode(text: &str) -> u32 {
    text.parse().expect("peer sent a number")
}
