// A well-formed suppression silences exactly one finding: the file
// lints clean and the suppression counts as used.
use std::collections::HashMap;

struct State {
    table: HashMap<u32, f64>,
}

impl State {
    fn sum(&self) -> f64 {
        let mut entries: Vec<f64> = self
            .table
            // qdn-lint: allow(unordered-iter, reason="summed after sorting; order cannot leak")
            .iter()
            .map(|(_, v)| *v)
            .collect();
        entries.sort_unstable_by(f64::total_cmp);
        entries.iter().sum()
    }
}
