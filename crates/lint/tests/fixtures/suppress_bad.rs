// Every way a suppression can go wrong, each an error in itself.
use std::collections::HashMap;

struct State {
    table: HashMap<u32, f64>,
}

impl State {
    // qdn-lint: allow(unordered-iter, reason="nothing below trips the rule")
    fn unused_suppression(&self) -> usize {
        self.table.len()
    }

    fn missing_reason(&self) -> f64 {
        // qdn-lint: allow(unordered-iter)
        self.table.values().sum()
    }

    // qdn-lint: allow(no-such-rule, reason="the rule name is wrong")
    fn unknown_rule(&self) {}

    // qdn-lint: allow unordered-iter
    fn malformed(&self) {}
}
