// True positive for snapshot-version (C2): a public serializable
// snapshot with no version field.
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    pub entries: Vec<u32>,
    pub spent: u64,
}
