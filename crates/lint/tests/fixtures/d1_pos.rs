// True positives for unordered-iter (D1).
use std::collections::{HashMap, HashSet};

type Memo = HashMap<u32, f64>;

struct State {
    table: HashMap<u32, f64>,
    seen: HashSet<u32>,
}

impl State {
    fn field_iter(&self) -> f64 {
        self.table.iter().map(|(_, v)| v).sum()
    }

    fn field_for(&self) -> u32 {
        let mut acc = 0;
        for k in self.seen.iter() {
            acc ^= k;
        }
        acc
    }

    fn drain_all(&mut self) {
        self.table.drain();
    }
}

fn local_iter() -> f64 {
    let memo: Memo = Memo::new();
    memo.values().sum()
}

fn local_for() {
    let set: HashSet<u32> = HashSet::new();
    for _x in &set {}
}
