// True positives for float-eq (N1).
fn converged(gap: f64) -> bool {
    gap == 0.0
}

fn not_one(x: f64) -> bool {
    x != 1.0
}

fn negative(x: f64) -> bool {
    x == -1.5
}
