// True negatives for nondet-time (D2): everything derives from an
// explicit seed, and quoted or commented mentions don't count.
use rand::SeedableRng;

// A comment mentioning Instant::now() and thread_rng is not a finding.

fn seeded(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn quoted() -> &'static str {
    "Instant::now() and SystemTime and thread_rng and from_entropy"
}

fn instant_arithmetic(earlier: std::time::Instant, later: std::time::Instant) -> f64 {
    // Consuming Instants handed in by measurement code is fine; only
    // *reading the clock* is banned.
    later.duration_since(earlier).as_secs_f64()
}
