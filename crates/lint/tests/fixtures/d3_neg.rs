// True negatives for raw-spawn (D3): pool submission, non-spawning
// `thread::` items, quoted/commented mentions, and lookalike paths.
use std::thread;

// A comment mentioning thread::spawn or thread::Builder is not a finding.

fn on_the_pool(n: usize) -> Vec<u64> {
    threadpool::current().map_indexed(n, |i| i as u64 * 2)
}

fn join(handle: thread::JoinHandle<u64>) -> u64 {
    handle.join().unwrap_or(0)
}

fn park_briefly() {
    thread::yield_now();
    thread::sleep(std::time::Duration::from_millis(1));
}

fn quoted() -> &'static str {
    "thread::spawn and thread::scope and thread::Builder"
}

std::thread_local! {
    static SCRATCH: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn long_lived_owner() -> std::io::Result<thread::JoinHandle<()>> {
    // qdn-lint: allow(raw-spawn, reason="long-lived state-owner thread, not decision-path parallelism")
    thread::Builder::new().name("owner".into()).spawn(|| {})
}
