// True negatives for snapshot-version (C2): a versioned public
// snapshot, a private sub-record (reachable only through a versioned
// parent), a non-Serialize type, and a non-Snapshot name.
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    pub version: u32,
    shards: Vec<ShardSnapshot>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShardSnapshot {
    spent: u64,
}

#[derive(Debug, Clone)]
pub struct ScratchSnapshot {
    pub arena: Vec<u8>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    pub v: f64,
}
