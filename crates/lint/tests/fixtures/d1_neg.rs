// True negatives for unordered-iter (D1): lookups are free, ordered
// collections are free, shadowed rebindings are free, and field names
// reached through a non-self receiver are out of scope.
use std::collections::{BTreeMap, HashMap};

struct Snapshot {
    entries: Vec<u32>,
}

struct State {
    table: HashMap<u32, f64>,
    ordered: BTreeMap<u32, f64>,
    entries: HashMap<u32, f64>,
}

impl State {
    fn lookups(&self) -> Option<f64> {
        let _ = self.table.contains_key(&1);
        let _ = self.table.len();
        self.table.get(&7).copied()
    }

    fn ordered_iter(&self) -> f64 {
        self.ordered.iter().map(|(_, v)| v).sum()
    }

    fn restore(snapshot: &Snapshot) -> u32 {
        // `entries` is a hash field of State, but the receiver here is
        // the snapshot struct, whose `entries` is a Vec.
        snapshot.entries.iter().sum()
    }
}

fn shadowed() -> u32 {
    let entries: Vec<u32> = vec![1, 2, 3];
    entries.iter().sum()
}
