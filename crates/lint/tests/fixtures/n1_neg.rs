// True negatives for float-eq (N1): tolerance comparisons and integer
// equality are fine.
fn converged(gap: f64) -> bool {
    gap.abs() < 1e-9
}

fn int_eq(a: u32, b: u32) -> bool {
    a == b && b != 7
}

fn ordering(x: f64) -> bool {
    x <= 0.0 || x >= 1.0
}
