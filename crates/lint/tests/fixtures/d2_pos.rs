// True positives for nondet-time (D2).
use std::time::{Instant, SystemTime};

fn wall_clock() -> Instant {
    Instant::now()
}

fn epoch() -> SystemTime {
    SystemTime::now()
}

fn os_entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

fn seeded_from_os() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy()
}
