// True positives for raw-spawn (D3): every spawn entry point, through
// both a `use`d `thread` and the full `std::thread` path.
use std::thread;

fn detached() {
    thread::spawn(|| do_work());
}

fn scoped(xs: &[u64]) -> u64 {
    std::thread::scope(|s| {
        let h = s.spawn(|| xs.iter().sum());
        h.join().unwrap_or(0)
    })
}

fn named() -> std::io::Result<thread::JoinHandle<()>> {
    thread::Builder::new().name("worker".into()).spawn(do_work)
}

fn do_work() {}
