// True positive for serde-default (C1).
use serde::Deserialize;

#[derive(Deserialize)]
struct Config {
    #[serde(default)]
    quiet: bool,
    v: f64,
}

#[derive(Deserialize)]
struct Options {
    #[serde(rename = "gamma", default = "default_gamma")]
    g: f64,
}

fn default_gamma() -> f64 {
    500.0
}
