// True negatives for no-panic (R1): errors flow through Result, and
// test code may unwrap freely.
fn read_frame(payload: Option<Vec<u8>>) -> Result<Vec<u8>, String> {
    payload.ok_or_else(|| "connection closed".to_string())
}

fn decode(text: &str) -> Result<u32, String> {
    text.parse().map_err(|_| format!("bad number: {text}"))
}

fn unwrap_or_is_fine(payload: Option<u32>) -> u32 {
    payload.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let r: Result<u32, String> = Ok(4);
        assert_eq!(r.expect("ok"), 4);
    }
}
