// True negatives for serde-default (C1): other serde attributes are
// fine, and `default` outside a serde attribute is not a finding.
use serde::Deserialize;

#[derive(Deserialize, Default)]
struct Config {
    #[serde(rename = "gamma")]
    g: f64,
    v: f64,
}

impl Config {
    fn fresh() -> Self {
        // Plain Default machinery is allowed — only the serde attribute
        // that silently fills missing JSON fields is banned.
        Config::default()
    }
}
