//! The versioned wire protocol: request/response verbs and the daemon
//! snapshot that travels over it.
//!
//! Every connection starts with `Hello { version }`; any other first
//! verb — or a version mismatch — is answered with [`Response::Error`]
//! and the connection is closed. After the handshake the client drives
//! a strict request/response alternation (no pipelining, no server
//! push), so the protocol needs no correlation ids.
//!
//! See `crates/serve/README.md` for the complete wire specification.

use qdn_core::engine::EngineSnapshot;
use qdn_core::lyapunov::VirtualQueue;
use qdn_core::types::Decision;
use serde::{Deserialize, Serialize};

/// Wire protocol version. A daemon answers a `Hello` carrying any other
/// value with an error and hangs up; bump on any incompatible change to
/// [`Request`], [`Response`], or the frame format.
///
/// v2 (PR 9): `Advise` verb, `AdviseOk`/`Degraded` responses, advisories
/// in [`ServeSnapshot`].
///
/// v3 (PR 10): solve-pool utilization counters in [`ServeStats`].
pub const PROTOCOL_VERSION: u32 = 3;

/// Version tag of [`ServeSnapshot`]; bump on layout changes.
///
/// v2 (PR 9): declared outage advisories travel with the snapshot.
pub const SERVE_SNAPSHOT_VERSION: u32 = 2;

/// A declared outage window: the listed nodes are dark (all incident
/// links dead, qubits unusable) for every slot in `[start, end)`.
///
/// Advisories overlay the configured dynamics process — the daemon
/// zeroes the affected capacities on top of whatever the dynamics drew,
/// so a declared window composes with stochastic churn. `planned`
/// distinguishes maintenance (announced ahead of time, eligible for
/// candidate pre-warming) from reactive reports of unplanned failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Advisory {
    /// First dark slot.
    pub start: u64,
    /// First slot after the window (exclusive).
    pub end: u64,
    /// Node indices going dark together.
    pub nodes: Vec<u32>,
    /// Announced maintenance (`true`) vs reactive outage report
    /// (`false`).
    pub planned: bool,
}

impl Advisory {
    /// Whether slot `t` falls inside the window.
    pub fn covers(&self, t: u64) -> bool {
        self.start <= t && t < self.end
    }
}

/// Client → daemon verbs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Handshake; must be the first verb on every connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Queue EC requests (as `(source, destination)` node indices) for
    /// the next slot tick. Invalid pairs (equal endpoints or indices
    /// out of range) reject the whole batch.
    Submit {
        /// Requested `(source, destination)` node-index pairs.
        pairs: Vec<(u32, u32)>,
    },
    /// Close the current slot: snapshot the slot's capacities, fan the
    /// queued arrivals out to the session shards, decide, advance time.
    Tick,
    /// Daemon counters (slot, queue lengths, served/unserved totals).
    Stats,
    /// Serialize the daemon's full warm state.
    Snapshot,
    /// Replace the daemon's state with a snapshot taken by an earlier
    /// `Snapshot` (same configuration required).
    Restore {
        /// The snapshot to install.
        snapshot: ServeSnapshot,
    },
    /// Reset to slot 0 with cold shards and replayed dynamics, as if
    /// freshly started.
    Reset,
    /// Declare an outage window (maintenance or reactive). The daemon
    /// darkens the listed nodes for the window's slots and — for
    /// windows that have not yet opened — pre-warms candidate repair
    /// for the affected region so the first dark tick pays no Yen
    /// searches for prewarmed pairs.
    Advise {
        /// The window being declared.
        advisory: Advisory,
    },
    /// Stop the daemon after answering.
    Shutdown,
}

/// Daemon → client verb answers, in one-to-one correspondence with
/// [`Request`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// The daemon's [`PROTOCOL_VERSION`].
        version: u32,
        /// Number of session shards.
        shards: u32,
        /// The next slot index to be decided.
        slot: u64,
    },
    /// Batch queued.
    SubmitOk {
        /// Arrivals now pending for the next tick (including earlier
        /// batches).
        pending: u32,
    },
    /// Slot decided.
    TickOk {
        /// The slot index that was just decided.
        slot: u64,
        /// The merged decision across all shards (assignments in shard
        /// order, submit order within a shard).
        decision: Decision,
        /// Total qubit cost charged against the budget this slot.
        cost: u64,
    },
    /// Counters.
    StatsOk {
        /// The counters.
        stats: ServeStats,
    },
    /// Snapshot taken.
    SnapshotOk {
        /// The daemon's full warm state.
        snapshot: ServeSnapshot,
    },
    /// Snapshot installed.
    RestoreOk {
        /// The next slot index to be decided.
        slot: u64,
    },
    /// Reset done.
    ResetOk,
    /// Advisory recorded (and pre-warmed where applicable).
    AdviseOk {
        /// Advisories currently on file (expired windows pruned).
        advisories: u32,
        /// Candidate pairs pre-warmed across all shards for this
        /// window (0 when the window is already open — repair then
        /// happens live on the next tick).
        prewarmed_pairs: u32,
    },
    /// Graceful degradation: the submitted batch touches a currently
    /// dark region, so the daemon refuses to queue it instead of
    /// deciding against capacities that cannot serve it. The
    /// connection stays usable; resubmit after the window closes, or
    /// drop the listed nodes from the batch.
    Degraded {
        /// The next slot to be decided (the one the batch would have
        /// entered).
        slot: u64,
        /// Nodes dark at that slot (union over covering advisories),
        /// ascending.
        dark_nodes: Vec<u32>,
    },
    /// Daemon is stopping.
    ShutdownOk,
    /// The request was rejected; the connection stays usable unless the
    /// failure was a handshake failure.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// Daemon counters reported by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// The next slot index to be decided.
    pub slot: u64,
    /// Arrivals queued for the next tick.
    pub pending: u32,
    /// Requests served across all ticks so far.
    pub served: u64,
    /// Requests left unserved across all ticks so far.
    pub unserved: u64,
    /// Total qubit cost spent across all ticks so far.
    pub spent: u64,
    /// Per-shard virtual-queue lengths `q_t`.
    pub queue_values: Vec<f64>,
    /// Worker count of the shared solve pool shard threads submit
    /// parallel stages to (PR 10).
    pub pool_threads: u32,
    /// Tasks the solve pool has executed since daemon start.
    pub pool_tasks_executed: u64,
    /// Tasks that ran on a different worker than the one that spawned
    /// them (work stealing) — a utilization signal, not a determinism
    /// one: results reduce in fixed index order regardless.
    pub pool_tasks_stolen: u64,
}

/// Complete serializable image of a running daemon's decision state:
/// the slot counter plus one [`ShardSnapshot`] per session shard.
///
/// What it does *not* carry — and why it doesn't need to: the network,
/// the dynamics process, and the per-slot RNGs are all derived
/// deterministically from the daemon configuration (dynamics state is
/// replayed up to `slot` on restore), and the fidelity-filter cache is
/// a pure function of network and candidates, rebuilt on first use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSnapshot {
    /// Layout version ([`SERVE_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The next slot index to be decided.
    pub slot: u64,
    /// Per-shard warm state, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Declared outage advisories still on file (PR 9). Darkness is a
    /// pure function of `(advisories, slot)`, so carrying the windows
    /// is all restore needs — the prewarm cache is a pure optimization
    /// (bit-identical decisions either way) and is *not* snapshotted.
    pub advisories: Vec<Advisory>,
}

/// One shard's warm state: the engine (candidate routes + selection
/// session) and its slice of the budget accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// qdn-lint: allow(snapshot-version, reason="only reachable through ServeSnapshot, whose version covers this layout; restore rejects on the parent tag")
pub struct ShardSnapshot {
    /// Candidate route cache + selection session.
    pub engine: EngineSnapshot,
    /// The shard's virtual cost-deficit queue.
    pub queue: VirtualQueue,
    /// Qubit cost spent by this shard so far.
    pub spent: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Submit {
                pairs: vec![(0, 3), (7, 2)],
            },
            Request::Tick,
            Request::Stats,
            Request::Snapshot,
            Request::Reset,
            Request::Advise {
                advisory: Advisory {
                    start: 10,
                    end: 14,
                    nodes: vec![3, 4],
                    planned: true,
                },
            },
            Request::Shutdown,
        ];
        for req in reqs {
            let wire = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&wire).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = vec![
            Response::HelloOk {
                version: PROTOCOL_VERSION,
                shards: 4,
                slot: 17,
            },
            Response::SubmitOk { pending: 3 },
            Response::ResetOk,
            Response::AdviseOk {
                advisories: 2,
                prewarmed_pairs: 5,
            },
            Response::Degraded {
                slot: 12,
                dark_nodes: vec![3, 4],
            },
            Response::ShutdownOk,
            Response::Error {
                message: "nope".into(),
            },
            Response::StatsOk {
                stats: ServeStats {
                    slot: 9,
                    pending: 0,
                    served: 40,
                    unserved: 2,
                    spent: 812,
                    queue_values: vec![0.5, 12.25],
                    pool_threads: 4,
                    pool_tasks_executed: 1024,
                    pool_tasks_stolen: 96,
                },
            },
        ];
        for resp in resps {
            let wire = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&wire).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn advisory_window_is_half_open() {
        let a = Advisory {
            start: 5,
            end: 8,
            nodes: vec![1],
            planned: false,
        };
        assert!(!a.covers(4));
        assert!(a.covers(5));
        assert!(a.covers(7));
        assert!(!a.covers(8));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(serde_json::from_str::<Request>("{\"Hello\":").is_err());
        assert!(serde_json::from_str::<Request>("{\"NoSuchVerb\":{}}").is_err());
        assert!(serde_json::from_str::<Request>("42").is_err());
    }
}
