//! `qdn-serve-load` — replay a workload against a running daemon.
//!
//! ```text
//! qdn-serve-load --socket /tmp/qdn.sock [options]
//! qdn-serve-load --tcp 127.0.0.1:7117 [options]
//!
//! Options:
//!   --socket PATH       connect to a Unix domain socket
//!   --tcp ADDR:PORT     connect over TCP instead
//!   --slots N           slots to drive (default 64)
//!   --seed N            workload draw seed (default 11)
//!   --net-seed N        daemon's master seed, to rebuild the same
//!                       topology locally (default 7)
//!   --workload KIND     uniform (default) | persistent | pinned:S-D,S-D,...
//!   --reset             reset the daemon to slot 0 before driving
//!   --shutdown          ask the daemon to stop after the run
//!
//! Fault injection (each may be repeated; windows are advised before
//! driving and the report counts degraded requests):
//!   --kill-node N            unplanned node cut over the middle third
//!                            of the run ([slots/3, 2*slots/3))
//!   --blackout-region N0,N1,...
//!                            unplanned regional outage, same window
//!   --maintenance START:END:N0,N1,...
//!                            planned window [START, END) over the
//!                            listed nodes (prewarmed when still ahead)
//! ```
//!
//! Prints the [`qdn_serve::LoadReport`] as JSON on stdout. The local
//! topology rebuild must match the daemon's (same NetworkConfig + seed),
//! since workloads draw requests against the node set.

use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::process::ExitCode;

use qdn_net::workload::WorkloadConfig;
use qdn_net::NetworkConfig;
use qdn_serve::loadgen::{run, LoadConfig};
use qdn_serve::{Advisory, Client};
use rand::SeedableRng;

fn fail(message: &str) -> ExitCode {
    eprintln!("qdn-serve-load: {message}");
    ExitCode::FAILURE
}

fn parse_nodes(spec: &str) -> Option<Vec<u32>> {
    let nodes: Option<Vec<u32>> = spec.split(',').map(|n| n.parse().ok()).collect();
    nodes.filter(|n| !n.is_empty())
}

/// `START:END:N0,N1,...` → a planned window.
fn parse_maintenance(spec: &str) -> Option<Advisory> {
    let mut parts = spec.splitn(3, ':');
    let start = parts.next()?.parse().ok()?;
    let end = parts.next()?.parse().ok()?;
    let nodes = parse_nodes(parts.next()?)?;
    (start < end).then_some(Advisory {
        start,
        end,
        nodes,
        planned: true,
    })
}

fn parse_workload(spec: &str) -> Option<WorkloadConfig> {
    match spec {
        "uniform" => Some(WorkloadConfig::paper_default()),
        "persistent" => Some(WorkloadConfig::Persistent {
            pairs_per_slot: 10,
            keep_probability: 0.8,
        }),
        other => {
            let pinned = other.strip_prefix("pinned:")?;
            let mut pairs = Vec::new();
            for part in pinned.split(',') {
                let (s, d) = part.split_once('-')?;
                pairs.push((s.parse().ok()?, d.parse().ok()?));
            }
            Some(WorkloadConfig::Pinned { pairs })
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut net_seed: u64 = 7;
    let mut reset = false;
    let mut shutdown = false;
    let mut load = LoadConfig::paper_default();
    // Unplanned cuts default to the middle third of the run; resolved
    // after flag parsing so --slots order doesn't matter.
    let mut unplanned: Vec<Vec<u32>> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--socket" => match take(&mut i) {
                Some(p) => socket = Some(p),
                None => return fail("--socket needs a path"),
            },
            "--tcp" => match take(&mut i) {
                Some(a) => tcp = Some(a),
                None => return fail("--tcp needs an address:port"),
            },
            "--slots" => match take(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => load.slots = n,
                None => return fail("--slots needs an integer"),
            },
            "--seed" => match take(&mut i).and_then(|v| v.parse().ok()) {
                Some(s) => load.seed = s,
                None => return fail("--seed needs an integer"),
            },
            "--net-seed" => match take(&mut i).and_then(|v| v.parse().ok()) {
                Some(s) => net_seed = s,
                None => return fail("--net-seed needs an integer"),
            },
            "--workload" => match take(&mut i).as_deref().and_then(parse_workload) {
                Some(w) => load.workload = w,
                None => {
                    return fail("--workload needs uniform | persistent | pinned:S-D,...");
                }
            },
            "--kill-node" => match take(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => unplanned.push(vec![n]),
                None => return fail("--kill-node needs a node index"),
            },
            "--blackout-region" => match take(&mut i).as_deref().and_then(parse_nodes) {
                Some(nodes) => unplanned.push(nodes),
                None => return fail("--blackout-region needs N0,N1,..."),
            },
            "--maintenance" => match take(&mut i).as_deref().and_then(parse_maintenance) {
                Some(advisory) => load.faults.push(advisory),
                None => return fail("--maintenance needs START:END:N0,N1,... with START < END"),
            },
            "--reset" => reset = true,
            "--shutdown" => shutdown = true,
            other => return fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    for nodes in unplanned {
        load.faults.push(Advisory {
            start: load.slots / 3,
            end: (2 * load.slots / 3).max(load.slots / 3 + 1),
            nodes,
            planned: false,
        });
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(net_seed);
    let network = match NetworkConfig::paper_default().build(&mut rng) {
        Ok(n) => n,
        Err(e) => return fail(&format!("network build: {e:?}")),
    };

    fn drive<S: std::io::Read + std::io::Write>(
        mut client: Client<S>,
        network: &qdn_net::QdnNetwork,
        load: &LoadConfig,
        reset: bool,
        shutdown: bool,
    ) -> Result<String, String> {
        client.hello().map_err(|e| e.to_string())?;
        if reset {
            client.reset().map_err(|e| e.to_string())?;
        }
        let report = run(&mut client, network, load).map_err(|e| e.to_string())?;
        if shutdown {
            client.shutdown().map_err(|e| e.to_string())?;
        }
        serde_json::to_string_pretty(&report).map_err(|e| format!("encode report: {e:?}"))
    }

    let result = match (socket.as_deref(), tcp.as_deref()) {
        (Some(path), None) => match UnixStream::connect(path) {
            Ok(stream) => drive(Client::new(stream), &network, &load, reset, shutdown),
            Err(e) => return fail(&format!("connect {path}: {e}")),
        },
        (None, Some(addr)) => match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                drive(Client::new(stream), &network, &load, reset, shutdown)
            }
            Err(e) => return fail(&format!("connect {addr}: {e}")),
        },
        _ => return fail("exactly one of --socket PATH / --tcp ADDR:PORT is required"),
    };

    match result {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}
