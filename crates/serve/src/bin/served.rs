//! `qdn-served` — the OSCAR controller daemon.
//!
//! ```text
//! qdn-served --socket /tmp/qdn.sock [options]
//! qdn-served --tcp 127.0.0.1:7117 [options]
//!
//! Options:
//!   --socket PATH     listen on a Unix domain socket at PATH
//!   --tcp ADDR:PORT   listen on TCP instead
//!   --seed N          master seed (default 7)
//!   --shards N        session shards / worker threads (default 4)
//!   --threads N       shared solve-pool width for intra-shard
//!                     parallel stages (default 0 = one per CPU)
//!   --config FILE     full ServeConfig as JSON (overrides the flags
//!                     above except --socket/--tcp)
//!   --churn RATE:MTTR layer Poisson link failures (RATE per slot,
//!                     geometric outages with mean MTTR slots) over
//!                     static dynamics
//! ```
//!
//! Exactly one of `--socket` / `--tcp` is required. The daemon serves
//! until a client sends `Shutdown`.

use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::process::ExitCode;

use qdn_net::dynamics::DynamicsConfig;
use qdn_serve::daemon::{serve, Daemon, Listener};
use qdn_serve::ServeConfig;

fn fail(message: &str) -> ExitCode {
    eprintln!("qdn-served: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut config = ServeConfig::paper_default();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--socket" => match take(&mut i) {
                Some(p) => socket = Some(p),
                None => return fail("--socket needs a path"),
            },
            "--tcp" => match take(&mut i) {
                Some(a) => tcp = Some(a),
                None => return fail("--tcp needs an address:port"),
            },
            "--seed" => match take(&mut i).and_then(|v| v.parse().ok()) {
                Some(s) => config.seed = s,
                None => return fail("--seed needs an integer"),
            },
            "--shards" => match take(&mut i).and_then(|v| v.parse().ok()) {
                Some(s) => config.shards = s,
                None => return fail("--shards needs an integer"),
            },
            "--threads" => match take(&mut i).and_then(|v| v.parse().ok()) {
                Some(t) => config.threads = t,
                None => return fail("--threads needs an integer"),
            },
            "--config" => {
                let Some(path) = take(&mut i) else {
                    return fail("--config needs a file path");
                };
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => return fail(&format!("read {path}: {e}")),
                };
                config = match serde_json::from_str(&text) {
                    Ok(c) => c,
                    Err(e) => return fail(&format!("parse {path}: {e:?}")),
                };
            }
            "--churn" => {
                let Some(spec) = take(&mut i) else {
                    return fail("--churn needs RATE:MTTR");
                };
                let parts: Vec<&str> = spec.split(':').collect();
                let parsed = match parts.as_slice() {
                    [r, m] => r.parse::<f64>().ok().zip(m.parse::<f64>().ok()),
                    _ => None,
                };
                let Some((rate, mttr)) = parsed else {
                    return fail("--churn needs RATE:MTTR (two numbers)");
                };
                config.dynamics = DynamicsConfig::Churn {
                    failure_rate: rate,
                    mttr,
                    seed: config.seed ^ 0xc4e1,
                    base: Box::new(DynamicsConfig::Static),
                };
            }
            other => return fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let listener = match (socket.as_deref(), tcp.as_deref()) {
        (Some(path), None) => {
            // A stale socket file from a previous run blocks bind.
            let _ = std::fs::remove_file(path);
            match UnixListener::bind(path) {
                Ok(l) => Listener::Unix(l),
                Err(e) => return fail(&format!("bind {path}: {e}")),
            }
        }
        (None, Some(addr)) => match TcpListener::bind(addr) {
            Ok(l) => Listener::Tcp(l),
            Err(e) => return fail(&format!("bind {addr}: {e}")),
        },
        _ => return fail("exactly one of --socket PATH / --tcp ADDR:PORT is required"),
    };

    let mut daemon = match Daemon::new(config) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    eprintln!(
        "qdn-served: {} nodes, {} shards, serving",
        daemon.network().node_count(),
        daemon.config().shards
    );
    match serve(&mut daemon, &listener) {
        Ok(()) => {
            if let (Listener::Unix(_), Some(path)) = (&listener, socket.as_deref()) {
                let _ = std::fs::remove_file(path);
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("serve: {e}")),
    }
}
