//! Daemon configuration.

use qdn_core::OscarConfig;
use qdn_net::dynamics::DynamicsConfig;
use qdn_net::NetworkConfig;
use serde::{Deserialize, Serialize};

/// Everything a daemon needs to reconstruct its world deterministically:
/// the topology draw, the resource dynamics, the OSCAR parameters, and
/// the master seed every per-slot RNG is derived from.
///
/// Two daemons started from equal configurations build bit-identical
/// networks and observe bit-identical capacity processes — which is what
/// lets [`crate::proto::ServeSnapshot`] omit both and still restore to a
/// state whose decisions match the uninterrupted run exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Master seed: topology draw and all per-slot RNG derivation.
    pub seed: u64,
    /// Number of session shards (worker threads). SD pairs are mapped
    /// to shards by canonical source node, so a pair's warm region
    /// state always lives on the same shard.
    pub shards: u32,
    /// Topology + capacity draw.
    pub network: NetworkConfig,
    /// Exogenous per-slot capacity process.
    pub dynamics: DynamicsConfig,
    /// Worker threads of the shared solve pool
    /// (`crates/compat/threadpool`) that shard threads use for
    /// intra-shard parallel stages (component solves, Gibbs restarts):
    /// `0` = one per available CPU.
    ///
    /// **Required** in the wire form (PR 10, deliberately a loud serde
    /// break — see MIGRATION.md §PR 10): a daemon config owns its
    /// execution engine, so the same config file reproduces the same
    /// run shape everywhere. Decisions are bit-identical at every
    /// width — this knob trades wall-clock for cores, never
    /// determinism.
    pub threads: usize,
    /// OSCAR parameters (`V`, `q0`, budget, horizon, selector,
    /// allocation, fidelity target). The budget is split evenly across
    /// shards: each shard runs its own virtual queue over
    /// `total_budget / shards`.
    pub oscar: OscarConfig,
}

impl ServeConfig {
    /// Paper-scale defaults: the §V-A network and OSCAR parameters,
    /// static dynamics, four shards, seed 7.
    pub fn paper_default() -> Self {
        ServeConfig {
            seed: 7,
            shards: 4,
            network: NetworkConfig::paper_default(),
            dynamics: DynamicsConfig::Static,
            threads: 0,
            oscar: OscarConfig::paper_default(),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_field_is_required_in_wire_form() {
        // PR 10's deliberate loud break: a daemon config without
        // `threads` must be rejected, not silently defaulted.
        let wire = serde_json::to_string(&ServeConfig::paper_default()).unwrap();
        assert!(wire.contains("\"threads\":0"), "wire form: {wire}");
        let legacy = wire
            .replace("\"threads\":0,", "")
            .replace(",\"threads\":0", "");
        assert!(!legacy.contains("threads"));
        assert!(serde_json::from_str::<ServeConfig>(&legacy).is_err());
        let current = wire.replace("\"threads\":0", "\"threads\":2");
        let parsed: ServeConfig = serde_json::from_str(&current).unwrap();
        assert_eq!(parsed.threads, 2);
    }
}
