//! Daemon configuration.

use qdn_core::OscarConfig;
use qdn_net::dynamics::DynamicsConfig;
use qdn_net::NetworkConfig;
use serde::{Deserialize, Serialize};

/// Everything a daemon needs to reconstruct its world deterministically:
/// the topology draw, the resource dynamics, the OSCAR parameters, and
/// the master seed every per-slot RNG is derived from.
///
/// Two daemons started from equal configurations build bit-identical
/// networks and observe bit-identical capacity processes — which is what
/// lets [`crate::proto::ServeSnapshot`] omit both and still restore to a
/// state whose decisions match the uninterrupted run exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Master seed: topology draw and all per-slot RNG derivation.
    pub seed: u64,
    /// Number of session shards (worker threads). SD pairs are mapped
    /// to shards by canonical source node, so a pair's warm region
    /// state always lives on the same shard.
    pub shards: u32,
    /// Topology + capacity draw.
    pub network: NetworkConfig,
    /// Exogenous per-slot capacity process.
    pub dynamics: DynamicsConfig,
    /// OSCAR parameters (`V`, `q0`, budget, horizon, selector,
    /// allocation, fidelity target). The budget is split evenly across
    /// shards: each shard runs its own virtual queue over
    /// `total_budget / shards`.
    pub oscar: OscarConfig,
}

impl ServeConfig {
    /// Paper-scale defaults: the §V-A network and OSCAR parameters,
    /// static dynamics, four shards, seed 7.
    pub fn paper_default() -> Self {
        ServeConfig {
            seed: 7,
            shards: 4,
            network: NetworkConfig::paper_default(),
            dynamics: DynamicsConfig::Static,
            oscar: OscarConfig::paper_default(),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}
