//! Length-prefixed frame codec for the wire protocol.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! +----------------+---------------------+
//! | length: u32 BE | payload: JSON bytes |
//! +----------------+---------------------+
//! ```
//!
//! The length covers the payload only (not itself) and is bounded by
//! [`MAX_FRAME_LEN`]; a peer announcing a larger frame is rejected
//! before any payload is read, so a malicious or corrupted length word
//! cannot make the reader allocate unboundedly. A stream that ends
//! mid-header (other than exactly at a frame boundary) or mid-payload
//! surfaces as [`FrameError::Truncated`], distinct from a clean
//! [`FrameError::Closed`] end-of-stream between frames.

use std::io::{self, Read, Write};

/// Upper bound on a frame's payload length in bytes (16 MiB) — far
/// above any real snapshot, far below anything that could hurt.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended cleanly at a frame boundary.
    Closed,
    /// The stream ended mid-header or mid-payload.
    Truncated,
    /// The announced payload length exceeds [`MAX_FRAME_LEN`].
    Oversize(u32),
    /// Transport error.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Oversize(n) => {
                write!(f, "frame length {n} exceeds maximum {MAX_FRAME_LEN}")
            }
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length header + payload) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds u32 range",
        )
    })?;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {len} exceeds maximum {MAX_FRAME_LEN}"),
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload.
///
/// Distinguishes a clean close (EOF before any header byte →
/// [`FrameError::Closed`]) from a torn one (EOF inside the header or
/// payload → [`FrameError::Truncated`]).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversize(len));
    }
    let mut payload = vec![0u8; len as usize];
    match r.read_exact(&mut payload) {
        Ok(()) => Ok(payload),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Truncated),
        Err(e) => Err(FrameError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world!").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), b"world!");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn truncated_header_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let mut r = &buf[..2];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let mut r = &buf[..buf.len() - 3];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
    }

    #[test]
    fn oversize_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        // No payload bytes at all: the reader must reject on the header
        // alone rather than try to allocate/read the announced length.
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Oversize(n)) if n == MAX_FRAME_LEN + 1
        ));
    }

    #[test]
    fn oversize_write_rejected() {
        struct NullSink;
        impl Write for NullSink {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let big = vec![0u8; (MAX_FRAME_LEN as usize) + 1];
        assert!(write_frame(&mut NullSink, &big).is_err());
    }
}
