//! Blocking client for the daemon's wire protocol.

use std::io::{Read, Write};

use qdn_core::types::Decision;
use qdn_net::SdPair;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{Advisory, Request, Response, ServeSnapshot, ServeStats, PROTOCOL_VERSION};

/// What the daemon did with a `Submit` batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The batch is queued for the next tick.
    Queued {
        /// Arrivals now pending (including earlier batches).
        pending: u32,
    },
    /// The batch touches a dark region and was refused — resubmit
    /// after the window closes, or drop the dark endpoints.
    Degraded {
        /// The slot the batch would have entered.
        slot: u64,
        /// Nodes dark at that slot, ascending.
        dark_nodes: Vec<u32>,
    },
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing broke.
    Frame(FrameError),
    /// The daemon answered something the verb does not admit.
    Protocol(String),
    /// The daemon answered [`Response::Error`].
    Remote(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Remote(m) => write!(f, "daemon: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// A connected client. [`Client::hello`] must be called (and succeed)
/// before any other verb — the daemon enforces it.
pub struct Client<S: Read + Write> {
    stream: S,
}

impl<S: Read + Write> Client<S> {
    /// Wraps a connected stream (Unix or TCP — anything `Read + Write`).
    pub fn new(stream: S) -> Client<S> {
        Client { stream }
    }

    /// Sends one raw request and returns whatever the daemon answers —
    /// including [`Response::Error`], which the typed verbs below turn
    /// into [`ClientError::Remote`]. For tools and tests that need the
    /// un-interpreted wire exchange.
    pub fn call_raw(&mut self, request: &Request) -> Result<Response, ClientError> {
        let wire = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("encode request: {e:?}")))?;
        write_frame(&mut self.stream, wire.as_bytes())?;
        let payload = read_frame(&mut self.stream)?;
        let text = String::from_utf8(payload)
            .map_err(|_| ClientError::Protocol("response payload is not UTF-8".into()))?;
        serde_json::from_str(&text)
            .map_err(|e| ClientError::Protocol(format!("bad response: {e:?}")))
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.call_raw(request)? {
            Response::Error { message } => Err(ClientError::Remote(message)),
            response => Ok(response),
        }
    }

    /// Handshake; returns `(shards, next slot)`.
    pub fn hello(&mut self) -> Result<(u32, u64), ClientError> {
        match self.call(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::HelloOk { shards, slot, .. } => Ok((shards, slot)),
            other => Err(unexpected("HelloOk", &other)),
        }
    }

    /// Queues EC requests for the next tick. A batch touching a dark
    /// region is answered with [`SubmitOutcome::Degraded`] — typed, not
    /// an error, because the connection (and the daemon) are healthy;
    /// the batch just cannot be served during the window.
    pub fn submit(&mut self, pairs: &[SdPair]) -> Result<SubmitOutcome, ClientError> {
        let raw: Vec<(u32, u32)> = pairs
            .iter()
            .map(|p| (p.source().0, p.destination().0))
            .collect();
        match self.call(&Request::Submit { pairs: raw })? {
            Response::SubmitOk { pending } => Ok(SubmitOutcome::Queued { pending }),
            Response::Degraded { slot, dark_nodes } => {
                Ok(SubmitOutcome::Degraded { slot, dark_nodes })
            }
            other => Err(unexpected("SubmitOk or Degraded", &other)),
        }
    }

    /// Declares an outage window; returns `(advisories on file,
    /// pairs prewarmed)`.
    pub fn advise(&mut self, advisory: Advisory) -> Result<(u32, u32), ClientError> {
        match self.call(&Request::Advise { advisory })? {
            Response::AdviseOk {
                advisories,
                prewarmed_pairs,
            } => Ok((advisories, prewarmed_pairs)),
            other => Err(unexpected("AdviseOk", &other)),
        }
    }

    /// Closes the current slot; returns `(slot, merged decision, cost)`.
    pub fn tick(&mut self) -> Result<(u64, Decision, u64), ClientError> {
        match self.call(&Request::Tick)? {
            Response::TickOk {
                slot,
                decision,
                cost,
            } => Ok((slot, decision, cost)),
            other => Err(unexpected("TickOk", &other)),
        }
    }

    /// Daemon counters.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::StatsOk { stats } => Ok(stats),
            other => Err(unexpected("StatsOk", &other)),
        }
    }

    /// Takes a full warm-state snapshot.
    pub fn snapshot(&mut self) -> Result<ServeSnapshot, ClientError> {
        match self.call(&Request::Snapshot)? {
            Response::SnapshotOk { snapshot } => Ok(snapshot),
            other => Err(unexpected("SnapshotOk", &other)),
        }
    }

    /// Installs a snapshot; returns the next slot index.
    pub fn restore(&mut self, snapshot: ServeSnapshot) -> Result<u64, ClientError> {
        match self.call(&Request::Restore { snapshot })? {
            Response::RestoreOk { slot } => Ok(slot),
            other => Err(unexpected("RestoreOk", &other)),
        }
    }

    /// Resets the daemon to cold slot 0.
    pub fn reset(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Reset)? {
            Response::ResetOk => Ok(()),
            other => Err(unexpected("ResetOk", &other)),
        }
    }

    /// Asks the daemon to stop after answering.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(unexpected("ShutdownOk", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
