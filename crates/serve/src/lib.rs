//! OSCAR as a long-running controller daemon.
//!
//! The library side of the `qdn-served` / `qdn-serve-load` binaries:
//!
//! * [`frame`] — length-prefixed (u32 BE + JSON) frame codec with a
//!   hard size bound and truncation-vs-close discrimination;
//! * [`proto`] — the versioned request/response verbs and the
//!   [`proto::ServeSnapshot`] warm-state image;
//! * [`config`] — [`config::ServeConfig`]: seed, topology, dynamics,
//!   OSCAR parameters, shard count;
//! * [`shard`] — shard-per-core warm sessions: one blocking thread per
//!   shard, each owning an `EngineState` and its slice of the budget,
//!   keyed by canonical source node so region state never migrates;
//! * [`daemon`] — the transport-free [`daemon::Daemon`] core plus the
//!   blocking Unix/TCP socket server;
//! * [`client`] — a blocking client for tests, tools, and the load
//!   generator;
//! * [`loadgen`] — workload replay with p50/p99 tick latency and
//!   decisions/sec reporting.
//!
//! No async runtime anywhere: the daemon is a slot clock, a slot tick
//! is a global barrier across shards, and blocking threads rendezvous
//! over plain channels.
//!
//! ## Warm restarts
//!
//! `Snapshot` returns every byte of decision-relevant state (candidate
//! caches with their churn-repaired route sets, session memos, λ
//! stores, previous profiles, virtual queues, the slot counter);
//! `Restore` installs it and fast-forwards the dynamics process by
//! replay. A daemon restarted this way produces decisions bit-identical
//! to the uninterrupted run — pinned by the
//! `restored_session_matches_uninterrupted` proptest and the
//! integration tests in `tests/daemon.rs`.

#![forbid(unsafe_code)]
pub mod client;
pub mod config;
pub mod daemon;
pub mod frame;
pub mod loadgen;
pub mod proto;
pub mod shard;

pub use client::{Client, ClientError, SubmitOutcome};
pub use config::ServeConfig;
pub use daemon::{serve, serve_connection, Daemon, Listener};
pub use loadgen::{LoadConfig, LoadReport};
pub use proto::{Advisory, Request, Response, ServeSnapshot, PROTOCOL_VERSION};
