//! The controller daemon: slot clock, arrival queue, shard fan-out, and
//! the blocking socket server.
//!
//! [`Daemon`] is the transport-free core — one instance per process,
//! owning the network, the dynamics process, and the [`ShardPool`]. The
//! socket layer ([`serve`]) is a thin loop: accept a connection, demand
//! a `Hello`, then alternate read-frame → [`Daemon::handle`] →
//! write-frame until the peer hangs up or asks for `Shutdown`.
//! Connections are served one at a time — the daemon is the slot clock,
//! and a slot tick is a global barrier across shards, so concurrent
//! connections would only interleave at tick granularity anyway.
//!
//! ## Capacity semantics across shards
//!
//! Shards decide a slot concurrently against the *same* capacity
//! snapshot: a shard does not observe allocations made by its siblings
//! in the same slot. Cross-shard contention for one link is therefore
//! not coordinated — matching the paper's deployment intent, where
//! regions (here: canonical-source groups) are operated as disjoint
//! slices of the network. The budget is likewise partitioned: each
//! shard prices its own virtual queue over `total_budget / shards`.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::sync::Arc;

use qdn_core::types::Decision;
use qdn_net::dynamics::ResourceDynamics;
use qdn_net::{QdnNetwork, SdPair};
use rand::SeedableRng;

use crate::config::ServeConfig;
use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{
    Advisory, Request, Response, ServeSnapshot, ServeStats, PROTOCOL_VERSION,
    SERVE_SNAPSHOT_VERSION,
};
use crate::shard::{shard_of, slot_rng, ShardPool};

/// RNG stream id for the dynamics process — outside the shard index
/// range (shard counts are `u32`), so the capacity draw never collides
/// with a shard's decision stream.
const DYNAMICS_STREAM: u64 = 1 << 40;

/// The transport-free daemon core.
pub struct Daemon {
    config: ServeConfig,
    network: Arc<QdnNetwork>,
    dynamics: Box<dyn ResourceDynamics>,
    pool: ShardPool,
    slot: u64,
    pending: Vec<SdPair>,
    served: u64,
    unserved: u64,
    spent: u64,
    /// Declared outage windows (maintenance or reactive), pruned of
    /// expired entries on every tick. Darkness at a slot is the union
    /// of the covering windows' node sets, overlaid on the dynamics
    /// snapshot.
    advisories: Vec<Advisory>,
}

impl Daemon {
    /// Builds the network from the configuration and spawns the shard
    /// pool.
    pub fn new(config: ServeConfig) -> Result<Daemon, String> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let network = Arc::new(
            config
                .network
                .build(&mut rng)
                .map_err(|e| format!("network build failed: {e:?}"))?,
        );
        let dynamics = config.dynamics.build();
        let pool = ShardPool::new(
            config.seed,
            config.shards,
            config.threads,
            Arc::clone(&network),
            Arc::new(config.oscar.clone()),
        )?;
        Ok(Daemon {
            config,
            network,
            dynamics,
            pool,
            slot: 0,
            pending: Vec::new(),
            served: 0,
            unserved: 0,
            spent: 0,
            advisories: Vec::new(),
        })
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The installed network (e.g. for a co-located load generator).
    pub fn network(&self) -> &QdnNetwork {
        &self.network
    }

    /// The next slot index to be decided.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Answers one post-handshake request. `Hello` is handled by the
    /// connection layer; reaching here twice is an error answered in
    /// kind, not a panic.
    pub fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Hello { .. } => Response::Error {
                message: "already greeted".into(),
            },
            Request::Submit { pairs } => self.submit(&pairs),
            Request::Tick => self.tick(),
            Request::Stats => self.stats(),
            Request::Snapshot => match self.snapshot() {
                Ok(snapshot) => Response::SnapshotOk { snapshot },
                Err(error) => self.shard_failure(error),
            },
            Request::Restore { snapshot } => match self.restore(&snapshot) {
                Ok(slot) => Response::RestoreOk { slot },
                Err(message) => Response::Error { message },
            },
            Request::Reset => match self.reset() {
                Ok(()) => Response::ResetOk,
                Err(message) => Response::Error { message },
            },
            Request::Advise { advisory } => self.advise(advisory),
            Request::Shutdown => Response::ShutdownOk,
        }
    }

    /// Nodes dark at slot `t`: the union of every covering advisory's
    /// node set, ascending and deduplicated.
    fn dark_nodes(&self, t: u64) -> Vec<u32> {
        let mut dark: Vec<u32> = self
            .advisories
            .iter()
            .filter(|a| a.covers(t))
            .flat_map(|a| a.nodes.iter().copied())
            .collect();
        dark.sort_unstable();
        dark.dedup();
        dark
    }

    /// Records an outage window and pre-warms candidate repair for it.
    ///
    /// Validation is loud: an empty or out-of-range node list, or an
    /// empty window, is an error — a silently ignored advisory would
    /// leave the operator believing the region is covered. Windows
    /// that have not opened yet (`start > slot`) are pre-warmed on
    /// every shard so the first dark tick repairs from cache; windows
    /// already open are only recorded (repair happens live on the next
    /// tick, and a prewarm keyed to a future dead-set would be stale
    /// anyway).
    fn advise(&mut self, advisory: Advisory) -> Response {
        let nodes = self.network.node_count() as u32;
        if advisory.nodes.is_empty() {
            return Response::Error {
                message: "advisory lists no nodes".into(),
            };
        }
        if let Some(&bad) = advisory.nodes.iter().find(|&&n| n >= nodes) {
            return Response::Error {
                message: format!("advisory node {bad} out of range: {nodes} nodes"),
            };
        }
        if advisory.start >= advisory.end {
            return Response::Error {
                message: format!(
                    "advisory window [{}, {}) is empty",
                    advisory.start, advisory.end
                ),
            };
        }
        let prewarmed = if advisory.start > self.slot {
            let mut edges: Vec<_> = advisory
                .nodes
                .iter()
                .flat_map(|&n| {
                    self.network
                        .graph()
                        .neighbors(qdn_graph::NodeId(n))
                        .map(|(_, e)| e)
                })
                .collect();
            edges.sort_unstable();
            edges.dedup();
            match self.pool.prewarm(&edges) {
                Ok(pairs) => pairs,
                Err(error) => return self.shard_failure(error),
            }
        } else {
            0
        };
        self.advisories.push(advisory);
        self.advisories
            .sort_unstable_by_key(|a| (a.start, a.end, a.nodes.clone()));
        Response::AdviseOk {
            advisories: self.advisories.len() as u32,
            prewarmed_pairs: prewarmed as u32,
        }
    }

    fn submit(&mut self, pairs: &[(u32, u32)]) -> Response {
        let nodes = self.network.node_count() as u32;
        let mut batch = Vec::with_capacity(pairs.len());
        for &(s, d) in pairs {
            if s >= nodes || d >= nodes {
                return Response::Error {
                    message: format!("node index out of range in ({s}, {d}): {nodes} nodes"),
                };
            }
            match SdPair::new(qdn_graph::NodeId(s), qdn_graph::NodeId(d)) {
                Ok(pair) => batch.push(pair),
                Err(_) => {
                    return Response::Error {
                        message: format!("invalid pair ({s}, {d}): endpoints must differ"),
                    };
                }
            }
        }
        // Graceful degradation: a batch with an endpoint inside a dark
        // region cannot be served this slot, and queueing it would
        // only decide it against zeroed capacities. Answer typed so
        // the client can filter the batch or wait the window out.
        let dark = self.dark_nodes(self.slot);
        if !dark.is_empty()
            && batch.iter().any(|p| {
                dark.binary_search(&p.source().0).is_ok()
                    || dark.binary_search(&p.destination().0).is_ok()
            })
        {
            return Response::Degraded {
                slot: self.slot,
                dark_nodes: dark,
            };
        }
        self.pending.extend(batch);
        Response::SubmitOk {
            pending: self.pending.len() as u32,
        }
    }

    fn tick(&mut self) -> Response {
        let t = self.slot;
        let mut dyn_rng = slot_rng(self.config.seed, t, DYNAMICS_STREAM);
        let mut snapshot = self.dynamics.snapshot(t, &self.network, &mut dyn_rng);
        // Overlay declared darkness on the dynamics draw: advisory
        // nodes lose their qubits and every incident link. The
        // dynamics RNG has already been consumed, so the overlay never
        // perturbs the capacity process outside the window.
        let dark = self.dark_nodes(t);
        if !dark.is_empty() {
            let qubits: Vec<u32> = self
                .network
                .graph()
                .node_ids()
                .map(|v| {
                    if dark.binary_search(&v.0).is_ok() {
                        0
                    } else {
                        snapshot.qubits(v)
                    }
                })
                .collect();
            let channels: Vec<u32> = self
                .network
                .graph()
                .edges()
                .map(|(e, u, v)| {
                    if dark.binary_search(&u.0).is_ok() || dark.binary_search(&v.0).is_ok() {
                        0
                    } else {
                        snapshot.channels(e)
                    }
                })
                .collect();
            snapshot = qdn_net::CapacitySnapshot::clamped(&self.network, qubits, channels);
        }
        // Windows entirely in the past can never darken a future slot.
        self.advisories.retain(|a| a.end > t);
        let shards = self.pool.len();
        let mut per_shard: Vec<Vec<SdPair>> = vec![Vec::new(); shards];
        for pair in self.pending.drain(..) {
            per_shard[shard_of(pair, shards as u32)].push(pair);
        }
        let decisions = match self.pool.decide_slot(t, per_shard, snapshot) {
            Ok(d) => d,
            Err(error) => return self.shard_failure(error),
        };
        let mut assignments = Vec::new();
        let mut unserved = Vec::new();
        let mut cost = 0u64;
        for d in decisions {
            cost += d.total_cost();
            assignments.extend_from_slice(d.assignments());
            unserved.extend_from_slice(d.unserved());
        }
        let decision = Decision::new(assignments, unserved);
        self.served += decision.assignments().len() as u64;
        self.unserved += decision.unserved().len() as u64;
        self.spent += cost;
        self.slot = t + 1;
        Response::TickOk {
            slot: t,
            decision,
            cost,
        }
    }

    fn stats(&mut self) -> Response {
        let shards = match self.pool.snapshot() {
            Ok(s) => s,
            Err(error) => return self.shard_failure(error),
        };
        let pool_stats = self.pool.solve_pool_stats();
        Response::StatsOk {
            stats: ServeStats {
                slot: self.slot,
                pending: self.pending.len() as u32,
                served: self.served,
                unserved: self.unserved,
                spent: self.spent,
                queue_values: shards.iter().map(|s| s.queue.value()).collect(),
                pool_threads: pool_stats.threads as u32,
                pool_tasks_executed: pool_stats.executed,
                pool_tasks_stolen: pool_stats.stolen,
            },
        }
    }

    /// Serializes the full warm state (see [`ServeSnapshot`] for what
    /// is — and deliberately is not — captured). Fails if a shard
    /// thread has died.
    pub fn snapshot(&self) -> Result<ServeSnapshot, String> {
        Ok(ServeSnapshot {
            version: SERVE_SNAPSHOT_VERSION,
            slot: self.slot,
            shards: self.pool.snapshot()?,
            advisories: self.advisories.clone(),
        })
    }

    /// Installs a snapshot: per-shard warm state, the slot counter, and
    /// the dynamics process fast-forwarded by replaying its first
    /// `slot` draws (its RNG streams are derived from the config seed,
    /// so the replay reproduces internal state exactly). Pending
    /// arrivals and the served/unserved tallies restart at zero —
    /// they are reporting, not decision state.
    ///
    /// On error the daemon resets to cold slot 0 (a half-installed
    /// mixed state must not keep serving).
    pub fn restore(&mut self, snapshot: &ServeSnapshot) -> Result<u64, String> {
        if snapshot.version != SERVE_SNAPSHOT_VERSION {
            return Err(format!(
                "serve snapshot version {} (expected {SERVE_SNAPSHOT_VERSION})",
                snapshot.version
            ));
        }
        if let Err(e) = self.pool.restore(snapshot.shards.clone()) {
            return Err(match self.reset() {
                Ok(()) => format!("{e}; daemon reset cold"),
                Err(re) => format!("{e}; cold reset also failed: {re}"),
            });
        }
        self.dynamics.reset();
        for t in 0..snapshot.slot {
            let mut dyn_rng = slot_rng(self.config.seed, t, DYNAMICS_STREAM);
            let _ = self.dynamics.snapshot(t, &self.network, &mut dyn_rng);
        }
        self.slot = snapshot.slot;
        self.pending.clear();
        self.served = 0;
        self.unserved = 0;
        self.spent = snapshot.shards.iter().map(|s| s.spent).sum();
        // Darkness is a pure function of (advisories, slot), so
        // installing the windows restores the overlay exactly; the
        // prewarm cache is not snapshotted and not needed (a miss just
        // pays the live repair the uninterrupted daemon skipped —
        // decisions are bit-identical either way).
        self.advisories = snapshot.advisories.clone();
        Ok(self.slot)
    }

    /// Back to cold slot 0, as if freshly started. If a shard thread
    /// has died, the whole pool is respawned; failure to respawn (the
    /// OS refusing a thread) is the only error.
    pub fn reset(&mut self) -> Result<(), String> {
        if self.pool.reset().is_err() {
            self.pool = ShardPool::new(
                self.config.seed,
                self.config.shards,
                self.config.threads,
                Arc::clone(&self.network),
                Arc::new(self.config.oscar.clone()),
            )?;
        }
        self.dynamics.reset();
        self.slot = 0;
        self.pending.clear();
        self.served = 0;
        self.unserved = 0;
        self.spent = 0;
        self.advisories.clear();
        Ok(())
    }

    /// A shard thread died mid-operation: the pool is unrecoverable,
    /// so restart cold (respawning the pool) and answer with an error
    /// that reports both the failure and the recovery outcome. The
    /// daemon keeps serving either way — a wedged pool must not wedge
    /// the connection loop.
    fn shard_failure(&mut self, error: String) -> Response {
        let message = match self.reset() {
            Ok(()) => format!("{error}; shard pool restarted cold at slot 0"),
            Err(re) => format!("{error}; cold restart also failed: {re}"),
        };
        Response::Error { message }
    }
}

/// The daemon's listening socket.
pub enum Listener {
    /// A Unix domain socket (the default transport).
    Unix(UnixListener),
    /// A TCP socket.
    Tcp(TcpListener),
}

/// Accepts and serves connections until a client asks for `Shutdown`.
/// Connections are handled one at a time (see module docs for why).
pub fn serve(daemon: &mut Daemon, listener: &Listener) -> std::io::Result<()> {
    loop {
        let shutdown = match listener {
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                serve_connection(daemon, stream)
            }
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true).ok();
                serve_connection(daemon, stream)
            }
        };
        if shutdown {
            return Ok(());
        }
    }
}

/// Serves one connection; returns `true` if the peer asked the daemon
/// to shut down.
pub fn serve_connection<S: Read + Write>(daemon: &mut Daemon, mut stream: S) -> bool {
    // Handshake: the first frame must be a version-matched Hello.
    match read_request(&mut stream) {
        Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {
            let ok = Response::HelloOk {
                version: PROTOCOL_VERSION,
                shards: daemon.pool.len() as u32,
                slot: daemon.slot,
            };
            if write_response(&mut stream, &ok).is_err() {
                return false;
            }
        }
        Ok(Request::Hello { version }) => {
            let _ = write_response(
                &mut stream,
                &Response::Error {
                    message: format!(
                        "protocol version {version} not supported (daemon speaks {PROTOCOL_VERSION})"
                    ),
                },
            );
            return false;
        }
        Ok(_) => {
            let _ = write_response(
                &mut stream,
                &Response::Error {
                    message: "first request must be Hello".into(),
                },
            );
            return false;
        }
        Err(ReadError::Closed) | Err(ReadError::Transport) => return false,
        Err(ReadError::Malformed(message)) | Err(ReadError::Fatal(message)) => {
            let _ = write_response(&mut stream, &Response::Error { message });
            return false;
        }
    }

    loop {
        let request = match read_request(&mut stream) {
            Ok(r) => r,
            Err(ReadError::Closed) | Err(ReadError::Transport) => return false,
            Err(ReadError::Malformed(message)) => {
                // The frame layer is intact (we got a complete frame
                // that failed to parse), so the error is answerable and
                // the connection stays usable.
                if write_response(&mut stream, &Response::Error { message }).is_err() {
                    return false;
                }
                continue;
            }
            Err(ReadError::Fatal(message)) => {
                // An oversize length word leaves unread payload bytes in
                // the stream — answering and continuing would desync the
                // framing, so answer and hang up.
                let _ = write_response(&mut stream, &Response::Error { message });
                return false;
            }
        };
        let shutdown = matches!(request, Request::Shutdown);
        let response = daemon.handle(request);
        if write_response(&mut stream, &response).is_err() {
            return false;
        }
        if shutdown {
            return true;
        }
    }
}

enum ReadError {
    Closed,
    Transport,
    /// A complete frame arrived but its payload didn't parse — the
    /// connection is still frame-aligned and stays usable.
    Malformed(String),
    /// The framing itself is broken (oversize length word) — answer,
    /// then close.
    Fatal(String),
}

fn read_request<S: Read>(stream: &mut S) -> Result<Request, ReadError> {
    let payload = match read_frame(stream) {
        Ok(p) => p,
        Err(FrameError::Closed) => return Err(ReadError::Closed),
        Err(FrameError::Truncated) | Err(FrameError::Io(_)) => return Err(ReadError::Transport),
        Err(e @ FrameError::Oversize(_)) => {
            return Err(ReadError::Fatal(e.to_string()));
        }
    };
    let text = String::from_utf8(payload)
        .map_err(|_| ReadError::Malformed("request payload is not UTF-8".into()))?;
    serde_json::from_str(&text).map_err(|e| ReadError::Malformed(format!("bad request: {e:?}")))
}

fn write_response<S: Write>(stream: &mut S, response: &Response) -> std::io::Result<()> {
    let wire = serde_json::to_string(response)
        .map_err(|e| std::io::Error::other(format!("encode response: {e:?}")))?;
    write_frame(stream, wire.as_bytes())
}
