//! Workload replay against a running daemon, with latency and
//! throughput accounting.
//!
//! The generator builds the *same* network the daemon built (same
//! [`NetworkConfig`] + seed → bit-identical topology), instantiates a
//! [`WorkloadConfig`], and drives one `Submit` + `Tick` round-trip per
//! slot, timing each tick. The report carries p50/p99 tick latency
//! (over [`qdn_sim::stats::quantile`]) and decisions per second —
//! requests decided (served or rejected) per wall-clock second of
//! driving the daemon.

use std::io::{Read, Write};
use std::time::Instant;

use qdn_net::workload::{Workload, WorkloadConfig};
use qdn_net::QdnNetwork;
use serde::{Deserialize, Serialize};

use crate::client::{Client, ClientError};
use crate::shard::slot_rng;

/// RNG stream id for workload draws — distinct from every shard stream
/// and from the daemon's dynamics stream.
const WORKLOAD_STREAM: u64 = 2 << 40;

/// What to replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadConfig {
    /// Slots to drive.
    pub slots: u64,
    /// Seed for the workload's request draws.
    pub seed: u64,
    /// The traffic shape.
    pub workload: WorkloadConfig,
}

impl LoadConfig {
    /// 64 slots of the paper's `U[1,5]` workload.
    pub fn paper_default() -> Self {
        LoadConfig {
            slots: 64,
            seed: 11,
            workload: WorkloadConfig::paper_default(),
        }
    }
}

/// The generator's report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Slots driven.
    pub slots: u64,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests served.
    pub served: u64,
    /// Requests left unserved.
    pub unserved: u64,
    /// Total qubit cost charged.
    pub cost: u64,
    /// Wall-clock seconds spent driving (submit + tick round-trips).
    pub elapsed_s: f64,
    /// Requests decided per wall-clock second.
    pub decisions_per_sec: f64,
    /// Median tick round-trip latency, milliseconds.
    pub tick_p50_ms: f64,
    /// 99th-percentile tick round-trip latency, milliseconds.
    pub tick_p99_ms: f64,
}

/// Replays the configured workload through a connected, greeted client.
pub fn run<S: Read + Write>(
    client: &mut Client<S>,
    network: &QdnNetwork,
    config: &LoadConfig,
) -> Result<LoadReport, ClientError> {
    let mut workload = config.workload.build();
    let mut submitted = 0u64;
    let mut served = 0u64;
    let mut unserved = 0u64;
    let mut cost = 0u64;
    let mut tick_ms = Vec::with_capacity(config.slots as usize);
    let started = Instant::now();
    for t in 0..config.slots {
        let mut rng = slot_rng(config.seed, t, WORKLOAD_STREAM);
        let requests = workload.requests(t, network, &mut rng);
        submitted += requests.len() as u64;
        if !requests.is_empty() {
            client.submit(&requests)?;
        }
        let tick_start = Instant::now();
        let (_, decision, slot_cost) = client.tick()?;
        tick_ms.push(tick_start.elapsed().as_secs_f64() * 1e3);
        served += decision.assignments().len() as u64;
        unserved += decision.unserved().len() as u64;
        cost += slot_cost;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let decided = served + unserved;
    Ok(LoadReport {
        slots: config.slots,
        submitted,
        served,
        unserved,
        cost,
        elapsed_s,
        decisions_per_sec: if elapsed_s > 0.0 {
            decided as f64 / elapsed_s
        } else {
            0.0
        },
        tick_p50_ms: qdn_sim::stats::quantile(&tick_ms, 0.5),
        tick_p99_ms: qdn_sim::stats::quantile(&tick_ms, 0.99),
    })
}
