//! Workload replay against a running daemon, with latency and
//! throughput accounting.
//!
//! The generator builds the *same* network the daemon built (same
//! [`NetworkConfig`] + seed → bit-identical topology), instantiates a
//! [`WorkloadConfig`], and drives one `Submit` + `Tick` round-trip per
//! slot, timing each tick. The report carries p50/p99 tick latency
//! (over [`qdn_sim::stats::quantile`]) and decisions per second —
//! requests decided (served or rejected) per wall-clock second of
//! driving the daemon.

use std::io::{Read, Write};
use std::time::Instant;

use qdn_net::workload::{Workload, WorkloadConfig};
use qdn_net::QdnNetwork;
use serde::{Deserialize, Serialize};

use crate::client::{Client, ClientError, SubmitOutcome};
use crate::proto::Advisory;
use crate::shard::slot_rng;

/// RNG stream id for workload draws — distinct from every shard stream
/// and from the daemon's dynamics stream.
const WORKLOAD_STREAM: u64 = 2 << 40;

/// What to replay.
///
/// **Loud compat break (PR 9):** the `faults` field is required — see
/// MIGRATION.md §PR 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadConfig {
    /// Slots to drive.
    pub slots: u64,
    /// Seed for the workload's request draws.
    pub seed: u64,
    /// The traffic shape.
    pub workload: WorkloadConfig,
    /// Outage windows to declare (`Advise`) before driving — fault
    /// injection for the daemon's degradation paths.
    pub faults: Vec<Advisory>,
}

impl LoadConfig {
    /// 64 slots of the paper's `U[1,5]` workload, no injected faults.
    pub fn paper_default() -> Self {
        LoadConfig {
            slots: 64,
            seed: 11,
            workload: WorkloadConfig::paper_default(),
            faults: Vec::new(),
        }
    }
}

/// The generator's report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Slots driven.
    pub slots: u64,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests served.
    pub served: u64,
    /// Requests left unserved.
    pub unserved: u64,
    /// Total qubit cost charged.
    pub cost: u64,
    /// Requests dropped because their batch (or filtered resubmit)
    /// touched a dark region — the daemon answered `Degraded`.
    pub degraded: u64,
    /// Advisory windows declared before driving.
    pub advisories: u64,
    /// Candidate pairs the daemon prewarmed for the declared windows.
    pub prewarmed_pairs: u64,
    /// Wall-clock seconds spent driving (submit + tick round-trips).
    pub elapsed_s: f64,
    /// Requests decided per wall-clock second.
    pub decisions_per_sec: f64,
    /// Median tick round-trip latency, milliseconds.
    pub tick_p50_ms: f64,
    /// 99th-percentile tick round-trip latency, milliseconds.
    pub tick_p99_ms: f64,
}

/// Replays the configured workload through a connected, greeted client.
///
/// Declared faults are advised up front; during the run a `Degraded`
/// answer drops the batch's dark-endpoint requests (counted in
/// [`LoadReport::degraded`]) and resubmits the survivors, so a blackout
/// degrades throughput instead of stalling the generator.
pub fn run<S: Read + Write>(
    client: &mut Client<S>,
    network: &QdnNetwork,
    config: &LoadConfig,
) -> Result<LoadReport, ClientError> {
    let mut prewarmed_pairs = 0u64;
    for fault in &config.faults {
        let (_, prewarmed) = client.advise(fault.clone())?;
        prewarmed_pairs += u64::from(prewarmed);
    }
    let mut workload = config.workload.build();
    let mut submitted = 0u64;
    let mut served = 0u64;
    let mut unserved = 0u64;
    let mut degraded = 0u64;
    let mut cost = 0u64;
    let mut tick_ms = Vec::with_capacity(config.slots as usize);
    let started = Instant::now();
    for t in 0..config.slots {
        let mut rng = slot_rng(config.seed, t, WORKLOAD_STREAM);
        let mut requests = workload.requests(t, network, &mut rng);
        submitted += requests.len() as u64;
        if !requests.is_empty() {
            if let SubmitOutcome::Degraded { dark_nodes, .. } = client.submit(&requests)? {
                let before = requests.len();
                requests.retain(|p| {
                    dark_nodes.binary_search(&p.source().0).is_err()
                        && dark_nodes.binary_search(&p.destination().0).is_err()
                });
                degraded += (before - requests.len()) as u64;
                if !requests.is_empty() {
                    // The survivors avoid every dark node, so this
                    // resubmit must queue.
                    match client.submit(&requests)? {
                        SubmitOutcome::Queued { .. } => {}
                        SubmitOutcome::Degraded { .. } => {
                            return Err(ClientError::Protocol(
                                "filtered resubmit still degraded".into(),
                            ));
                        }
                    }
                }
            }
        }
        let tick_start = Instant::now();
        let (_, decision, slot_cost) = client.tick()?;
        tick_ms.push(tick_start.elapsed().as_secs_f64() * 1e3);
        served += decision.assignments().len() as u64;
        unserved += decision.unserved().len() as u64;
        cost += slot_cost;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let decided = served + unserved;
    Ok(LoadReport {
        slots: config.slots,
        submitted,
        served,
        unserved,
        cost,
        degraded,
        advisories: config.faults.len() as u64,
        prewarmed_pairs,
        elapsed_s,
        decisions_per_sec: if elapsed_s > 0.0 {
            decided as f64 / elapsed_s
        } else {
            0.0
        },
        tick_p50_ms: qdn_sim::stats::quantile(&tick_ms, 0.5),
        tick_p99_ms: qdn_sim::stats::quantile(&tick_ms, 0.99),
    })
}
