//! Shard-per-core warm sessions.
//!
//! The daemon owns one OS thread per shard; each thread owns a
//! [`EngineState`] (candidate route cache + selection session +
//! fidelity-filter cache) and a [`VirtualQueue`] over its slice of the
//! budget, and blocks on a plain mpsc channel for work. SD pairs are
//! mapped to shards by **canonical source node** ([`shard_of`]), so a
//! pair's warm region state — memos, λ seeds, previous route — always
//! lands on the thread that already holds it. There is no async
//! runtime: one blocking thread per shard, rendezvous by channel.
//!
//! Every tick touches every shard (even ones with no arrivals): an idle
//! slot must still drain the shard's virtual queue (Eq. 7 with
//! `c_t = 0`), and doing it on the shard thread keeps all queue state
//! single-owner.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use qdn_core::engine::{self, EngineState, SlotDecisionRequest};
use qdn_core::lyapunov::VirtualQueue;
use qdn_core::problem::PerSlotContext;
use qdn_core::types::Decision;
use qdn_core::OscarConfig;
use qdn_graph::EdgeId;
use qdn_net::{CapacitySnapshot, QdnNetwork, SdPair};
use rand::SeedableRng;

use crate::proto::ShardSnapshot;

/// The shard a pair's warm state lives on: canonical source node id
/// modulo the shard count. Orientation-stable (a pair and its reverse
/// share a shard), so region reuse survives direction flips.
pub fn shard_of(pair: SdPair, shards: u32) -> usize {
    (pair.canonical().source().0 % shards.max(1)) as usize
}

/// Deterministic RNG stream for `(seed, slot, shard)` — splitmix64 over
/// the three words. Restart determinism hangs on this: the uninterrupted
/// daemon and the restored one derive the identical stream for every
/// slot they decide, so RNG state never needs to be serialized.
pub fn slot_rng(seed: u64, slot: u64, shard: u64) -> rand::rngs::StdRng {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let mixed = splitmix(seed ^ splitmix(slot ^ splitmix(shard)));
    rand::rngs::StdRng::seed_from_u64(mixed)
}

enum ShardMsg {
    Decide {
        slot: u64,
        requests: Vec<SdPair>,
        snapshot: Arc<CapacitySnapshot>,
        reply: mpsc::Sender<(usize, Decision)>,
    },
    Snapshot {
        reply: mpsc::Sender<(usize, ShardSnapshot)>,
    },
    Restore {
        snapshot: Box<ShardSnapshot>,
        reply: mpsc::Sender<Result<(), String>>,
    },
    Reset {
        reply: mpsc::Sender<()>,
    },
    Prewarm {
        edges: Vec<EdgeId>,
        reply: mpsc::Sender<(usize, usize)>,
    },
    Stop,
}

struct ShardWorker {
    index: usize,
    seed: u64,
    network: Arc<QdnNetwork>,
    oscar: Arc<OscarConfig>,
    state: EngineState,
    queue: VirtualQueue,
    spent: u64,
}

impl ShardWorker {
    fn fresh_queue(oscar: &OscarConfig, shards: u32) -> VirtualQueue {
        VirtualQueue::new(
            oscar.q0,
            oscar.total_budget / f64::from(shards.max(1)),
            oscar.horizon,
        )
    }

    fn run(mut self, rx: mpsc::Receiver<ShardMsg>, shards: u32) {
        while let Ok(msg) = rx.recv() {
            match msg {
                ShardMsg::Decide {
                    slot,
                    requests,
                    snapshot,
                    reply,
                } => {
                    let ctx = PerSlotContext::oscar(
                        &self.network,
                        &snapshot,
                        self.oscar.v,
                        self.queue.value(),
                    );
                    let mut rng = slot_rng(self.seed, slot, self.index as u64);
                    let decision = engine::decide(
                        &mut self.state,
                        SlotDecisionRequest {
                            network: &self.network,
                            requests: &requests,
                            ctx: &ctx,
                            selector: &self.oscar.selector,
                            allocation: &self.oscar.allocation,
                            fidelity_target: self.oscar.fidelity_target,
                            rng: &mut rng,
                        },
                    );
                    let cost = decision.total_cost();
                    self.spent += cost;
                    self.queue.update(cost);
                    let _ = reply.send((self.index, decision));
                }
                ShardMsg::Snapshot { reply } => {
                    let _ = reply.send((
                        self.index,
                        ShardSnapshot {
                            engine: self.state.snapshot(),
                            queue: self.queue,
                            spent: self.spent,
                        },
                    ));
                }
                ShardMsg::Restore { snapshot, reply } => {
                    let result = EngineState::restore(&snapshot.engine).map(|state| {
                        self.state = state;
                        self.queue = snapshot.queue;
                        self.spent = snapshot.spent;
                    });
                    let _ = reply.send(result);
                }
                ShardMsg::Reset { reply } => {
                    self.state.reset();
                    self.queue = Self::fresh_queue(&self.oscar, shards);
                    self.spent = 0;
                    let _ = reply.send(());
                }
                ShardMsg::Prewarm { edges, reply } => {
                    let pairs = self.state.prewarm_dead_edges(&self.network, &edges);
                    let _ = reply.send((self.index, pairs));
                }
                ShardMsg::Stop => break,
            }
        }
    }
}

/// The daemon's worker threads, one per shard. Dropping the pool stops
/// and joins every thread.
///
/// Shard threads are long-lived *owners* of warm state, not a
/// parallelism mechanism — intra-shard parallel stages (component
/// solves, Gibbs restarts) run on the shared work-stealing solve pool,
/// which every shard thread installs around its message loop so
/// `threadpool::current()` inside the engine resolves to the pool the
/// daemon configured.
pub struct ShardPool {
    senders: Vec<mpsc::Sender<ShardMsg>>,
    joins: Vec<thread::JoinHandle<()>>,
    solve_pool: threadpool::ThreadPool,
}

impl ShardPool {
    /// Spawns `shards` worker threads over a shared network, each with
    /// the `threads`-wide shared solve pool installed (`0` = one worker
    /// per available CPU). Fails if the OS refuses a thread;
    /// already-spawned workers are stopped and joined by the partial
    /// pool's `Drop`.
    pub fn new(
        seed: u64,
        shards: u32,
        threads: usize,
        network: Arc<QdnNetwork>,
        oscar: Arc<OscarConfig>,
    ) -> Result<ShardPool, String> {
        let shards = shards.max(1);
        let solve_pool = threadpool::global_with(threads);
        let mut pool = ShardPool {
            senders: Vec::with_capacity(shards as usize),
            joins: Vec::with_capacity(shards as usize),
            solve_pool,
        };
        for index in 0..shards as usize {
            let (tx, rx) = mpsc::channel();
            let worker = ShardWorker {
                index,
                seed,
                network: Arc::clone(&network),
                oscar: Arc::clone(&oscar),
                state: EngineState::new(oscar.route_limits),
                queue: ShardWorker::fresh_queue(&oscar, shards),
                spent: 0,
            };
            let solve_pool = pool.solve_pool.clone();
            // qdn-lint: allow(raw-spawn, reason="shard threads are long-lived warm-state owners keyed by shard index, not decision-path parallelism; parallel solve stages go through the installed compat pool")
            let join = thread::Builder::new()
                .name(format!("qdn-shard-{index}"))
                .spawn(move || solve_pool.install(|| worker.run(rx, shards)))
                .map_err(|e| format!("spawn shard thread {index}: {e}"))?;
            pool.joins.push(join);
            pool.senders.push(tx);
        }
        Ok(pool)
    }

    /// Counters of the shared solve pool (width, tasks executed, tasks
    /// stolen) — surfaced through `ServeStats`.
    pub fn solve_pool_stats(&self) -> threadpool::PoolStats {
        self.solve_pool.stats()
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Whether the pool has no shards (never true — `new` clamps to 1).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Decides one slot: every shard gets its request slice (empty ones
    /// included — idle shards still drain their queues) and the shared
    /// capacity snapshot; returns the per-shard decisions in shard
    /// order.
    ///
    /// Fails if a shard thread has died (panicked engine, killed
    /// thread); the pool is then unrecoverable and the caller must
    /// respawn it — see `Daemon::shard_failure`.
    pub fn decide_slot(
        &self,
        slot: u64,
        mut per_shard: Vec<Vec<SdPair>>,
        snapshot: CapacitySnapshot,
    ) -> Result<Vec<Decision>, String> {
        assert_eq!(per_shard.len(), self.len(), "one request slice per shard");
        let shared = Arc::new(snapshot);
        let (reply, inbox) = mpsc::channel();
        for (index, (tx, requests)) in self.senders.iter().zip(per_shard.drain(..)).enumerate() {
            tx.send(ShardMsg::Decide {
                slot,
                requests,
                snapshot: Arc::clone(&shared),
                reply: reply.clone(),
            })
            .map_err(|_| format!("shard thread {index} is gone"))?;
        }
        drop(reply);
        let mut decisions: Vec<(usize, Decision)> = inbox.iter().collect();
        if decisions.len() != self.len() {
            return Err(format!(
                "{} shard thread(s) died mid-slot",
                self.len() - decisions.len()
            ));
        }
        decisions.sort_unstable_by_key(|(i, _)| *i);
        Ok(decisions.into_iter().map(|(_, d)| d).collect())
    }

    /// Collects every shard's warm state, in shard order. Fails if a
    /// shard thread has died.
    pub fn snapshot(&self) -> Result<Vec<ShardSnapshot>, String> {
        let (reply, inbox) = mpsc::channel();
        for (index, tx) in self.senders.iter().enumerate() {
            tx.send(ShardMsg::Snapshot {
                reply: reply.clone(),
            })
            .map_err(|_| format!("shard thread {index} is gone"))?;
        }
        drop(reply);
        let mut shots: Vec<(usize, ShardSnapshot)> = inbox.iter().collect();
        if shots.len() != self.len() {
            return Err(format!(
                "{} shard thread(s) died mid-snapshot",
                self.len() - shots.len()
            ));
        }
        shots.sort_unstable_by_key(|(i, _)| *i);
        Ok(shots.into_iter().map(|(_, s)| s).collect())
    }

    /// Installs per-shard warm state (must be one snapshot per shard,
    /// in shard order). On any per-shard failure the error is returned
    /// and the pool is left in a mixed state — callers reset on error.
    pub fn restore(&self, shards: Vec<ShardSnapshot>) -> Result<(), String> {
        if shards.len() != self.len() {
            return Err(format!(
                "snapshot has {} shards, daemon has {}",
                shards.len(),
                self.len()
            ));
        }
        let (reply, inbox) = mpsc::channel();
        for (index, (tx, snapshot)) in self.senders.iter().zip(shards).enumerate() {
            tx.send(ShardMsg::Restore {
                snapshot: Box::new(snapshot),
                reply: reply.clone(),
            })
            .map_err(|_| format!("shard thread {index} is gone"))?;
        }
        drop(reply);
        let results: Vec<Result<(), String>> = inbox.iter().collect();
        if results.len() != self.len() {
            return Err("a shard thread died mid-restore".into());
        }
        results.into_iter().collect()
    }

    /// Pre-warms candidate repair on every shard for the assumed death
    /// of `edges` (an announced maintenance or outage window that has
    /// not opened yet); returns the total number of pairs prewarmed
    /// across shards. Purely an optimization: a prewarm hit installs
    /// the exact routes a live repair would compute, so decisions are
    /// bit-identical whether or not this ran. Fails if a shard thread
    /// has died.
    pub fn prewarm(&self, edges: &[EdgeId]) -> Result<usize, String> {
        let (reply, inbox) = mpsc::channel();
        for (index, tx) in self.senders.iter().enumerate() {
            tx.send(ShardMsg::Prewarm {
                edges: edges.to_vec(),
                reply: reply.clone(),
            })
            .map_err(|_| format!("shard thread {index} is gone"))?;
        }
        drop(reply);
        let counts: Vec<(usize, usize)> = inbox.iter().collect();
        if counts.len() != self.len() {
            return Err(format!(
                "{} shard thread(s) died mid-prewarm",
                self.len() - counts.len()
            ));
        }
        Ok(counts.into_iter().map(|(_, pairs)| pairs).sum())
    }

    /// Resets every shard to cold state (fresh engine, fresh queue).
    /// Fails if a shard thread has died.
    pub fn reset(&self) -> Result<(), String> {
        let (reply, inbox) = mpsc::channel();
        for (index, tx) in self.senders.iter().enumerate() {
            tx.send(ShardMsg::Reset {
                reply: reply.clone(),
            })
            .map_err(|_| format!("shard thread {index} is gone"))?;
        }
        drop(reply);
        let acks = inbox.iter().count();
        if acks != self.len() {
            return Err(format!(
                "{} shard thread(s) died mid-reset",
                self.len() - acks
            ));
        }
        Ok(())
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Stop);
        }
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
    }
}
