//! Daemon integration: wire-level round-trips over a real Unix socket,
//! malformed-input behavior, and warm-restart bit-identity.

use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

use qdn_net::dynamics::DynamicsConfig;
use qdn_net::workload::{Workload, WorkloadConfig};
use qdn_serve::daemon::{serve, Daemon, Listener};
use qdn_serve::frame::{read_frame, write_frame};
use qdn_serve::proto::{Advisory, Request, Response, PROTOCOL_VERSION};
use qdn_serve::{Client, ServeConfig, SubmitOutcome};

fn socket_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("qdn-serve-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn spawn_daemon(config: ServeConfig, tag: &str) -> (PathBuf, std::thread::JoinHandle<()>) {
    let path = socket_path(tag);
    let listener = Listener::Unix(UnixListener::bind(&path).unwrap());
    let join = std::thread::spawn(move || {
        let mut daemon = Daemon::new(config).unwrap();
        serve(&mut daemon, &listener).unwrap();
    });
    (path, join)
}

#[test]
fn end_to_end_over_unix_socket() {
    let (path, join) = spawn_daemon(ServeConfig::paper_default(), "e2e");
    let mut client = Client::new(UnixStream::connect(&path).unwrap());
    let (shards, slot) = client.hello().unwrap();
    assert_eq!(shards, 4);
    assert_eq!(slot, 0);

    let mut workload = WorkloadConfig::paper_default().build();
    let network = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        qdn_net::NetworkConfig::paper_default()
            .build(&mut rng)
            .unwrap()
    };
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(3)
    };
    let mut decided = 0usize;
    for t in 0..8u64 {
        let requests = workload.requests(t, &network, &mut rng);
        let outcome = client.submit(&requests).unwrap();
        assert_eq!(
            outcome,
            SubmitOutcome::Queued {
                pending: requests.len() as u32
            }
        );
        let (slot, decision, cost) = client.tick().unwrap();
        assert_eq!(slot, t);
        assert_eq!(decision.request_count(), requests.len());
        assert_eq!(decision.total_cost(), cost);
        decided += decision.request_count();
    }
    assert!(decided > 0, "eight paper-scale slots must decide something");

    let stats = client.stats().unwrap();
    assert_eq!(stats.slot, 8);
    assert_eq!(stats.served + stats.unserved, decided as u64);
    assert_eq!(stats.queue_values.len(), 4);

    client.shutdown().unwrap();
    join.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn hello_version_mismatch_rejected() {
    let (path, join) = spawn_daemon(ServeConfig::paper_default(), "ver");
    let mut stream = UnixStream::connect(&path).unwrap();
    let wire = serde_json::to_string(&Request::Hello { version: 999 }).unwrap();
    write_frame(&mut stream, wire.as_bytes()).unwrap();
    let payload = read_frame(&mut stream).unwrap();
    let response: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(matches!(response, Response::Error { .. }));
    // The daemon hung up: the next read sees EOF.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);

    // And it still accepts fresh connections.
    let mut client = Client::new(UnixStream::connect(&path).unwrap());
    client.hello().unwrap();
    client.shutdown().unwrap();
    join.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn malformed_and_truncated_frames() {
    let (path, join) = spawn_daemon(ServeConfig::paper_default(), "bad");

    // Malformed JSON in a well-formed frame: answered with Error, and
    // the connection stays usable.
    let mut stream = UnixStream::connect(&path).unwrap();
    let hello = serde_json::to_string(&Request::Hello {
        version: PROTOCOL_VERSION,
    })
    .unwrap();
    write_frame(&mut stream, hello.as_bytes()).unwrap();
    let _ = read_frame(&mut stream).unwrap();
    write_frame(&mut stream, b"{\"Tick\"").unwrap();
    let payload = read_frame(&mut stream).unwrap();
    let response: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(matches!(response, Response::Error { .. }));
    write_frame(
        &mut stream,
        serde_json::to_string(&Request::Stats).unwrap().as_bytes(),
    )
    .unwrap();
    let payload = read_frame(&mut stream).unwrap();
    let response: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(matches!(response, Response::StatsOk { .. }));
    drop(stream);

    // A truncated frame (header promises more than arrives) drops the
    // connection without wedging the daemon.
    let mut stream = UnixStream::connect(&path).unwrap();
    write_frame(&mut stream, hello.as_bytes()).unwrap();
    let _ = read_frame(&mut stream).unwrap();
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(b"only ten b").unwrap();
    drop(stream);

    // An oversize length word is answered with Error, then close.
    let mut stream = UnixStream::connect(&path).unwrap();
    write_frame(&mut stream, hello.as_bytes()).unwrap();
    let _ = read_frame(&mut stream).unwrap();
    stream
        .write_all(&(qdn_serve::frame::MAX_FRAME_LEN + 1).to_be_bytes())
        .unwrap();
    let payload = read_frame(&mut stream).unwrap();
    let response: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(matches!(response, Response::Error { .. }));
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);

    // Invalid submissions are rejected without queueing anything.
    let mut client = Client::new(UnixStream::connect(&path).unwrap());
    client.hello().unwrap();
    assert!(client
        .submit(&[qdn_net::SdPair::new(qdn_graph::NodeId(0), qdn_graph::NodeId(1)).unwrap()])
        .is_ok());
    // Equal endpoints can't be built as an SdPair client-side, so drive
    // the raw verb.
    let err = match client
        .call_raw(&Request::Submit {
            pairs: vec![(2, 2)],
        })
        .unwrap()
    {
        Response::Error { message } => message,
        other => panic!("expected Error, got {other:?}"),
    };
    assert!(err.contains("endpoints"), "unexpected message: {err}");
    let err = match client
        .call_raw(&Request::Submit {
            pairs: vec![(0, 4096)],
        })
        .unwrap()
    {
        Response::Error { message } => message,
        other => panic!("expected Error, got {other:?}"),
    };
    assert!(err.contains("out of range"), "unexpected message: {err}");

    client.shutdown().unwrap();
    join.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn restart_warm_is_bit_identical() {
    // Churn dynamics so the restore path must also replay the failure
    // process; persistent workload so the sessions are genuinely warm.
    let mut config = ServeConfig::paper_default();
    config.dynamics = DynamicsConfig::Churn {
        failure_rate: 0.3,
        mttr: 3.0,
        seed: 99,
        base: Box::new(DynamicsConfig::Static),
    };
    let workload_cfg = WorkloadConfig::Persistent {
        pairs_per_slot: 5,
        keep_probability: 0.8,
    };

    let mut original = Daemon::new(config.clone()).unwrap();

    // Drive the first 6 slots, capturing the submissions so the
    // restored daemon sees the identical arrivals.
    let mut workload = workload_cfg.build();
    let mut arrivals: Vec<Vec<(u32, u32)>> = Vec::new();
    for t in 0..12u64 {
        let mut rng = qdn_serve::shard::slot_rng(5, t, 1);
        let requests = workload.requests(t, original.network(), &mut rng);
        arrivals.push(
            requests
                .iter()
                .map(|p| (p.source().0, p.destination().0))
                .collect(),
        );
    }
    for pairs in arrivals.iter().take(6) {
        let _ = original.handle(Request::Submit {
            pairs: pairs.clone(),
        });
        let _ = original.handle(Request::Tick);
    }
    let snapshot = original.snapshot().unwrap();
    let wire = serde_json::to_string(&snapshot).unwrap();

    // Continue the original for 6 more slots.
    let mut continued = Vec::new();
    for pairs in arrivals.iter().skip(6) {
        let _ = original.handle(Request::Submit {
            pairs: pairs.clone(),
        });
        continued.push(original.handle(Request::Tick));
    }

    // Cold process + restore from the wire snapshot, same 6 slots.
    let mut restored = Daemon::new(config).unwrap();
    let decoded = serde_json::from_str(&wire).unwrap();
    assert_eq!(restored.restore(&decoded).unwrap(), 6);
    let mut resumed = Vec::new();
    for pairs in arrivals.iter().skip(6) {
        let _ = restored.handle(Request::Submit {
            pairs: pairs.clone(),
        });
        resumed.push(restored.handle(Request::Tick));
    }

    assert_eq!(continued, resumed, "post-restore decisions diverged");
    // And the end states themselves re-snapshot identically.
    assert_eq!(
        serde_json::to_string(&original.snapshot().unwrap()).unwrap(),
        serde_json::to_string(&restored.snapshot().unwrap()).unwrap()
    );
}

#[test]
fn regional_blackout_then_recovery() {
    // Full socket round-trip of the PR 9 degradation path: declare a
    // regional outage ahead of time, watch submits touching the region
    // turn into typed Degraded answers for exactly the window's slots,
    // and turn back into ordinary decisions when the region recovers.
    let (path, join) = spawn_daemon(ServeConfig::paper_default(), "blackout");
    let mut client = Client::new(UnixStream::connect(&path).unwrap());
    client.hello().unwrap();

    let pair =
        |s: u32, d: u32| qdn_net::SdPair::new(qdn_graph::NodeId(s), qdn_graph::NodeId(d)).unwrap();
    let inside = pair(1, 2); // endpoints in the region going dark
    let outside = pair(5, 9); // avoids the region entirely
    let batch = [inside, outside];

    // Warm the shards on both pairs before declaring the outage, so
    // the advisory has tracked pairs to prewarm.
    for t in 0..2u64 {
        assert!(matches!(
            client.submit(&batch).unwrap(),
            SubmitOutcome::Queued { .. }
        ));
        let (slot, decision, _) = client.tick().unwrap();
        assert_eq!(slot, t);
        assert_eq!(decision.request_count(), 2);
    }

    // Region {1, 2} goes dark over [3, 6); the window is still ahead,
    // so the daemon prewarms candidate repair for its incident edges.
    let (advisories, prewarmed) = client
        .advise(Advisory {
            start: 3,
            end: 6,
            nodes: vec![1, 2],
            planned: false,
        })
        .unwrap();
    assert_eq!(advisories, 1);
    assert!(prewarmed >= 1, "warm shards track pair (1,2): {prewarmed}");

    // Slot 2: window not open yet — business as usual.
    assert!(matches!(
        client.submit(&batch).unwrap(),
        SubmitOutcome::Queued { .. }
    ));
    let (_, decision, _) = client.tick().unwrap();
    assert_eq!(decision.request_count(), 2);

    // Slots 3..6: submits touching the dark region answer Degraded;
    // the filtered remainder still queues and still decides.
    for t in 3..6u64 {
        match client.submit(&batch).unwrap() {
            SubmitOutcome::Degraded { slot, dark_nodes } => {
                assert_eq!(slot, t);
                assert_eq!(dark_nodes, vec![1, 2]);
            }
            other => panic!("slot {t}: expected Degraded, got {other:?}"),
        }
        assert!(matches!(
            client.submit(&[outside]).unwrap(),
            SubmitOutcome::Queued { .. }
        ));
        let (slot, decision, _) = client.tick().unwrap();
        assert_eq!(slot, t);
        assert_eq!(decision.request_count(), 1, "only the outside pair decided");
    }

    // Slot 6: the window closed — Degraded turns back into decisions
    // covering the region pair.
    assert!(matches!(
        client.submit(&batch).unwrap(),
        SubmitOutcome::Queued { .. }
    ));
    let (slot, decision, _) = client.tick().unwrap();
    assert_eq!(slot, 6);
    assert_eq!(decision.request_count(), 2);

    client.shutdown().unwrap();
    join.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn restore_rejects_mismatched_snapshots() {
    let mut daemon = Daemon::new(ServeConfig::paper_default()).unwrap();
    let mut snapshot = daemon.snapshot().unwrap();
    snapshot.version += 1;
    assert!(daemon.restore(&snapshot).is_err());

    let mut snapshot = daemon.snapshot().unwrap();
    snapshot.shards.pop();
    let err = daemon.restore(&snapshot).unwrap_err();
    assert!(err.contains("shards"), "unexpected error: {err}");
    // The failed restore reset the daemon rather than leaving a mixed
    // state.
    assert_eq!(daemon.slot(), 0);
}
