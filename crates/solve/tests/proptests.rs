//! Property-based tests for the optimization substrate.

use proptest::prelude::*;
use qdn_solve::brute::brute_force_best;
use qdn_solve::greedy::greedy_allocate;
use qdn_solve::relaxed::{
    repair_feasibility, solve_relaxed, solve_relaxed_warm, DualMethod, RelaxedOptions,
};
use qdn_solve::rounding::{round_down_and_fill, satisfies_rounding_relation};
use qdn_solve::{AllocationInstance, PackingConstraint, Variable};

/// Strategy: options for either dual method (default everything else).
fn arb_method() -> impl Strategy<Value = RelaxedOptions> {
    bool::ANY.prop_map(|accelerated| RelaxedOptions {
        method: if accelerated {
            DualMethod::Accelerated
        } else {
            DualMethod::Subgradient
        },
        ..RelaxedOptions::default()
    })
}

/// Strategy: a feasible random instance with 1..5 variables and 1..4
/// overlapping packing constraints.
fn arb_instance() -> impl Strategy<Value = AllocationInstance> {
    (1usize..5).prop_flat_map(|nv| {
        let vars = proptest::collection::vec(0.05f64..0.95, nv);
        let cons = proptest::collection::vec(
            (
                proptest::collection::btree_set(0..nv, 1..=nv),
                0u32..8, // extra capacity above the member count
            ),
            1..4,
        );
        let v_weight = 1.0f64..5000.0;
        let price = 0.0f64..100.0;
        (vars, cons, v_weight, price).prop_map(|(ps, cons, v, price)| {
            let constraints = cons
                .into_iter()
                .map(|(members, extra)| {
                    let members: Vec<usize> = members.into_iter().collect();
                    PackingConstraint::new(members.len() as u32 + extra, members)
                })
                .collect();
            AllocationInstance::new(
                ps.into_iter().map(Variable::new).collect(),
                constraints,
                v,
                price,
            )
            .expect("constructed feasible at all-ones")
        })
    })
}

proptest! {
    /// The relaxed solver always returns a feasible point whose value is
    /// at most the dual bound.
    #[test]
    fn relaxed_feasible_and_bounded(inst in arb_instance()) {
        let s = solve_relaxed(&inst, &RelaxedOptions::default()).unwrap();
        prop_assert!(inst.is_feasible_real(&s.x, 1e-6));
        prop_assert!(s.primal_value <= s.dual_bound + 1e-6 * (1.0 + s.dual_bound.abs()));
    }

    /// Rounding preserves feasibility and the Eq. 8 relation, and the
    /// integer solution is no better than the relaxed one.
    #[test]
    fn rounding_sound(inst in arb_instance()) {
        let s = solve_relaxed(&inst, &RelaxedOptions::default()).unwrap();
        let n = round_down_and_fill(&inst, &s.x).unwrap();
        prop_assert!(inst.is_feasible_int(&n));
        prop_assert!(satisfies_rounding_relation(&s.x, &n));
        // Relaxation dominates any integer point.
        prop_assert!(inst.objective_int(&n) <= s.dual_bound + 1e-4 * (1.0 + s.dual_bound.abs()));
    }

    /// Greedy always returns a feasible point at least as good as
    /// all-ones.
    #[test]
    fn greedy_feasible_and_improving(inst in arb_instance()) {
        let n = greedy_allocate(&inst).unwrap();
        prop_assert!(inst.is_feasible_int(&n));
        let base = inst.objective_int(&inst.lower_bound_point());
        prop_assert!(inst.objective_int(&n) >= base - 1e-9);
    }

    /// Both integer allocators stay within the Prop. 2 gap
    /// Δ = V · (#vars) · ln(2 − p_min) of the exact optimum on small
    /// instances.
    #[test]
    fn integer_allocators_within_delta(inst in arb_instance()) {
        let (_, opt) = brute_force_best(&inst, 6);
        let p_min = inst.vars().iter().map(|v| v.p).fold(1.0, f64::min);
        let delta = inst.v_weight() * inst.num_vars() as f64 * (2.0 - p_min).ln();

        let s = solve_relaxed(&inst, &RelaxedOptions::default()).unwrap();
        let rounded = round_down_and_fill(&inst, &s.x).unwrap();
        prop_assert!(opt - inst.objective_int(&rounded) <= delta + 1e-6,
            "relax+round gap {} > delta {delta}", opt - inst.objective_int(&rounded));

        let greedy = greedy_allocate(&inst).unwrap();
        prop_assert!(opt - inst.objective_int(&greedy) <= delta + 1e-6,
            "greedy gap {} > delta {delta}", opt - inst.objective_int(&greedy));
    }

    /// Feasibility repair maps arbitrary points above the lower bound into
    /// the feasible region without dropping below 1.
    #[test]
    fn repair_always_feasible(inst in arb_instance(), scale in 1.0f64..20.0) {
        let wild: Vec<f64> = (0..inst.num_vars()).map(|j| 1.0 + scale * (j as f64 + 1.0)).collect();
        let fixed = repair_feasibility(&inst, &wild);
        prop_assert!(inst.is_feasible_real(&fixed, 1e-9));
        prop_assert!(fixed.iter().all(|&v| v >= 1.0 - 1e-12));
    }

    /// `converged == true` is a *certificate*: the reported relative
    /// duality gap is at most the acceptance gap the run used (the
    /// strict `gap_tolerance` for cold solves), for both dual methods.
    #[test]
    fn converged_implies_certified_gap(inst in arb_instance(), opts in arb_method()) {
        let s = solve_relaxed(&inst, &opts).unwrap();
        if s.converged {
            prop_assert!(
                s.relative_gap() <= opts.gap_tolerance + 1e-12,
                "{:?} claims convergence at relative gap {} > tolerance {}",
                opts.method, s.relative_gap(), opts.gap_tolerance
            );
        }
        // Either way the bounds must bracket: primal ≤ dual (+ fp slack).
        prop_assert!(s.primal_value <= s.dual_bound + 1e-6 * (1.0 + s.dual_bound.abs()));
    }

    /// The two dual methods solve the same relaxation: their primal
    /// values both lie within their certified duality gaps of the common
    /// optimum, so they disagree by at most the sum of the gaps.
    #[test]
    fn accel_matches_subgradient_objective(inst in arb_instance()) {
        let sub = solve_relaxed(&inst, &RelaxedOptions {
            method: DualMethod::Subgradient,
            ..RelaxedOptions::default()
        }).unwrap();
        let acc = solve_relaxed(&inst, &RelaxedOptions {
            method: DualMethod::Accelerated,
            ..RelaxedOptions::default()
        }).unwrap();
        prop_assert!(inst.is_feasible_real(&acc.x, 1e-6));
        let tol = sub.gap().abs() + acc.gap().abs()
            + 1e-9 * (1.0 + sub.primal_value.abs());
        prop_assert!(
            (sub.primal_value - acc.primal_value).abs() <= tol,
            "subgradient {} vs accelerated {} (tol {tol}, gaps {} / {})",
            sub.primal_value, acc.primal_value, sub.gap(), acc.gap()
        );
    }

    /// Warm-started solves agree with the cold solve within the solver
    /// tolerance: both primal values lie within their duality gaps of the
    /// common relaxed optimum, so they differ by at most the larger gap.
    /// The warm seed is a perturbed copy of the cold λ — the "neighboring
    /// profile" shape the profile evaluator's store produces.
    #[test]
    fn warm_vs_cold_objective_agreement(
        inst in arb_instance(),
        perturb in 0.5f64..2.0,
        offset in 0.0f64..5.0,
        opts in arb_method(),
    ) {
        let cold = solve_relaxed(&inst, &opts).unwrap();
        let seed: Vec<f64> = cold.lambda.iter().map(|&l| l * perturb + offset).collect();
        let warm = solve_relaxed_warm(&inst, &opts, Some(&seed)).unwrap();

        // Same guarantees as the cold solve.
        prop_assert!(inst.is_feasible_real(&warm.x, 1e-6));
        prop_assert!(warm.primal_value <= warm.dual_bound + 1e-6 * (1.0 + warm.dual_bound.abs()));

        // Objective agreement within solver tolerance. The gap itself is
        // bounded by the relative tolerance when the solve converged; use
        // the measured gaps (plus slack) as the yardstick either way.
        let tol = cold.gap().abs().max(warm.gap().abs()) + 1e-9 * (1.0 + cold.primal_value.abs());
        prop_assert!(
            (warm.primal_value - cold.primal_value).abs() <= tol,
            "warm {} vs cold {} (tol {tol}, converged warm={} cold={})",
            warm.primal_value, cold.primal_value, warm.converged, cold.converged
        );
    }
}
