//! Closed-form scalar maximizer for the per-edge utility.
//!
//! With the Lagrangian dual prices fixed, the relaxed problem decouples
//! into one-dimensional problems of the form
//!
//! ```text
//! maximize  h(x) = V·ln(1 − β^x) − c·x      over x ∈ [lo, hi]
//! ```
//!
//! with `β = 1 − p ∈ (0, 1)`. Setting `t = β^x`, the stationarity
//! condition `h'(x) = 0` becomes `−V·ln(β)·t/(1 − t) = c`, i.e.
//! `t* = ρ/(1 + ρ)` with `ρ = c / (−V·ln β)`, so
//!
//! ```text
//! x* = ln(t*) / ln(β)
//! ```
//!
//! — a closed form, clamped into `[lo, hi]` by concavity.

/// The scalar edge utility `h(x) = V·ln(1 − β^x) − c·x` where `β = 1 − p`.
///
/// # Example
///
/// ```
/// use qdn_solve::scalar::edge_utility;
///
/// let h = edge_utility(0.5, 100.0, 1.0, 2.0);
/// assert!((h - (100.0 * 0.75f64.ln() - 2.0)).abs() < 1e-9);
/// ```
pub fn edge_utility(p: f64, v_weight: f64, price: f64, x: f64) -> f64 {
    v_weight * crate::instance::ln_success(p, x) - price * x
}

/// Maximizes `V·ln(1 − (1−p)^x) − c·x` over `x ∈ [lo, hi]` in closed form.
///
/// Concavity (paper Prop. 1) means the constrained maximizer is the
/// unconstrained stationary point clamped to the interval; with `c ≤ 0`
/// the function is increasing and the maximizer is `hi`.
///
/// # Panics
///
/// Debug-asserts `p ∈ (0,1)`, `v_weight > 0`, and `lo ≤ hi`.
///
/// # Example
///
/// ```
/// use qdn_solve::scalar::{argmax_edge_utility, edge_utility};
///
/// let (p, v, c) = (0.55, 2500.0, 10.0);
/// let x_star = argmax_edge_utility(p, v, c, 1.0, 50.0);
/// // No feasible point does better.
/// for x in [1.0, 2.0, x_star - 0.1, x_star + 0.1, 10.0, 50.0] {
///     assert!(edge_utility(p, v, c, x) <= edge_utility(p, v, c, x_star) + 1e-9);
/// }
/// ```
pub fn argmax_edge_utility(p: f64, v_weight: f64, price: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "p={p}");
    debug_assert!(v_weight > 0.0, "v_weight={v_weight}");
    debug_assert!(lo <= hi, "lo={lo} hi={hi}");
    if price <= 0.0 {
        // Strictly increasing utility: take everything available.
        return hi;
    }
    let ln_beta = f64::ln_1p(-p); // ln(1-p) < 0
    let rho = price / (-v_weight * ln_beta);
    stationary_point(rho, ln_beta).clamp(lo, hi)
}

/// The unconstrained stationary point `x* = ln(t*)/ln β` with
/// `t* = ρ/(1 + ρ)`, given `ρ = c/(−V·ln β)` and `ln β` (both already
/// computed by the caller).
///
/// This is the single definition of the closed form: the dual solver's
/// fused inner loop ([`crate::relaxed`]) caches `ln β` per variable and
/// calls this directly, skipping [`argmax_edge_utility`]'s recomputation
/// of `ln_1p(−p)` on every iteration.
#[inline]
pub fn stationary_point(rho: f64, ln_beta: f64) -> f64 {
    // t* in (0, 1); x* = ln(t*)/ln(beta) > 0.
    let t_star = rho / (1.0 + rho);
    t_star.ln() / ln_beta
}

/// The dual-objective log term at the interior stationary point:
/// `ln P(x*) = ln(1 − t*) = −ln(1 + ρ)`.
///
/// At `x*` the failure mass is `t* = ρ/(1 + ρ)`, so the success log
/// collapses to a single `ln_1p` — the identity both dual inner loops
/// ([`crate::relaxed`] and [`crate::accel`]) use to evaluate the dual
/// without an `exp`/`ln` pair per variable per iteration. This is also
/// where the dual's smoothness is visible in closed form: the
/// per-variable conjugate value is the softplus-type function
/// `V·(−ln(1+ρ)) − c·x*(ρ)`, infinitely differentiable in the price on
/// the interior segment.
#[inline]
pub fn interior_log_term(rho: f64) -> f64 {
    -f64::ln_1p(rho)
}

/// Derivative `h'(x) = −V·ln(β)·β^x/(1 − β^x) − c`.
///
/// Exposed for KKT residual checks in tests and diagnostics.
pub fn d_edge_utility(p: f64, v_weight: f64, price: f64, x: f64) -> f64 {
    let ln_beta = f64::ln_1p(-p);
    let ln_rho = x * ln_beta;
    let ratio = ln_rho.exp() / (-f64::exp_m1(ln_rho));
    -v_weight * ln_beta * ratio - price
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_maximum_has_zero_derivative() {
        let (p, v, c) = (0.55, 2500.0, 25.0);
        let x = argmax_edge_utility(p, v, c, 1.0, 1e6);
        assert!(x > 1.0 && x < 1e6, "x={x} should be interior");
        let d = d_edge_utility(p, v, c, x);
        assert!(d.abs() < 1e-6, "derivative at maximizer should vanish: {d}");
    }

    #[test]
    fn maximum_beats_grid() {
        for &(p, v, c) in &[(0.3, 100.0, 2.0), (0.55, 2500.0, 50.0), (0.9, 10.0, 0.5)] {
            let x_star = argmax_edge_utility(p, v, c, 1.0, 40.0);
            let best = edge_utility(p, v, c, x_star);
            let mut grid_best = f64::NEG_INFINITY;
            for i in 0..=4000 {
                let x = 1.0 + 39.0 * i as f64 / 4000.0;
                grid_best = grid_best.max(edge_utility(p, v, c, x));
            }
            assert!(
                best >= grid_best - 1e-6,
                "p={p} v={v} c={c}: closed form {best} vs grid {grid_best}"
            );
        }
    }

    #[test]
    fn zero_price_takes_upper_bound() {
        assert_eq!(argmax_edge_utility(0.5, 10.0, 0.0, 1.0, 7.0), 7.0);
        assert_eq!(argmax_edge_utility(0.5, 10.0, -3.0, 1.0, 7.0), 7.0);
    }

    #[test]
    fn huge_price_clamps_to_lower_bound() {
        let x = argmax_edge_utility(0.5, 1.0, 1e9, 1.0, 100.0);
        assert_eq!(x, 1.0);
    }

    #[test]
    fn maximizer_decreases_with_price() {
        let mut prev = f64::INFINITY;
        for c in [0.1, 1.0, 10.0, 100.0] {
            let x = argmax_edge_utility(0.55, 2500.0, c, 1.0, 1e6);
            assert!(x <= prev);
            prev = x;
        }
    }

    #[test]
    fn maximizer_increases_with_v() {
        let mut prev = 0.0;
        for v in [10.0, 100.0, 1000.0, 10000.0] {
            let x = argmax_edge_utility(0.55, v, 10.0, 1.0, 1e6);
            assert!(x >= prev);
            prev = x;
        }
    }

    #[test]
    fn interior_log_term_matches_direct_evaluation() {
        // At the interior stationary point, ln(1 − β^{x*}) = −ln(1+ρ).
        for &(p, v, c) in &[(0.3, 100.0, 2.0), (0.55, 2500.0, 50.0)] {
            let ln_beta = f64::ln_1p(-p);
            let rho = c / (-v * ln_beta);
            let x_star = stationary_point(rho, ln_beta);
            let direct = crate::instance::ln_success(p, x_star);
            assert!(
                (interior_log_term(rho) - direct).abs() < 1e-12,
                "p={p}: {} vs {direct}",
                interior_log_term(rho)
            );
        }
    }

    #[test]
    fn derivative_sign_brackets_maximizer() {
        let (p, v, c) = (0.4, 500.0, 5.0);
        let x = argmax_edge_utility(p, v, c, 1.0, 1e6);
        assert!(d_edge_utility(p, v, c, x - 0.5) > 0.0);
        assert!(d_edge_utility(p, v, c, x + 0.5) < 0.0);
    }
}
