//! Optimization substrate for per-slot entanglement routing.
//!
//! The per-slot problem P2 with a fixed route selection is (paper §IV-B):
//!
//! ```text
//! maximize   Σ_j  V·ln(1 − (1 − p_j)^{x_j}) − κ·x_j
//! subject to Σ_{j ∈ c} x_j ≤ cap_c          for every packing constraint c
//!            x_j ≥ 1, integer
//! ```
//!
//! where each variable `j` is the channel allocation of one edge of one
//! selected route, packing constraints come from node qubit capacities
//! (Eq. 4), edge channel capacities (Eq. 5), and — for the myopic
//! baselines — a per-slot budget, and `κ` is the Lyapunov virtual-queue
//! price `q_t` (0 for the baselines).
//!
//! This crate solves that problem three ways:
//!
//! * [`relaxed`] — the paper's Algorithm 2: continuous relaxation
//!   (`x ≥ 1`), which is convex (Prop. 1), solved by Lagrangian dual
//!   decomposition with *closed-form* scalar maximizers ([`scalar`]);
//!   the dual iteration is either projected subgradient or the
//!   accelerated FISTA method in [`accel`] (the default — see
//!   [`relaxed::DualMethod`]),
//! * [`rounding`] — "down-round and allocate surplus", preserving
//!   feasibility and the Eq. 8 relation, giving the Δ-optimality of
//!   Prop. 2,
//! * [`greedy`] — a marginal-gain integer allocator used by the MF/MA
//!   baselines (budget-capped) and as an ablation against relax-and-round,
//! * [`brute`] — exact enumeration for small instances (tests, gap
//!   measurements).
//!
//! The problem description itself lives in [`instance`].
//!
//! # Example
//!
//! ```
//! use qdn_solve::instance::{AllocationInstance, PackingConstraint, Variable};
//! use qdn_solve::relaxed::solve_relaxed;
//! use qdn_solve::rounding::round_down_and_fill;
//!
//! // One route of two edges (p = 0.55), a shared middle node with 4
//! // qubits, V = 100, price 1.
//! let instance = AllocationInstance::new(
//!     vec![Variable::new(0.55), Variable::new(0.55)],
//!     vec![PackingConstraint::new(4, vec![0, 1])],
//!     100.0,
//!     1.0,
//! ).unwrap();
//! let relaxed = solve_relaxed(&instance, &Default::default()).unwrap();
//! let rounded = round_down_and_fill(&instance, &relaxed.x).unwrap();
//! assert!(instance.is_feasible_int(&rounded));
//! ```

#![forbid(unsafe_code)]
pub mod accel;
pub mod assemble;
pub mod brute;
pub mod components;
pub mod greedy;
pub mod instance;
pub mod relaxed;
pub mod rounding;
pub mod scalar;

pub use assemble::RouteAssembler;
pub use components::{ComponentPartition, Dsu};
pub use instance::{ln_success, AllocationInstance, PackingConstraint, Variable};
pub use relaxed::{solve_relaxed, solve_relaxed_warm, DualMethod, RelaxedOptions, RelaxedSolution};

/// Errors raised by the solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The instance is infeasible even at the all-ones lower bound: some
    /// constraint has less capacity than members.
    InfeasibleAtLowerBound {
        /// Index of the violated constraint.
        constraint: usize,
        /// Members of that constraint.
        members: usize,
        /// Its capacity.
        capacity: u32,
    },
    /// A variable's success probability was outside `(0, 1)`.
    InvalidProbability {
        /// Index of the offending variable.
        variable: usize,
        /// The offending value.
        value: f64,
    },
    /// A constraint referenced a variable index that does not exist.
    BadVariableIndex {
        /// Index of the offending constraint.
        constraint: usize,
        /// The out-of-range variable index.
        variable: usize,
    },
    /// A solution vector had the wrong length for the instance.
    DimensionMismatch {
        /// Expected number of variables.
        expected: usize,
        /// Provided length.
        got: usize,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::InfeasibleAtLowerBound {
                constraint,
                members,
                capacity,
            } => write!(
                f,
                "constraint {constraint} is infeasible at the all-ones bound: {members} members, capacity {capacity}"
            ),
            SolveError::InvalidProbability { variable, value } => {
                write!(f, "variable {variable} has invalid probability {value}")
            }
            SolveError::BadVariableIndex {
                constraint,
                variable,
            } => write!(
                f,
                "constraint {constraint} references unknown variable {variable}"
            ),
            SolveError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} variables, got {got}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SolveError::InfeasibleAtLowerBound {
            constraint: 2,
            members: 5,
            capacity: 3,
        };
        assert!(e.to_string().contains("constraint 2"));
    }
}
