//! Description of a per-slot allocation problem.
//!
//! Since PR 2 the instance stores its constraint structure in a
//! structure-of-arrays CSR layout: constraint→member and
//! variable→constraint incidence live in two flat index arrays with
//! offset tables, built once per instance. The dual solver's inner loops
//! ([`crate::relaxed`]) iterate these contiguous slices branch-free
//! instead of chasing one heap-allocated `Vec<usize>` per variable and
//! per constraint. [`PackingConstraint`] survives as the *input* type for
//! the validating constructor; the hot construction path is the
//! arena-backed [`crate::assemble::RouteAssembler`].

use serde::{Deserialize, Serialize};

use crate::SolveError;

/// Numerically stable `ln(1 − (1 − p)^x)`.
///
/// Duplicated from `qdn-physics::prob` so the solver crate stays free of
/// that dependency (it operates on abstract probabilities). Public so the
/// incremental profile evaluator in `qdn-core` can reproduce
/// [`AllocationInstance::objective_int`] term-for-term (bit-identical
/// floating-point) without materializing an instance.
pub fn ln_success(p: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let ln_fail = x * f64::ln_1p(-p);
    (-f64::exp_m1(ln_fail)).ln()
}

/// One decision variable: the channel allocation of one edge of one
/// selected route.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    /// Per-channel per-slot success probability `p_e` of the underlying
    /// edge.
    pub p: f64,
}

impl Variable {
    /// Creates a variable for an edge with channel success `p`.
    pub fn new(p: f64) -> Self {
        Variable { p }
    }
}

/// A linear packing constraint `Σ_{j ∈ members} x_j ≤ capacity`.
///
/// Node qubit capacities (paper Eq. 4), edge channel capacities (Eq. 5),
/// and the baselines' per-slot budget all take this shape. This is the
/// *construction* representation; inside [`AllocationInstance`] the
/// member lists are flattened into one CSR index array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackingConstraint {
    /// The capacity (right-hand side).
    pub capacity: u32,
    /// Indices of the variables this constraint sums over.
    pub members: Vec<usize>,
}

impl PackingConstraint {
    /// Creates a constraint.
    pub fn new(capacity: u32, members: Vec<usize>) -> Self {
        PackingConstraint { capacity, members }
    }
}

/// A validated allocation problem:
/// `max Σ_j V·ln P_j(x_j) − κ·x_j` over `x ≥ 1` under packing constraints.
///
/// # Layout
///
/// Constraint membership is stored twice, both directions flat:
///
/// * `con_off`/`con_idx` — constraint `c` sums over variables
///   `con_idx[con_off[c]..con_off[c+1]]` (ascending),
/// * `mem_off`/`mem_idx` — variable `j` appears in constraints
///   `mem_idx[mem_off[j]..mem_off[j+1]]` (ascending).
///
/// Both are built once at validation time; the solvers only ever read
/// the slices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationInstance {
    pub(crate) vars: Vec<Variable>,
    /// `caps[c]`: capacity of constraint `c`.
    pub(crate) caps: Vec<u32>,
    /// Constraint → members CSR offsets (`caps.len() + 1` entries).
    pub(crate) con_off: Vec<u32>,
    /// Constraint → members CSR indices (variable ids).
    pub(crate) con_idx: Vec<u32>,
    /// Variable → constraints CSR offsets (`vars.len() + 1` entries).
    pub(crate) mem_off: Vec<u32>,
    /// Variable → constraints CSR indices (constraint ids).
    pub(crate) mem_idx: Vec<u32>,
    /// The Lyapunov weight `V` multiplying the log-success utility.
    pub(crate) v_weight: f64,
    /// The per-unit price `κ` (the virtual queue length `q_t` in OSCAR;
    /// 0 for the myopic baselines).
    pub(crate) unit_price: f64,
    /// `ub[j]`: largest value variable `j` can take with all other
    /// variables at their lower bound 1 (tightest single-variable bound
    /// implied by the packing constraints).
    pub(crate) ub: Vec<u32>,
}

/// Cap for variables in no constraint, so scalar solvers terminate.
pub(crate) const FREE_VAR_CAP: u32 = 1 << 20;

impl AllocationInstance {
    /// Validates and pre-processes an instance.
    ///
    /// # Errors
    ///
    /// * [`SolveError::InvalidProbability`] if a variable's `p ∉ (0, 1)`,
    /// * [`SolveError::BadVariableIndex`] for dangling member indices,
    /// * [`SolveError::InfeasibleAtLowerBound`] if some constraint cannot
    ///   even hold every member at 1 — the caller (route selection) must
    ///   treat such a route combination as invalid.
    pub fn new(
        vars: Vec<Variable>,
        constraints: Vec<PackingConstraint>,
        v_weight: f64,
        unit_price: f64,
    ) -> Result<Self, SolveError> {
        let mut husk = AllocationInstance {
            vars,
            caps: Vec::with_capacity(constraints.len()),
            con_off: Vec::with_capacity(constraints.len() + 1),
            con_idx: Vec::new(),
            mem_off: Vec::new(),
            mem_idx: Vec::new(),
            v_weight,
            unit_price,
            ub: Vec::new(),
        };
        husk.con_off.push(0);
        for c in &constraints {
            husk.caps.push(c.capacity);
            for &j in &c.members {
                // Out-of-range indices are caught in `finalize` (u32::MAX
                // stays out of range: member counts never reach 2^32).
                husk.con_idx.push(j.min(u32::MAX as usize) as u32);
            }
            husk.con_off.push(husk.con_idx.len() as u32);
        }
        husk.finalize()
    }

    /// Validates a husk whose `vars`, `caps`, `con_off`, and `con_idx`
    /// are filled, building the inverse membership CSR and the upper
    /// bounds in place. Single definition of instance validation — the
    /// [`AllocationInstance::new`] constructor and the arena-backed
    /// [`crate::assemble::RouteAssembler`] both end here.
    pub(crate) fn finalize(mut self) -> Result<Self, SolveError> {
        let n = self.vars.len();
        let m = self.caps.len();
        debug_assert_eq!(self.con_off.len(), m + 1);
        for (j, var) in self.vars.iter().enumerate() {
            if !(var.p > 0.0 && var.p < 1.0) {
                return Err(SolveError::InvalidProbability {
                    variable: j,
                    value: var.p,
                });
            }
        }
        // Per-constraint validation in constraint order (same error
        // precedence as the historical Vec-of-Vec constructor): dangling
        // member indices first, then lower-bound feasibility.
        for c in 0..m {
            let (lo, hi) = (self.con_off[c] as usize, self.con_off[c + 1] as usize);
            for &j in &self.con_idx[lo..hi] {
                if j as usize >= n {
                    return Err(SolveError::BadVariableIndex {
                        constraint: c,
                        variable: j as usize,
                    });
                }
            }
            let members = hi - lo;
            if members as u64 > self.caps[c] as u64 {
                return Err(SolveError::InfeasibleAtLowerBound {
                    constraint: c,
                    members,
                    capacity: self.caps[c],
                });
            }
        }

        // Inverse CSR (variable → constraints) by counting: iterating
        // constraints in ascending order keeps each variable's list
        // ascending, matching the historical `membership` semantics.
        // The fill advances the offsets in place (then shifts them back)
        // so recycled instances build with zero fresh allocations.
        self.mem_off.clear();
        self.mem_off.resize(n + 1, 0);
        for &j in &self.con_idx {
            self.mem_off[j as usize + 1] += 1;
        }
        for j in 0..n {
            self.mem_off[j + 1] += self.mem_off[j];
        }
        self.mem_idx.clear();
        self.mem_idx.resize(self.con_idx.len(), 0);
        for c in 0..m {
            let (lo, hi) = (self.con_off[c] as usize, self.con_off[c + 1] as usize);
            for &j in &self.con_idx[lo..hi] {
                let cur = &mut self.mem_off[j as usize];
                self.mem_idx[*cur as usize] = c as u32;
                *cur += 1;
            }
        }
        // Each mem_off[j] now holds var j's end offset (= the old
        // mem_off[j+1]); shift right once to restore the start offsets.
        for j in (1..=n).rev() {
            self.mem_off[j] = self.mem_off[j - 1];
        }
        if n > 0 {
            self.mem_off[0] = 0;
        }

        // ub[j] = min over constraints c containing j of
        //   cap_c - (|members_c| - 1)   (others sit at their lower bound 1).
        self.ub.clear();
        self.ub.resize(n, u32::MAX);
        for c in 0..m {
            let (lo, hi) = (self.con_off[c] as usize, self.con_off[c + 1] as usize);
            let members = (hi - lo) as u32;
            let headroom = self.caps[c] - members.saturating_sub(1).min(self.caps[c]);
            for &j in &self.con_idx[lo..hi] {
                let b = &mut self.ub[j as usize];
                *b = (*b).min(headroom);
            }
        }
        // A variable in no constraint is unbounded; cap it at a large but
        // finite value so scalar solvers terminate.
        for b in &mut self.ub {
            if *b == u32::MAX {
                *b = FREE_VAR_CAP;
            }
        }
        Ok(self)
    }

    /// An empty husk whose buffers grow on first use — the recycled
    /// storage unit for arena-style construction ([`crate::assemble`]'s
    /// instance arena, [`crate::relaxed`]'s component recursion).
    pub(crate) fn husk() -> Self {
        AllocationInstance {
            vars: Vec::new(),
            caps: Vec::new(),
            con_off: Vec::new(),
            con_idx: Vec::new(),
            mem_off: Vec::new(),
            mem_idx: Vec::new(),
            v_weight: 0.0,
            unit_price: 0.0,
            ub: Vec::new(),
        }
    }

    /// Clears this instance back into a husk, retaining every buffer's
    /// capacity for the next build.
    pub(crate) fn into_husk(mut self) -> Self {
        self.vars.clear();
        self.caps.clear();
        self.con_off.clear();
        self.con_idx.clear();
        self.mem_off.clear();
        self.mem_idx.clear();
        self.ub.clear();
        self
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.caps.len()
    }

    /// The variables.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// Capacity of constraint `c`.
    pub fn capacity(&self, c: usize) -> u32 {
        self.caps[c]
    }

    /// Variable indices constraint `c` sums over (ascending).
    pub fn members(&self, c: usize) -> &[u32] {
        &self.con_idx[self.con_off[c] as usize..self.con_off[c + 1] as usize]
    }

    /// The utility weight `V`.
    pub fn v_weight(&self) -> f64 {
        self.v_weight
    }

    /// The per-unit price `κ`.
    pub fn unit_price(&self) -> f64 {
        self.unit_price
    }

    /// Upper bound for variable `j` implied by the constraints (others at
    /// their lower bound).
    pub fn upper_bound(&self, j: usize) -> u32 {
        self.ub[j]
    }

    /// Constraint indices containing variable `j` (ascending).
    pub fn membership(&self, j: usize) -> &[u32] {
        &self.mem_idx[self.mem_off[j] as usize..self.mem_off[j + 1] as usize]
    }

    /// Objective value at a real-valued point (used on relaxed solutions).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars
            .iter()
            .zip(x)
            .map(|(v, &xi)| self.v_weight * ln_success(v.p, xi) - self.unit_price * xi)
            .sum()
    }

    /// Objective value at an integer point.
    ///
    /// # Panics
    ///
    /// Panics if `n.len() != num_vars()`.
    pub fn objective_int(&self, n: &[u32]) -> f64 {
        assert_eq!(n.len(), self.vars.len());
        self.vars
            .iter()
            .zip(n)
            .map(|(v, &ni)| {
                self.v_weight * ln_success(v.p, ni as f64) - self.unit_price * ni as f64
            })
            .sum()
    }

    /// Total allocation `Σ_j x_j` (the per-slot cost `c_t`).
    pub fn total_allocation_int(&self, n: &[u32]) -> u64 {
        n.iter().map(|&v| v as u64).sum()
    }

    /// Whether an integer point satisfies bounds and all constraints.
    pub fn is_feasible_int(&self, n: &[u32]) -> bool {
        if n.len() != self.vars.len() || n.iter().any(|&ni| ni < 1) {
            return false;
        }
        (0..self.caps.len()).all(|c| {
            let usage: u64 = self.members(c).iter().map(|&j| n[j as usize] as u64).sum();
            usage <= self.caps[c] as u64
        })
    }

    /// Whether a real point satisfies bounds and all constraints within
    /// `tol`.
    pub fn is_feasible_real(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() || x.iter().any(|&xi| xi < 1.0 - tol) {
            return false;
        }
        (0..self.caps.len()).all(|c| {
            let usage: f64 = self.members(c).iter().map(|&j| x[j as usize]).sum();
            usage <= self.caps[c] as f64 + tol
        })
    }

    /// Remaining slack of constraint `c` at integer point `n`.
    pub fn slack_int(&self, c: usize, n: &[u32]) -> i64 {
        let usage: i64 = self.members(c).iter().map(|&j| n[j as usize] as i64).sum();
        self.caps[c] as i64 - usage
    }

    /// Whether incrementing variable `j` by one keeps the point feasible.
    pub fn can_increment(&self, j: usize, n: &[u32]) -> bool {
        self.membership(j)
            .iter()
            .all(|&c| self.slack_int(c as usize, n) >= 1)
    }

    /// Marginal objective gain of incrementing variable `j` from `n[j]`:
    /// `V·(ln P(n+1) − ln P(n)) − κ`.
    pub fn marginal_gain(&self, j: usize, nj: u32) -> f64 {
        let p = self.vars[j].p;
        let gain = ln_success(p, (nj + 1) as f64) - ln_success(p, nj as f64);
        self.v_weight * gain - self.unit_price
    }

    /// The all-ones starting point.
    pub fn lower_bound_point(&self) -> Vec<u32> {
        vec![1; self.vars.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> AllocationInstance {
        AllocationInstance::new(
            vec![Variable::new(0.5), Variable::new(0.6)],
            vec![
                PackingConstraint::new(5, vec![0, 1]),
                PackingConstraint::new(3, vec![0]),
            ],
            10.0,
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn validates_probability() {
        let err = AllocationInstance::new(vec![Variable::new(1.0)], vec![], 1.0, 0.0);
        assert!(matches!(err, Err(SolveError::InvalidProbability { .. })));
        let err = AllocationInstance::new(vec![Variable::new(0.0)], vec![], 1.0, 0.0);
        assert!(matches!(err, Err(SolveError::InvalidProbability { .. })));
    }

    #[test]
    fn validates_member_indices() {
        let err = AllocationInstance::new(
            vec![Variable::new(0.5)],
            vec![PackingConstraint::new(3, vec![1])],
            1.0,
            0.0,
        );
        assert!(matches!(err, Err(SolveError::BadVariableIndex { .. })));
    }

    #[test]
    fn detects_lb_infeasibility() {
        let err = AllocationInstance::new(
            vec![Variable::new(0.5), Variable::new(0.5), Variable::new(0.5)],
            vec![PackingConstraint::new(2, vec![0, 1, 2])],
            1.0,
            0.0,
        );
        assert!(matches!(
            err,
            Err(SolveError::InfeasibleAtLowerBound { .. })
        ));
    }

    #[test]
    fn upper_bounds_account_for_other_members() {
        let inst = simple();
        // Constraint 0: cap 5, two members -> headroom 4.
        // Constraint 1: cap 3, one member -> headroom 3.
        assert_eq!(inst.upper_bound(0), 3);
        assert_eq!(inst.upper_bound(1), 4);
    }

    #[test]
    fn free_variable_gets_finite_cap() {
        let inst = AllocationInstance::new(vec![Variable::new(0.5)], vec![], 1.0, 0.0).unwrap();
        assert!(inst.upper_bound(0) >= 1 << 20);
    }

    #[test]
    fn membership_inverse() {
        let inst = simple();
        assert_eq!(inst.membership(0), &[0, 1]);
        assert_eq!(inst.membership(1), &[0]);
    }

    #[test]
    fn csr_members_match_construction_order() {
        let inst = simple();
        assert_eq!(inst.members(0), &[0, 1]);
        assert_eq!(inst.members(1), &[0]);
        assert_eq!(inst.capacity(0), 5);
        assert_eq!(inst.capacity(1), 3);
    }

    #[test]
    fn objective_matches_manual() {
        let inst = simple();
        let n = [2u32, 1];
        let manual = 10.0 * ((1.0 - 0.25f64).ln() + 0.6f64.ln()) - 0.5 * 3.0;
        assert!((inst.objective_int(&n) - manual).abs() < 1e-12);
        let x = [2.0f64, 1.0];
        assert!((inst.objective(&x) - manual).abs() < 1e-12);
    }

    #[test]
    fn feasibility_checks() {
        let inst = simple();
        assert!(inst.is_feasible_int(&[1, 1]));
        assert!(inst.is_feasible_int(&[3, 2]));
        assert!(!inst.is_feasible_int(&[4, 1])); // violates constraint 1
        assert!(!inst.is_feasible_int(&[3, 3])); // violates constraint 0
        assert!(!inst.is_feasible_int(&[0, 1])); // below lower bound
        assert!(!inst.is_feasible_int(&[1])); // wrong arity
        assert!(inst.is_feasible_real(&[1.5, 2.5], 1e-9));
        assert!(!inst.is_feasible_real(&[1.5, 4.0], 1e-9));
    }

    #[test]
    fn slack_and_increments() {
        let inst = simple();
        let n = [2u32, 2];
        assert_eq!(inst.slack_int(0, &n), 1);
        assert_eq!(inst.slack_int(1, &n), 1);
        assert!(inst.can_increment(0, &n));
        assert!(inst.can_increment(1, &n));
        let n = [3u32, 2];
        assert!(!inst.can_increment(0, &n)); // constraint 1 exhausted
        assert!(!inst.can_increment(1, &n)); // constraint 0 exhausted
    }

    #[test]
    fn marginal_gain_decreases() {
        let inst = simple();
        let g1 = inst.marginal_gain(0, 1);
        let g2 = inst.marginal_gain(0, 2);
        assert!(g1 > g2);
    }

    #[test]
    fn cost_helper() {
        let inst = simple();
        assert_eq!(inst.total_allocation_int(&[2, 3]), 5);
    }

    #[test]
    fn ln_success_stability() {
        assert_eq!(ln_success(0.5, 0.0), f64::NEG_INFINITY);
        assert!((ln_success(0.5, 1.0) - 0.5f64.ln()).abs() < 1e-12);
    }
}
