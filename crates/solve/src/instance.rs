//! Description of a per-slot allocation problem.

use serde::{Deserialize, Serialize};

use crate::SolveError;

/// Numerically stable `ln(1 − (1 − p)^x)`.
///
/// Duplicated from `qdn-physics::prob` so the solver crate stays free of
/// that dependency (it operates on abstract probabilities). Public so the
/// incremental profile evaluator in `qdn-core` can reproduce
/// [`AllocationInstance::objective_int`] term-for-term (bit-identical
/// floating-point) without materializing an instance.
pub fn ln_success(p: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let ln_fail = x * f64::ln_1p(-p);
    (-f64::exp_m1(ln_fail)).ln()
}

/// One decision variable: the channel allocation of one edge of one
/// selected route.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    /// Per-channel per-slot success probability `p_e` of the underlying
    /// edge.
    pub p: f64,
}

impl Variable {
    /// Creates a variable for an edge with channel success `p`.
    pub fn new(p: f64) -> Self {
        Variable { p }
    }
}

/// A linear packing constraint `Σ_{j ∈ members} x_j ≤ capacity`.
///
/// Node qubit capacities (paper Eq. 4), edge channel capacities (Eq. 5),
/// and the baselines' per-slot budget all take this shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackingConstraint {
    /// The capacity (right-hand side).
    pub capacity: u32,
    /// Indices of the variables this constraint sums over.
    pub members: Vec<usize>,
}

impl PackingConstraint {
    /// Creates a constraint.
    pub fn new(capacity: u32, members: Vec<usize>) -> Self {
        PackingConstraint { capacity, members }
    }
}

/// A validated allocation problem:
/// `max Σ_j V·ln P_j(x_j) − κ·x_j` over `x ≥ 1` under packing constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationInstance {
    vars: Vec<Variable>,
    constraints: Vec<PackingConstraint>,
    /// The Lyapunov weight `V` multiplying the log-success utility.
    v_weight: f64,
    /// The per-unit price `κ` (the virtual queue length `q_t` in OSCAR;
    /// 0 for the myopic baselines).
    unit_price: f64,
    /// `ub[j]`: largest value variable `j` can take with all other
    /// variables at their lower bound 1 (tightest single-variable bound
    /// implied by the packing constraints).
    ub: Vec<u32>,
    /// `membership[j]`: constraint indices containing variable `j`.
    membership: Vec<Vec<usize>>,
}

impl AllocationInstance {
    /// Validates and pre-processes an instance.
    ///
    /// # Errors
    ///
    /// * [`SolveError::InvalidProbability`] if a variable's `p ∉ (0, 1)`,
    /// * [`SolveError::BadVariableIndex`] for dangling member indices,
    /// * [`SolveError::InfeasibleAtLowerBound`] if some constraint cannot
    ///   even hold every member at 1 — the caller (route selection) must
    ///   treat such a route combination as invalid.
    pub fn new(
        vars: Vec<Variable>,
        constraints: Vec<PackingConstraint>,
        v_weight: f64,
        unit_price: f64,
    ) -> Result<Self, SolveError> {
        for (j, var) in vars.iter().enumerate() {
            if !(var.p > 0.0 && var.p < 1.0) {
                return Err(SolveError::InvalidProbability {
                    variable: j,
                    value: var.p,
                });
            }
        }
        let mut membership = vec![Vec::new(); vars.len()];
        for (ci, c) in constraints.iter().enumerate() {
            for &j in &c.members {
                if j >= vars.len() {
                    return Err(SolveError::BadVariableIndex {
                        constraint: ci,
                        variable: j,
                    });
                }
                membership[j].push(ci);
            }
            if (c.members.len() as u64) > c.capacity as u64 {
                return Err(SolveError::InfeasibleAtLowerBound {
                    constraint: ci,
                    members: c.members.len(),
                    capacity: c.capacity,
                });
            }
        }
        // ub[j] = min over constraints c containing j of
        //   cap_c - (|members_c| - 1)   (others sit at their lower bound 1).
        let mut ub = vec![u32::MAX; vars.len()];
        for c in &constraints {
            let headroom = c.capacity - (c.members.len() as u32 - 1).min(c.capacity);
            for &j in &c.members {
                ub[j] = ub[j].min(headroom);
            }
        }
        // A variable in no constraint is unbounded; cap it at a large but
        // finite value so scalar solvers terminate.
        const FREE_VAR_CAP: u32 = 1 << 20;
        for b in &mut ub {
            if *b == u32::MAX {
                *b = FREE_VAR_CAP;
            }
        }
        Ok(AllocationInstance {
            vars,
            constraints,
            v_weight,
            unit_price,
            ub,
            membership,
        })
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The variables.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// The constraints.
    pub fn constraints(&self) -> &[PackingConstraint] {
        &self.constraints
    }

    /// The utility weight `V`.
    pub fn v_weight(&self) -> f64 {
        self.v_weight
    }

    /// The per-unit price `κ`.
    pub fn unit_price(&self) -> f64 {
        self.unit_price
    }

    /// Upper bound for variable `j` implied by the constraints (others at
    /// their lower bound).
    pub fn upper_bound(&self, j: usize) -> u32 {
        self.ub[j]
    }

    /// Constraint indices containing variable `j`.
    pub fn membership(&self, j: usize) -> &[usize] {
        &self.membership[j]
    }

    /// Objective value at a real-valued point (used on relaxed solutions).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars
            .iter()
            .zip(x)
            .map(|(v, &xi)| self.v_weight * ln_success(v.p, xi) - self.unit_price * xi)
            .sum()
    }

    /// Objective value at an integer point.
    ///
    /// # Panics
    ///
    /// Panics if `n.len() != num_vars()`.
    pub fn objective_int(&self, n: &[u32]) -> f64 {
        assert_eq!(n.len(), self.vars.len());
        self.vars
            .iter()
            .zip(n)
            .map(|(v, &ni)| {
                self.v_weight * ln_success(v.p, ni as f64) - self.unit_price * ni as f64
            })
            .sum()
    }

    /// Total allocation `Σ_j x_j` (the per-slot cost `c_t`).
    pub fn total_allocation_int(&self, n: &[u32]) -> u64 {
        n.iter().map(|&v| v as u64).sum()
    }

    /// Whether an integer point satisfies bounds and all constraints.
    pub fn is_feasible_int(&self, n: &[u32]) -> bool {
        if n.len() != self.vars.len() || n.iter().any(|&ni| ni < 1) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let usage: u64 = c.members.iter().map(|&j| n[j] as u64).sum();
            usage <= c.capacity as u64
        })
    }

    /// Whether a real point satisfies bounds and all constraints within
    /// `tol`.
    pub fn is_feasible_real(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() || x.iter().any(|&xi| xi < 1.0 - tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let usage: f64 = c.members.iter().map(|&j| x[j]).sum();
            usage <= c.capacity as f64 + tol
        })
    }

    /// Remaining slack of constraint `c` at integer point `n`.
    pub fn slack_int(&self, c: usize, n: &[u32]) -> i64 {
        let con = &self.constraints[c];
        let usage: i64 = con.members.iter().map(|&j| n[j] as i64).sum();
        con.capacity as i64 - usage
    }

    /// Whether incrementing variable `j` by one keeps the point feasible.
    pub fn can_increment(&self, j: usize, n: &[u32]) -> bool {
        self.membership[j]
            .iter()
            .all(|&c| self.slack_int(c, n) >= 1)
    }

    /// Marginal objective gain of incrementing variable `j` from `n[j]`:
    /// `V·(ln P(n+1) − ln P(n)) − κ`.
    pub fn marginal_gain(&self, j: usize, nj: u32) -> f64 {
        let p = self.vars[j].p;
        let gain = ln_success(p, (nj + 1) as f64) - ln_success(p, nj as f64);
        self.v_weight * gain - self.unit_price
    }

    /// The all-ones starting point.
    pub fn lower_bound_point(&self) -> Vec<u32> {
        vec![1; self.vars.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> AllocationInstance {
        AllocationInstance::new(
            vec![Variable::new(0.5), Variable::new(0.6)],
            vec![
                PackingConstraint::new(5, vec![0, 1]),
                PackingConstraint::new(3, vec![0]),
            ],
            10.0,
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn validates_probability() {
        let err = AllocationInstance::new(vec![Variable::new(1.0)], vec![], 1.0, 0.0);
        assert!(matches!(err, Err(SolveError::InvalidProbability { .. })));
        let err = AllocationInstance::new(vec![Variable::new(0.0)], vec![], 1.0, 0.0);
        assert!(matches!(err, Err(SolveError::InvalidProbability { .. })));
    }

    #[test]
    fn validates_member_indices() {
        let err = AllocationInstance::new(
            vec![Variable::new(0.5)],
            vec![PackingConstraint::new(3, vec![1])],
            1.0,
            0.0,
        );
        assert!(matches!(err, Err(SolveError::BadVariableIndex { .. })));
    }

    #[test]
    fn detects_lb_infeasibility() {
        let err = AllocationInstance::new(
            vec![Variable::new(0.5), Variable::new(0.5), Variable::new(0.5)],
            vec![PackingConstraint::new(2, vec![0, 1, 2])],
            1.0,
            0.0,
        );
        assert!(matches!(
            err,
            Err(SolveError::InfeasibleAtLowerBound { .. })
        ));
    }

    #[test]
    fn upper_bounds_account_for_other_members() {
        let inst = simple();
        // Constraint 0: cap 5, two members -> headroom 4.
        // Constraint 1: cap 3, one member -> headroom 3.
        assert_eq!(inst.upper_bound(0), 3);
        assert_eq!(inst.upper_bound(1), 4);
    }

    #[test]
    fn free_variable_gets_finite_cap() {
        let inst = AllocationInstance::new(vec![Variable::new(0.5)], vec![], 1.0, 0.0).unwrap();
        assert!(inst.upper_bound(0) >= 1 << 20);
    }

    #[test]
    fn membership_inverse() {
        let inst = simple();
        assert_eq!(inst.membership(0), &[0, 1]);
        assert_eq!(inst.membership(1), &[0]);
    }

    #[test]
    fn objective_matches_manual() {
        let inst = simple();
        let n = [2u32, 1];
        let manual = 10.0 * ((1.0 - 0.25f64).ln() + 0.6f64.ln()) - 0.5 * 3.0;
        assert!((inst.objective_int(&n) - manual).abs() < 1e-12);
        let x = [2.0f64, 1.0];
        assert!((inst.objective(&x) - manual).abs() < 1e-12);
    }

    #[test]
    fn feasibility_checks() {
        let inst = simple();
        assert!(inst.is_feasible_int(&[1, 1]));
        assert!(inst.is_feasible_int(&[3, 2]));
        assert!(!inst.is_feasible_int(&[4, 1])); // violates constraint 1
        assert!(!inst.is_feasible_int(&[3, 3])); // violates constraint 0
        assert!(!inst.is_feasible_int(&[0, 1])); // below lower bound
        assert!(!inst.is_feasible_int(&[1])); // wrong arity
        assert!(inst.is_feasible_real(&[1.5, 2.5], 1e-9));
        assert!(!inst.is_feasible_real(&[1.5, 4.0], 1e-9));
    }

    #[test]
    fn slack_and_increments() {
        let inst = simple();
        let n = [2u32, 2];
        assert_eq!(inst.slack_int(0, &n), 1);
        assert_eq!(inst.slack_int(1, &n), 1);
        assert!(inst.can_increment(0, &n));
        assert!(inst.can_increment(1, &n));
        let n = [3u32, 2];
        assert!(!inst.can_increment(0, &n)); // constraint 1 exhausted
        assert!(!inst.can_increment(1, &n)); // constraint 0 exhausted
    }

    #[test]
    fn marginal_gain_decreases() {
        let inst = simple();
        let g1 = inst.marginal_gain(0, 1);
        let g2 = inst.marginal_gain(0, 2);
        assert!(g1 > g2);
    }

    #[test]
    fn cost_helper() {
        let inst = simple();
        assert_eq!(inst.total_allocation_int(&[2, 3]), 5);
    }

    #[test]
    fn ln_success_stability() {
        assert_eq!(ln_success(0.5, 0.0), f64::NEG_INFINITY);
        assert!((ln_success(0.5, 1.0) - 0.5f64.ln()).abs() < 1e-12);
    }
}
