//! Greedy marginal-gain integer allocation.
//!
//! Starting from the all-ones point, repeatedly add one channel to the
//! variable with the largest positive marginal gain
//! `V·(ln P(n+1) − ln P(n)) − κ` that still fits its constraints. Because
//! each variable's marginal is decreasing (concavity) and capacity slack
//! only shrinks, a lazy max-heap gives an `O(K log n)` implementation.
//!
//! Uses:
//! * the MF/MA baselines' per-slot problem (`κ = 0`, per-slot budget as an
//!   extra packing constraint): greedy is the natural myopic allocator,
//! * the surplus phase of the paper's down-rounding (Algorithm 2 step 4),
//! * an ablation against relax-and-round for OSCAR itself.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::instance::AllocationInstance;
use crate::SolveError;

/// Max-heap entry ordered by marginal gain.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    gain: f64,
    var: usize,
    /// Allocation of `var` when this entry was pushed (stale detection).
    at: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.var.cmp(&self.var))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs greedy increments starting from `start` (defaults to all-ones via
/// [`greedy_allocate`]).
///
/// Increments stop when no variable has a positive marginal gain with
/// remaining capacity. If `require_positive_gain` is false, increments
/// continue while gains are non-negative... — instead of a boolean flag
/// the threshold is explicit: increments are applied while
/// `gain > gain_threshold` (use `0.0` for strict improvement, `−∞` to
/// exhaust capacity as the throughput-greedy baselines do when `κ = 0`
/// and every marginal is positive anyway).
///
/// # Errors
///
/// Returns [`SolveError::DimensionMismatch`] if `start` has the wrong
/// arity, and fails with the instance's own error if `start` is
/// infeasible.
pub fn greedy_fill(
    instance: &AllocationInstance,
    start: &[u32],
    gain_threshold: f64,
) -> Result<Vec<u32>, SolveError> {
    if start.len() != instance.num_vars() {
        return Err(SolveError::DimensionMismatch {
            expected: instance.num_vars(),
            got: start.len(),
        });
    }
    let mut n = start.to_vec();
    debug_assert!(
        instance.is_feasible_int(&n),
        "greedy_fill requires a feasible starting point"
    );

    let mut heap = BinaryHeap::with_capacity(instance.num_vars());
    for (j, &nj) in n.iter().enumerate() {
        heap.push(HeapEntry {
            gain: instance.marginal_gain(j, nj),
            var: j,
            at: nj,
        });
    }

    while let Some(entry) = heap.pop() {
        if entry.at != n[entry.var] {
            // Stale: re-push with the current marginal.
            heap.push(HeapEntry {
                gain: instance.marginal_gain(entry.var, n[entry.var]),
                var: entry.var,
                at: n[entry.var],
            });
            continue;
        }
        if entry.gain <= gain_threshold {
            break; // heap max is non-improving -> done
        }
        if !instance.can_increment(entry.var, &n) {
            // Capacity only shrinks; this variable is done for good.
            continue;
        }
        n[entry.var] += 1;
        heap.push(HeapEntry {
            gain: instance.marginal_gain(entry.var, n[entry.var]),
            var: entry.var,
            at: n[entry.var],
        });
    }
    Ok(n)
}

/// Greedy allocation from the all-ones starting point, incrementing while
/// the marginal gain is strictly positive.
///
/// # Errors
///
/// Never fails for instances built through [`AllocationInstance::new`]
/// (they are feasible at all-ones by construction).
///
/// # Example
///
/// ```
/// use qdn_solve::{AllocationInstance, PackingConstraint, Variable};
/// use qdn_solve::greedy::greedy_allocate;
///
/// let inst = AllocationInstance::new(
///     vec![Variable::new(0.55); 2],
///     vec![PackingConstraint::new(6, vec![0, 1])],
///     1000.0,
///     5.0,
/// ).unwrap();
/// let n = greedy_allocate(&inst).unwrap();
/// assert!(inst.is_feasible_int(&n));
/// assert!(n.iter().all(|&v| v >= 1));
/// ```
pub fn greedy_allocate(instance: &AllocationInstance) -> Result<Vec<u32>, SolveError> {
    greedy_fill(instance, &instance.lower_bound_point(), 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_best;
    use crate::instance::{PackingConstraint, Variable};

    fn inst(ps: &[f64], cons: &[(u32, &[usize])], v: f64, price: f64) -> AllocationInstance {
        AllocationInstance::new(
            ps.iter().map(|&p| Variable::new(p)).collect(),
            cons.iter()
                .map(|&(cap, mem)| PackingConstraint::new(cap, mem.to_vec()))
                .collect(),
            v,
            price,
        )
        .unwrap()
    }

    #[test]
    fn respects_capacity() {
        let i = inst(&[0.55, 0.55], &[(4, &[0, 1])], 1000.0, 0.1);
        let n = greedy_allocate(&i).unwrap();
        assert!(i.is_feasible_int(&n));
        assert_eq!(n.iter().sum::<u32>(), 4); // tiny price: exhaust capacity
    }

    #[test]
    fn stops_at_negative_marginals() {
        // Price so large only the mandatory single channel stays.
        let i = inst(&[0.55, 0.55], &[(20, &[0, 1])], 1.0, 100.0);
        let n = greedy_allocate(&i).unwrap();
        assert_eq!(n, vec![1, 1]);
    }

    #[test]
    fn prefers_weaker_edges() {
        // Lower p has larger marginal log-gain; with symmetric capacity the
        // weaker edge should get at least as many channels.
        let i = inst(&[0.3, 0.8], &[(6, &[0, 1])], 1000.0, 1.0);
        let n = greedy_allocate(&i).unwrap();
        assert!(n[0] >= n[1], "weaker edge should get more: {n:?}");
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut optimal_hits = 0;
        const TRIALS: usize = 30;
        for trial in 0..TRIALS {
            let nv = rng.random_range(2..4usize);
            let ps: Vec<f64> = (0..nv).map(|_| rng.random_range(0.2..0.9)).collect();
            let cap = rng.random_range(nv as u32..=nv as u32 + 4);
            let i = AllocationInstance::new(
                ps.iter().map(|&p| Variable::new(p)).collect(),
                vec![PackingConstraint::new(cap, (0..nv).collect())],
                rng.random_range(50.0..500.0),
                rng.random_range(0.0..20.0),
            )
            .unwrap();
            let greedy = greedy_allocate(&i).unwrap();
            let (best, best_val) = brute_force_best(&i, 8);
            let greedy_val = i.objective_int(&greedy);
            // Greedy on a single budget-style constraint with separable
            // concave objective is optimal (matroid structure).
            assert!(
                greedy_val >= best_val - 1e-9,
                "trial {trial}: greedy {greedy_val} < brute {best_val} ({greedy:?} vs {best:?})"
            );
            if (greedy_val - best_val).abs() < 1e-9 {
                optimal_hits += 1;
            }
        }
        assert_eq!(optimal_hits, TRIALS);
    }

    #[test]
    fn greedy_fill_from_custom_start() {
        let i = inst(&[0.55, 0.55], &[(6, &[0, 1])], 1000.0, 0.1);
        let n = greedy_fill(&i, &[2, 2], 0.0).unwrap();
        assert!(i.is_feasible_int(&n));
        assert!(n[0] >= 2 && n[1] >= 2, "never decrements: {n:?}");
    }

    #[test]
    fn dimension_mismatch_detected() {
        let i = inst(&[0.5], &[], 1.0, 0.0);
        assert!(matches!(
            greedy_fill(&i, &[1, 1], 0.0),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_price_exhausts_binding_constraint() {
        let i = inst(&[0.5, 0.5, 0.5], &[(9, &[0, 1, 2])], 10.0, 0.0);
        let n = greedy_allocate(&i).unwrap();
        assert_eq!(n.iter().sum::<u32>(), 9);
    }

    #[test]
    fn multi_constraint_feasibility() {
        // Node-style overlapping constraints.
        let i = inst(
            &[0.4, 0.5, 0.6],
            &[(4, &[0, 1]), (4, &[1, 2]), (5, &[0, 2])],
            500.0,
            0.5,
        );
        let n = greedy_allocate(&i).unwrap();
        assert!(i.is_feasible_int(&n), "{n:?}");
    }
}
