//! Arena-backed streaming assembly of route allocation instances.
//!
//! The per-slot P2 instance has a fixed canonical layout (one variable
//! per route edge in stream order; packing constraints for touched nodes
//! in first-touch order, then touched edges in first-touch order, then an
//! optional budget over all variables). [`RouteAssembler`] builds that
//! layout directly into the [`AllocationInstance`] CSR arrays — no
//! per-constraint member `Vec`s, no hashing — and owns an arena of
//! recycled instances so steady-state assembly performs **zero heap
//! allocations**: callers hand solved instances back via
//! [`RouteAssembler::recycle`] and the next build reuses their capacity.
//!
//! This is the **single** definition of the layout. Both the
//! full-rebuild path (`qdn-core`'s `PerSlotContext::build_instance`) and
//! the incremental profile evaluator (per-component sub-instances) stream
//! through it, which — together with the component-wise solvers in
//! [`crate::relaxed`] — is what makes their results bit-identical: a
//! coupling component's sub-instance is structurally the joint instance
//! restricted to it, in the same relative order.
//!
//! # Constraint keys
//!
//! [`RouteAssembler::finish_with_keys`] additionally reports one stable
//! *key* per constraint — the node id for qubit constraints, `nodes +
//! edge id` for channel constraints, `nodes + edges` for the budget row.
//! Keys identify "the same" constraint across instances built for
//! *different* route profiles, which is what the profile evaluator's
//! dual warm-start store is indexed by (see `qdn-core::profile_eval`).

use crate::instance::{AllocationInstance, Variable};
use crate::SolveError;

/// Streaming builder for the canonical route-instance layout, with an
/// instance arena. See the module docs.
#[derive(Debug)]
pub struct RouteAssembler {
    nodes: usize,
    edges: usize,
    /// First-touch slot maps with epoch stamping (never cleared).
    node_slot: Vec<u32>,
    node_mark: Vec<u64>,
    edge_slot: Vec<u32>,
    edge_mark: Vec<u64>,
    epoch: u64,
    /// Staged per-build state (cleared by [`RouteAssembler::begin`],
    /// capacity retained).
    vars: Vec<Variable>,
    /// Per variable: `[node_slot_u, node_slot_v, edge_slot]`.
    var_touch: Vec<[u32; 3]>,
    node_caps: Vec<u32>,
    node_ids: Vec<u32>,
    edge_caps: Vec<u32>,
    edge_ids: Vec<u32>,
    /// Per-constraint write cursors for the CSR fill pass.
    cursor: Vec<u32>,
    /// Recycled instances whose buffers the next build reuses.
    arena: Vec<AllocationInstance>,
}

impl RouteAssembler {
    /// An assembler for a network with the given node/edge counts.
    pub fn sized(nodes: usize, edges: usize) -> Self {
        RouteAssembler {
            nodes,
            edges,
            node_slot: vec![0; nodes],
            node_mark: vec![0; nodes],
            edge_slot: vec![0; edges],
            edge_mark: vec![0; edges],
            epoch: 0,
            vars: Vec::new(),
            var_touch: Vec::new(),
            node_caps: Vec::new(),
            node_ids: Vec::new(),
            edge_caps: Vec::new(),
            edge_ids: Vec::new(),
            cursor: Vec::new(),
            arena: Vec::new(),
        }
    }

    /// Node/edge counts this assembler was sized for.
    pub fn network_shape(&self) -> (usize, usize) {
        (self.nodes, self.edges)
    }

    /// Starts a new build, discarding any staged edges.
    pub fn begin(&mut self) {
        self.epoch += 1;
        self.vars.clear();
        self.var_touch.clear();
        self.node_caps.clear();
        self.node_ids.clear();
        self.edge_caps.clear();
        self.edge_ids.clear();
    }

    /// Stages one route edge as the next variable: edge `edge` with
    /// endpoints `u`/`v`, channel success `p`, and this slot's remaining
    /// capacities (node qubits and edge channels). Capacities are
    /// recorded on first touch only.
    ///
    /// # Panics
    ///
    /// Debug-asserts `u`, `v`, and `edge` are within the sized network.
    #[allow(clippy::too_many_arguments)]
    pub fn push_edge(
        &mut self,
        edge: usize,
        u: usize,
        v: usize,
        p: f64,
        cap_u: u32,
        cap_v: u32,
        cap_edge: u32,
    ) {
        debug_assert!(u < self.nodes && v < self.nodes && edge < self.edges);
        self.vars.push(Variable::new(p));
        let mut touch = [0u32; 3];
        for (slot, (node, cap)) in touch.iter_mut().zip([(u, cap_u), (v, cap_v)]) {
            if self.node_mark[node] != self.epoch {
                self.node_mark[node] = self.epoch;
                self.node_slot[node] = self.node_caps.len() as u32;
                self.node_caps.push(cap);
                self.node_ids.push(node as u32);
            }
            *slot = self.node_slot[node];
        }
        if self.edge_mark[edge] != self.epoch {
            self.edge_mark[edge] = self.epoch;
            self.edge_slot[edge] = self.edge_caps.len() as u32;
            self.edge_caps.push(cap_edge);
            self.edge_ids.push(edge as u32);
        }
        touch[2] = self.edge_slot[edge];
        self.var_touch.push(touch);
    }

    /// Finishes the build into a validated instance (reusing recycled
    /// storage when available).
    ///
    /// # Errors
    ///
    /// [`SolveError::InfeasibleAtLowerBound`] when some touched node,
    /// edge, or the budget cannot hold one channel per staged variable.
    pub fn finish(
        &mut self,
        budget: Option<u32>,
        v_weight: f64,
        unit_price: f64,
    ) -> Result<AllocationInstance, SolveError> {
        self.finish_with_keys(budget, v_weight, unit_price, None)
    }

    /// [`RouteAssembler::finish`], also writing each constraint's stable
    /// key into `keys_out` (see the module docs). Key space size is
    /// `nodes + edges + 1`.
    pub fn finish_with_keys(
        &mut self,
        budget: Option<u32>,
        v_weight: f64,
        unit_price: f64,
        keys_out: Option<&mut Vec<u32>>,
    ) -> Result<AllocationInstance, SolveError> {
        let n = self.vars.len();
        let n_node = self.node_caps.len();
        let n_edge = self.edge_caps.len();
        let m = n_node + n_edge + usize::from(budget.is_some());

        let mut husk = self.arena.pop().unwrap_or_else(AllocationInstance::husk);
        husk.v_weight = v_weight;
        husk.unit_price = unit_price;
        std::mem::swap(&mut husk.vars, &mut self.vars);

        husk.caps.clear();
        husk.caps.extend_from_slice(&self.node_caps);
        husk.caps.extend_from_slice(&self.edge_caps);
        if let Some(b) = budget {
            husk.caps.push(b);
        }

        // Counting pass → offsets. Each variable contributes one member
        // to each endpoint's node constraint and to its edge constraint;
        // the budget row (last) sums every variable.
        husk.con_off.clear();
        husk.con_off.resize(m + 1, 0);
        for touch in &self.var_touch {
            husk.con_off[touch[0] as usize + 1] += 1;
            husk.con_off[touch[1] as usize + 1] += 1;
            husk.con_off[n_node + touch[2] as usize + 1] += 1;
        }
        if budget.is_some() {
            husk.con_off[m] += n as u32;
        }
        for c in 0..m {
            husk.con_off[c + 1] += husk.con_off[c];
        }

        // Fill pass in variable order: every constraint's member list
        // comes out ascending, exactly the historical first-touch-push
        // order.
        husk.con_idx.clear();
        husk.con_idx.resize(husk.con_off[m] as usize, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&husk.con_off[..m]);
        for (j, touch) in self.var_touch.iter().enumerate() {
            for c in [
                touch[0] as usize,
                touch[1] as usize,
                n_node + touch[2] as usize,
            ] {
                let cur = &mut self.cursor[c];
                husk.con_idx[*cur as usize] = j as u32;
                *cur += 1;
            }
            if budget.is_some() {
                let cur = &mut self.cursor[m - 1];
                husk.con_idx[*cur as usize] = j as u32;
                *cur += 1;
            }
        }

        if let Some(keys) = keys_out {
            keys.clear();
            keys.extend_from_slice(&self.node_ids);
            keys.extend(self.edge_ids.iter().map(|&e| self.nodes as u32 + e));
            if budget.is_some() {
                keys.push(self.budget_key());
            }
        }

        husk.finalize()
    }

    /// The constraint key of the budget row (`nodes + edges`); the key
    /// space for [`RouteAssembler::finish_with_keys`] is
    /// `0..=budget_key()`.
    pub fn budget_key(&self) -> u32 {
        (self.nodes + self.edges) as u32
    }

    /// Returns a solved instance's storage to the arena for reuse by the
    /// next [`RouteAssembler::finish`].
    pub fn recycle(&mut self, instance: AllocationInstance) {
        self.arena.push(instance.into_husk());
    }
}

/// Scatters one sub-instance's flat allocation back into the enclosing
/// instance's variable order.
///
/// `src` is the allocation of a sub-instance whose variables are a
/// subset of the parent's, **in the parent's relative order** (the only
/// order [`RouteAssembler`] and
/// [`AllocationInstance::sub_instance`](crate::AllocationInstance::sub_instance)
/// ever produce). `spans` lists, per member of the subset in that same
/// order, the `(offset, len)` range its variables occupy in `out`. The
/// profile evaluator uses this to assemble a static coupling component's
/// allocation from its dynamic groups' member sets — see
/// `qdn-core::profile_eval`.
///
/// # Panics
///
/// Panics (in debug builds) when the spans do not consume `src`
/// exactly, and always when a span reaches outside `src` or `out`.
pub fn scatter_segments(
    src: &[u32],
    spans: impl IntoIterator<Item = (usize, usize)>,
    out: &mut [u32],
) {
    let mut cursor = 0;
    for (offset, len) in spans {
        out[offset..offset + len].copy_from_slice(&src[cursor..cursor + len]);
        cursor += len;
    }
    debug_assert_eq!(cursor, src.len(), "spans must consume src exactly");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PackingConstraint;

    /// Two 2-hop routes sharing the middle node 1: the classic diamond
    /// restricted to its upper path, twice.
    fn reference(budget: Option<u32>) -> AllocationInstance {
        // Stream: edge 0 = (0,1), edge 1 = (1,3), edge 0 again, edge 1
        // again (second route reuses both edges).
        let vars = vec![Variable::new(0.5); 4];
        let mut cons = vec![
            PackingConstraint::new(10, vec![0, 2]),       // node 0
            PackingConstraint::new(10, vec![0, 1, 2, 3]), // node 1
            PackingConstraint::new(10, vec![1, 3]),       // node 3
            PackingConstraint::new(6, vec![0, 2]),        // edge 0
            PackingConstraint::new(6, vec![1, 3]),        // edge 1
        ];
        if let Some(b) = budget {
            cons.push(PackingConstraint::new(b, vec![0, 1, 2, 3]));
        }
        AllocationInstance::new(vars, cons, 100.0, 2.0).unwrap()
    }

    fn assemble(asm: &mut RouteAssembler, budget: Option<u32>) -> AllocationInstance {
        asm.begin();
        for _ in 0..2 {
            asm.push_edge(0, 0, 1, 0.5, 10, 10, 6);
            asm.push_edge(1, 1, 3, 0.5, 10, 10, 6);
        }
        asm.finish(budget, 100.0, 2.0).unwrap()
    }

    #[test]
    fn matches_generic_constructor() {
        let mut asm = RouteAssembler::sized(4, 2);
        for budget in [None, Some(9)] {
            let built = assemble(&mut asm, budget);
            assert_eq!(built, reference(budget));
        }
    }

    #[test]
    fn recycling_reuses_storage_and_stays_identical() {
        let mut asm = RouteAssembler::sized(4, 2);
        let first = assemble(&mut asm, Some(9));
        let expected = first.clone();
        asm.recycle(first);
        let second = assemble(&mut asm, Some(9));
        assert_eq!(second, expected);
    }

    #[test]
    fn keys_identify_nodes_edges_and_budget() {
        let mut asm = RouteAssembler::sized(4, 2);
        asm.begin();
        asm.push_edge(1, 1, 3, 0.5, 10, 10, 6);
        asm.push_edge(0, 0, 1, 0.5, 10, 10, 6);
        let mut keys = Vec::new();
        let inst = asm
            .finish_with_keys(Some(9), 100.0, 2.0, Some(&mut keys))
            .unwrap();
        // First-touch node order: 1, 3, 0; edges 1, 0; then budget.
        assert_eq!(keys, vec![1, 3, 0, 4 + 1, 4, asm.budget_key()]);
        assert_eq!(keys.len(), inst.num_constraints());
    }

    #[test]
    fn infeasible_budget_detected() {
        let mut asm = RouteAssembler::sized(4, 2);
        asm.begin();
        asm.push_edge(0, 0, 1, 0.5, 10, 10, 6);
        asm.push_edge(1, 1, 3, 0.5, 10, 10, 6);
        let err = asm.finish(Some(1), 100.0, 2.0);
        assert!(matches!(
            err,
            Err(SolveError::InfeasibleAtLowerBound { .. })
        ));
    }

    #[test]
    fn scatter_segments_reassembles_interleaved_members() {
        // Parent variable order: member0 (2 vars), member1 (1 var),
        // member2 (3 vars). A "group" of members 0 and 2 scatters its
        // flat allocation around member1's slot.
        let mut out = vec![0u32; 6];
        scatter_segments(&[7, 8, 4, 5, 6], [(0, 2), (3, 3)], &mut out);
        assert_eq!(out, vec![7, 8, 0, 4, 5, 6]);
        // The complementary singleton group fills the hole.
        scatter_segments(&[9], [(2, 1)], &mut out);
        assert_eq!(out, vec![7, 8, 9, 4, 5, 6]);
    }
}
