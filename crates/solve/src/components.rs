//! Connected-component decomposition of allocation instances.
//!
//! Two variables are *coupled* when some packing constraint contains them
//! both; the transitive closure of that relation partitions an instance
//! into independent sub-problems. Because the objective is separable per
//! variable and every constraint lies wholly inside one component, the
//! joint optimum is exactly the concatenation of the per-component optima
//! — and, crucially for the incremental profile evaluator in `qdn-core`,
//! solving a component in isolation is *bit-identical* to solving it as
//! part of the joint instance once the solvers themselves work
//! component-wise (see [`crate::relaxed::solve_relaxed`]).
//!
//! Components and sub-instances are deterministic: components are ordered
//! by their smallest variable index, and a sub-instance keeps its
//! variables and constraints in the same relative order they had in the
//! parent instance.

use crate::instance::AllocationInstance;
use crate::SolveError;

/// The partition of an instance's variables into coupled components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentPartition {
    /// `component_of[j]` is the component index of variable `j`.
    pub component_of: Vec<usize>,
    /// Per component: its variables, ascending.
    pub vars: Vec<Vec<usize>>,
    /// Per component: its constraint indices, ascending. Constraints with
    /// no members are vacuous and belong to no component.
    pub constraints: Vec<Vec<usize>>,
}

impl ComponentPartition {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the instance has no variables at all.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

/// Union-find with path halving and a deterministic tie-break: the
/// smaller root always wins, so every set's representative is its
/// smallest member. Shared with `qdn-core`'s profile evaluator, which
/// partitions SD pairs with the same invariant.
#[derive(Debug, Clone)]
pub struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    /// `n` singleton sets `{0}, …, {n−1}`.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    /// Re-initializes to `n` singleton sets, reusing the allocation —
    /// for callers that run one union-find per (small) work item, like
    /// the profile evaluator's per-component sub-partition refresh.
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n);
    }

    /// The representative (smallest member) of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

impl AllocationInstance {
    /// Partitions the instance into constraint-coupled components.
    ///
    /// Components are numbered by their smallest variable index, so the
    /// partition (and everything derived from it) is deterministic.
    pub fn components(&self) -> ComponentPartition {
        let n = self.num_vars();
        let mut dsu = Dsu::new(n);
        for c in 0..self.num_constraints() {
            if let Some((&first, rest)) = self.members(c).split_first() {
                for &j in rest {
                    dsu.union(first as usize, j as usize);
                }
            }
        }
        let mut component_of = vec![usize::MAX; n];
        let mut vars: Vec<Vec<usize>> = Vec::new();
        for j in 0..n {
            let root = dsu.find(j);
            let comp = if component_of[root] == usize::MAX {
                let id = vars.len();
                component_of[root] = id;
                vars.push(Vec::new());
                id
            } else {
                component_of[root]
            };
            component_of[j] = comp;
            vars[comp].push(j);
        }
        let mut constraints: Vec<Vec<usize>> = vec![Vec::new(); vars.len()];
        for ci in 0..self.num_constraints() {
            if let Some(&j) = self.members(ci).first() {
                constraints[component_of[j as usize]].push(ci);
            }
        }
        ComponentPartition {
            component_of,
            vars,
            constraints,
        }
    }

    /// Builds the stand-alone instance of one component.
    ///
    /// `comp_vars` must be sorted ascending and `comp_constraints` must
    /// reference constraints whose members all lie in `comp_vars` (as
    /// produced by [`AllocationInstance::components`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from instance validation — impossible
    /// when the parent instance was itself validated.
    pub fn sub_instance(
        &self,
        comp_vars: &[usize],
        comp_constraints: &[usize],
    ) -> Result<AllocationInstance, SolveError> {
        let mut local_index = Vec::new();
        self.sub_instance_into(
            comp_vars,
            comp_constraints,
            &mut local_index,
            AllocationInstance::husk(),
        )
    }

    /// [`AllocationInstance::sub_instance`] into recycled storage: the
    /// component's CSR arrays are written directly into `husk`'s buffers
    /// (no intermediate [`PackingConstraint`] member `Vec`s, no
    /// allocations once `husk` and `local_index` have grown to size) and
    /// validated by the same shared `finalize` pass every constructor
    /// ends in. `local_index` is caller-owned scratch (resized to the
    /// parent's variable count).
    ///
    /// This is the arena path the multi-component recursion in
    /// [`crate::relaxed::solve_relaxed`] cycles through — one husk,
    /// recycled from component to component (ROADMAP item i).
    ///
    /// # Errors
    ///
    /// As [`AllocationInstance::sub_instance`].
    pub fn sub_instance_into(
        &self,
        comp_vars: &[usize],
        comp_constraints: &[usize],
        local_index: &mut Vec<usize>,
        mut husk: AllocationInstance,
    ) -> Result<AllocationInstance, SolveError> {
        local_index.clear();
        local_index.resize(self.num_vars(), usize::MAX);
        for (local, &j) in comp_vars.iter().enumerate() {
            local_index[j] = local;
        }
        husk.vars.clear();
        husk.vars.extend(comp_vars.iter().map(|&j| self.vars[j]));
        husk.v_weight = self.v_weight();
        husk.unit_price = self.unit_price();
        husk.caps.clear();
        husk.con_off.clear();
        husk.con_idx.clear();
        husk.con_off.push(0);
        for &ci in comp_constraints {
            husk.caps.push(self.capacity(ci));
            husk.con_idx.extend(
                self.members(ci)
                    .iter()
                    .map(|&j| local_index[j as usize] as u32),
            );
            husk.con_off.push(husk.con_idx.len() as u32);
        }
        husk.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{PackingConstraint, Variable};

    fn inst(nv: usize, cons: &[(u32, &[usize])]) -> AllocationInstance {
        AllocationInstance::new(
            (0..nv).map(|_| Variable::new(0.5)).collect(),
            cons.iter()
                .map(|&(cap, mem)| PackingConstraint::new(cap, mem.to_vec()))
                .collect(),
            100.0,
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn disjoint_constraints_split() {
        let i = inst(4, &[(4, &[0, 1]), (4, &[2, 3])]);
        let p = i.components();
        assert_eq!(p.len(), 2);
        assert_eq!(p.vars, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(p.constraints, vec![vec![0], vec![1]]);
        assert_eq!(p.component_of, vec![0, 0, 1, 1]);
    }

    #[test]
    fn chained_constraints_merge() {
        let i = inst(3, &[(4, &[0, 1]), (4, &[1, 2])]);
        let p = i.components();
        assert_eq!(p.len(), 1);
        assert_eq!(p.vars, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn free_variables_are_singletons() {
        let i = inst(3, &[(4, &[1])]);
        let p = i.components();
        assert_eq!(p.len(), 3);
        assert_eq!(p.component_of, vec![0, 1, 2]);
        assert_eq!(p.constraints[1], vec![0]);
    }

    #[test]
    fn component_order_follows_smallest_var() {
        // Constraint order reversed relative to variable order: components
        // must still be numbered by smallest member.
        let i = inst(4, &[(4, &[2, 3]), (4, &[0, 1])]);
        let p = i.components();
        assert_eq!(p.vars, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(p.constraints, vec![vec![1], vec![0]]);
    }

    #[test]
    fn sub_instance_preserves_relative_order() {
        let i = inst(4, &[(5, &[0, 1]), (7, &[2, 3]), (3, &[2])]);
        let p = i.components();
        let sub = i.sub_instance(&p.vars[1], &p.constraints[1]).unwrap();
        assert_eq!(sub.num_vars(), 2);
        assert_eq!(sub.num_constraints(), 2);
        assert_eq!(sub.capacity(0), 7);
        assert_eq!(sub.members(0), &[0, 1]);
        assert_eq!(sub.capacity(1), 3);
        assert_eq!(sub.members(1), &[0]);
        // Upper bounds must match the parent's for the same variables.
        assert_eq!(sub.upper_bound(0), i.upper_bound(2));
        assert_eq!(sub.upper_bound(1), i.upper_bound(3));
    }

    #[test]
    fn sub_instance_into_recycled_husk_is_identical() {
        // Cycling one husk through several components (the relaxed
        // solver's recursion pattern) must reproduce the allocating
        // constructor's result exactly.
        let i = inst(6, &[(5, &[0, 1]), (7, &[2, 3]), (3, &[2]), (4, &[4, 5])]);
        let p = i.components();
        let mut scratch = Vec::new();
        let mut husk = AllocationInstance::husk();
        for (vars, cons) in p.vars.iter().zip(&p.constraints) {
            let reference = i.sub_instance(vars, cons).unwrap();
            let built = i.sub_instance_into(vars, cons, &mut scratch, husk).unwrap();
            assert_eq!(built, reference);
            husk = built.into_husk();
        }
    }

    #[test]
    fn dsu_reset_reuses_and_matches_fresh() {
        let mut d = Dsu::new(3);
        d.union(0, 1);
        d.reset(4);
        for i in 0..4 {
            assert_eq!(d.find(i), i, "reset must restore singletons");
        }
        d.union(3, 2);
        assert_eq!(d.find(3), 2, "smallest root wins after reset");
    }

    #[test]
    fn budget_style_constraint_couples_everything() {
        let i = inst(4, &[(4, &[0, 1]), (4, &[2, 3]), (10, &[0, 1, 2, 3])]);
        assert_eq!(i.components().len(), 1);
    }
}
