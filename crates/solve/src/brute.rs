//! Exact enumeration for small instances.
//!
//! Used by tests and by the gap-measurement ablation to compare the
//! relax-and-round and greedy allocators against the true integer optimum
//! (`N^opt` in paper Prop. 2). Exponential — keep instances tiny.

use crate::instance::AllocationInstance;

/// Exhaustively searches integer allocations `1 ≤ n_j ≤ min(ub_j, cap)`
/// and returns the best feasible point and its objective value.
///
/// Returns the all-ones point when nothing better exists. `per_var_cap`
/// bounds the search range per variable on top of the instance's own
/// upper bounds, keeping the enumeration tractable.
///
/// # Panics
///
/// Panics if the instance has no feasible point (cannot happen for
/// instances built through [`AllocationInstance::new`]).
///
/// # Example
///
/// ```
/// use qdn_solve::{AllocationInstance, PackingConstraint, Variable};
/// use qdn_solve::brute::brute_force_best;
///
/// let inst = AllocationInstance::new(
///     vec![Variable::new(0.5); 2],
///     vec![PackingConstraint::new(4, vec![0, 1])],
///     100.0,
///     1.0,
/// ).unwrap();
/// let (best, value) = brute_force_best(&inst, 4);
/// assert!(inst.is_feasible_int(&best));
/// assert!(value.is_finite());
/// ```
pub fn brute_force_best(instance: &AllocationInstance, per_var_cap: u32) -> (Vec<u32>, f64) {
    let n = instance.num_vars();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let caps: Vec<u32> = (0..n)
        .map(|j| instance.upper_bound(j).min(per_var_cap).max(1))
        .collect();
    let mut current = vec![1u32; n];
    let mut best = current.clone();
    let mut best_val = f64::NEG_INFINITY;
    enumerate(instance, &caps, &mut current, 0, &mut best, &mut best_val);
    assert!(
        best_val.is_finite(),
        "instance has no feasible point within the enumeration bounds"
    );
    (best, best_val)
}

fn enumerate(
    instance: &AllocationInstance,
    caps: &[u32],
    current: &mut Vec<u32>,
    j: usize,
    best: &mut Vec<u32>,
    best_val: &mut f64,
) {
    if j == current.len() {
        if instance.is_feasible_int(current) {
            let v = instance.objective_int(current);
            if v > *best_val {
                *best_val = v;
                best.clone_from(current);
            }
        }
        return;
    }
    for value in 1..=caps[j] {
        current[j] = value;
        // Prune: partial feasibility — if constraints among the first j+1
        // variables are already violated assuming the rest at 1, stop.
        if partial_feasible(instance, current, j) {
            enumerate(instance, caps, current, j + 1, best, best_val);
        }
    }
    current[j] = 1;
}

fn partial_feasible(instance: &AllocationInstance, current: &[u32], upto: usize) -> bool {
    (0..instance.num_constraints()).all(|c| {
        let usage: u64 = instance
            .members(c)
            .iter()
            .map(|&m| {
                if (m as usize) <= upto {
                    current[m as usize] as u64
                } else {
                    1
                }
            })
            .sum();
        usage <= instance.capacity(c) as u64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{PackingConstraint, Variable};

    #[test]
    fn empty_instance() {
        let i = AllocationInstance::new(vec![], vec![], 1.0, 0.0).unwrap();
        let (best, val) = brute_force_best(&i, 5);
        assert!(best.is_empty());
        assert_eq!(val, 0.0);
    }

    #[test]
    fn single_variable_unconstrained_price_zero_takes_cap() {
        let i = AllocationInstance::new(vec![Variable::new(0.5)], vec![], 10.0, 0.0).unwrap();
        let (best, _) = brute_force_best(&i, 6);
        assert_eq!(best, vec![6]); // objective increasing, hits per_var_cap
    }

    #[test]
    fn finds_known_optimum() {
        // cap 4 shared; V large, price small: best is (2,2) by symmetry.
        let i = AllocationInstance::new(
            vec![Variable::new(0.5), Variable::new(0.5)],
            vec![PackingConstraint::new(4, vec![0, 1])],
            1000.0,
            0.5,
        )
        .unwrap();
        let (best, _) = brute_force_best(&i, 4);
        assert_eq!(best, vec![2, 2]);
    }

    #[test]
    fn price_dominates() {
        let i = AllocationInstance::new(
            vec![Variable::new(0.9)],
            vec![PackingConstraint::new(10, vec![0])],
            1.0,
            1e6,
        )
        .unwrap();
        let (best, _) = brute_force_best(&i, 10);
        assert_eq!(best, vec![1]);
    }

    #[test]
    fn respects_all_constraints() {
        let i = AllocationInstance::new(
            vec![Variable::new(0.4), Variable::new(0.6), Variable::new(0.5)],
            vec![
                PackingConstraint::new(4, vec![0, 1]),
                PackingConstraint::new(3, vec![1, 2]),
            ],
            500.0,
            1.0,
        )
        .unwrap();
        let (best, _) = brute_force_best(&i, 5);
        assert!(i.is_feasible_int(&best));
    }
}
