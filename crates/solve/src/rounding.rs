//! Down-rounding with surplus allocation (paper Algorithm 2, step 4).
//!
//! Given the relaxed optimum `x̃*`, take `n_j = ⌊x̃*_j⌋` (never below 1 —
//! the relaxed problem enforces `x̃ ≥ 1`), which is feasible because the
//! capacities are integers, then greedily re-allocate any remaining
//! capacity to variables with positive marginal gain. The result satisfies
//! the paper's Eq. 8: `n*_j ≥ 1` and `x̃*_j − n*_j ≤ 1`, which is what the
//! Δ-optimality proof of Prop. 2 needs.

use crate::greedy::greedy_fill;
use crate::instance::AllocationInstance;
use crate::SolveError;

/// Rounds a feasible relaxed solution down and fills surplus capacity.
///
/// # Errors
///
/// Returns [`SolveError::DimensionMismatch`] if `x` has the wrong arity.
///
/// # Example
///
/// ```
/// use qdn_solve::{AllocationInstance, PackingConstraint, Variable};
/// use qdn_solve::relaxed::solve_relaxed;
/// use qdn_solve::rounding::round_down_and_fill;
///
/// let inst = AllocationInstance::new(
///     vec![Variable::new(0.55); 2],
///     vec![PackingConstraint::new(5, vec![0, 1])],
///     1000.0,
///     2.0,
/// ).unwrap();
/// let relaxed = solve_relaxed(&inst, &Default::default()).unwrap();
/// let n = round_down_and_fill(&inst, &relaxed.x).unwrap();
/// assert!(inst.is_feasible_int(&n));
/// // Eq. 8: x̃ - n <= 1 before surplus, and surplus only increases n.
/// for (xi, ni) in relaxed.x.iter().zip(&n) {
///     assert!(*ni as f64 >= *xi - 1.0);
/// }
/// ```
pub fn round_down_and_fill(
    instance: &AllocationInstance,
    x: &[f64],
) -> Result<Vec<u32>, SolveError> {
    if x.len() != instance.num_vars() {
        return Err(SolveError::DimensionMismatch {
            expected: instance.num_vars(),
            got: x.len(),
        });
    }
    // Down-round; x >= 1 so floor >= 1. Tolerate tiny negative excursions
    // from the numeric solver.
    let down: Vec<u32> = x.iter().map(|&xi| (xi.floor().max(1.0)) as u32).collect();
    debug_assert!(
        instance.is_feasible_int(&down),
        "down-rounding a feasible relaxed point stays feasible"
    );
    // Surplus phase: greedy positive-gain increments.
    greedy_fill(instance, &down, 0.0)
}

/// Verifies the Eq. 8 rounding relation between a relaxed point and its
/// rounded counterpart: `n ≥ 1` and `x − n ≤ 1` component-wise.
///
/// Exposed for tests and the theory-validation harness.
pub fn satisfies_rounding_relation(x: &[f64], n: &[u32]) -> bool {
    x.len() == n.len()
        && n.iter().all(|&ni| ni >= 1)
        && x.iter()
            .zip(n)
            .all(|(&xi, &ni)| xi - (ni as f64) <= 1.0 + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{PackingConstraint, Variable};
    use crate::relaxed::{solve_relaxed, RelaxedOptions};

    fn inst(caps: &[(u32, &[usize])], ps: &[f64], v: f64, price: f64) -> AllocationInstance {
        AllocationInstance::new(
            ps.iter().map(|&p| Variable::new(p)).collect(),
            caps.iter()
                .map(|&(c, m)| PackingConstraint::new(c, m.to_vec()))
                .collect(),
            v,
            price,
        )
        .unwrap()
    }

    #[test]
    fn rounding_preserves_feasibility() {
        let i = inst(&[(5, &[0, 1]), (3, &[0])], &[0.5, 0.6], 800.0, 1.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        let n = round_down_and_fill(&i, &s.x).unwrap();
        assert!(i.is_feasible_int(&n));
    }

    #[test]
    fn rounding_relation_holds() {
        let i = inst(&[(7, &[0, 1, 2])], &[0.3, 0.5, 0.7], 1200.0, 3.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        let n = round_down_and_fill(&i, &s.x).unwrap();
        assert!(satisfies_rounding_relation(&s.x, &n), "x={:?} n={n:?}", s.x);
    }

    #[test]
    fn surplus_fill_improves_over_plain_floor() {
        // Fractional optimum leaves a unit of slack that the fill phase
        // should claim when gains are positive.
        let i = inst(&[(5, &[0, 1])], &[0.55, 0.55], 5000.0, 0.1);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        let down: Vec<u32> = s.x.iter().map(|&xi| xi.floor().max(1.0) as u32).collect();
        let filled = round_down_and_fill(&i, &s.x).unwrap();
        assert!(i.objective_int(&filled) >= i.objective_int(&down));
        // With near-zero price the filled solution should use all 5 units.
        assert_eq!(filled.iter().sum::<u32>(), 5);
    }

    #[test]
    fn dimension_mismatch() {
        let i = inst(&[(4, &[0])], &[0.5], 10.0, 0.0);
        assert!(matches!(
            round_down_and_fill(&i, &[1.0, 2.0]),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn relation_checker_rejects_bad_pairs() {
        assert!(!satisfies_rounding_relation(&[3.5], &[2])); // gap 1.5 > 1
        assert!(!satisfies_rounding_relation(&[1.0], &[0])); // below 1
        assert!(!satisfies_rounding_relation(&[1.0, 2.0], &[1])); // arity
        assert!(satisfies_rounding_relation(&[2.7], &[2]));
    }

    /// Prop. 2: the rounded solution is within Δ = V·F·L·log(2 − p_min)
    /// of the true integer optimum. Here F·L = number of variables.
    #[test]
    fn prop2_gap_bound_holds_on_random_instances() {
        use crate::brute::brute_force_best;
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for trial in 0..25 {
            let nv = rng.random_range(2..4usize);
            let ps: Vec<f64> = (0..nv).map(|_| rng.random_range(0.25..0.9)).collect();
            let cap = rng.random_range(nv as u32 + 1..=nv as u32 + 5);
            let v = rng.random_range(100.0..2000.0);
            let price = rng.random_range(0.0..30.0);
            let i = AllocationInstance::new(
                ps.iter().map(|&p| Variable::new(p)).collect(),
                vec![PackingConstraint::new(cap, (0..nv).collect())],
                v,
                price,
            )
            .unwrap();
            let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
            let n = round_down_and_fill(&i, &s.x).unwrap();
            let (_, opt_val) = brute_force_best(&i, 8);
            let p_min = ps.iter().copied().fold(1.0, f64::min);
            let delta = v * nv as f64 * (2.0 - p_min).ln();
            let got = i.objective_int(&n);
            assert!(
                opt_val - got <= delta + 1e-6,
                "trial {trial}: gap {} exceeds Δ={delta}",
                opt_val - got
            );
        }
    }
}
