//! Accelerated (Nesterov/FISTA) dual iteration — ROADMAP item (h).
//!
//! # Why acceleration applies here
//!
//! The Lagrangian dual of the capacity constraints is
//!
//! ```text
//! D(λ) = Σ_j φ_j(κ + Σ_{c∋j} λ_c) + Σ_c λ_c·cap_c,       λ ≥ 0,
//! φ_j(pr) = max_{x ∈ [1, ub_j]} V·ln(1 − β_j^x) − pr·x,
//! ```
//!
//! and because the log-success utility is *strictly* concave, the inner
//! maximizer `x*_j(pr)` is unique — the closed form from
//! [`crate::scalar::stationary_point`] clamped to `[1, ub_j]` — so by
//! Danskin's theorem `D` is differentiable with
//! `∂D/∂λ_c = cap_c − Σ_{j∈c} x*_j`. On the interior segment the
//! conjugate value is the log-sum-exp-type smooth term
//! `V·(−ln(1+ρ)) − pr·x*(ρ)` (see
//! [`crate::scalar::interior_log_term`]), and `x*(pr)` is continuous and
//! piecewise smooth across the clamp thresholds, so `∇D` is Lipschitz.
//! That is exactly the structure Nesterov acceleration needs: the
//! smoothing the ROADMAP sketch asked for ("FISTA on the log-sum-exp
//! smoothed dual") is *inherent* — the strictly concave utility plays
//! the role of the smoother, there is no auxiliary smoothing parameter
//! to trade accuracy against, and every gap is certified against the
//! exact dual.
//!
//! # The iteration
//!
//! Projected FISTA minimizing `D` over `λ ≥ 0`, with two standard
//! robustness refinements:
//!
//! * **Backtracking** on the (unknown) gradient Lipschitz constant: the
//!   prox step `λ⁺ = max(0, y − ∇D(y)/L)` is accepted only when the
//!   smoothness upper bound
//!   `D(λ⁺) ≤ D(y) + ⟨∇D(y), λ⁺−y⟩ + (L/2)‖λ⁺−y‖²` holds, doubling `L`
//!   otherwise; on iterations without backtracking `L` decays slightly
//!   so an early conservative estimate cannot stick.
//! * **Adaptive restart** (O'Donoghue–Candès, function variant): when an
//!   accepted step increases `D`, the momentum is reset (`t = 1`). On
//!   duals that are strongly convex near the optimum — the common case
//!   here — restarting upgrades the `O(1/k²)` worst case to linear
//!   convergence, which is what makes the strict 1e-4 tolerance
//!   reachable in tens of iterations at paper scale.
//!
//! The momentum point `y` may leave the nonnegative orthant; `D(y)` is
//! still well defined (a negative price just pins `x* = ub`), and only
//! the *projected* iterates — which are dual feasible — contribute to
//! the certified `dual_bound`. Primal recovery mirrors the subgradient
//! loop: the repaired current argmax and the repaired running average
//! are both candidate incumbents each iteration, and as `λ_k → λ*` the
//! unique argmax converges to the primal optimum, driving the certified
//! gap to zero (the subgradient iterate, by contrast, circles the
//! optimum forever at `O(1/k)`).
//!
//! The loop shares the CSR evaluation passes with the subgradient method
//! ([`crate::relaxed::dual_value_at`], [`crate::relaxed::residual_pass`],
//! [`crate::relaxed::consider_primal`]): one price-gather + fused
//! argmax/dual pass per gradient or function evaluation, a fixed set of
//! buffers allocated up front, and nothing allocated inside the loop.

use crate::instance::AllocationInstance;
use crate::relaxed::{
    consider_primal, dual_value_at, residual_pass, seeded_incumbent, RelaxedSolution, VarCache,
};

/// Growth factor when the smoothness bound fails (standard FISTA
/// backtracking).
const L_UP: f64 = 2.0;
/// Per-iteration decay applied when no backtracking was needed, letting
/// the step length adapt to the local curvature.
const L_DOWN: f64 = 0.9;
/// Give-up ceiling for the Lipschitz estimate: beyond this the step is
/// numerically zero and the accepted point is as good as the momentum
/// point.
const L_MAX: f64 = 1e18;

/// One accelerated dual run: FISTA from `lambda0` (`None` = cold λ = 0),
/// stopping when the certified relative gap falls below `accept_gap` or
/// after `max_iters` iterations. `incumbent` seeds the best-known
/// primal/dual trackers (the warm-fallback carry-over).
pub(crate) fn accelerated_iterate(
    instance: &AllocationInstance,
    lambda0: Option<&[f64]>,
    accept_gap: f64,
    max_iters: usize,
    incumbent: Option<&RelaxedSolution>,
) -> RelaxedSolution {
    let n = instance.num_vars();
    let m = instance.num_constraints();
    let cache = VarCache::new(instance);

    // λ: last accepted (projected, dual-feasible) iterate.
    let mut lambda = match lambda0 {
        Some(w) => w.iter().map(|&l| l.max(0.0)).collect::<Vec<_>>(),
        None => vec![0.0f64; m],
    };
    // Candidate iterate and momentum point.
    let mut lambda_new = vec![0.0f64; m];
    let mut y = lambda.clone();
    let mut price = vec![0.0f64; n];
    let mut x = vec![1.0f64; n]; // argmax at the gradient point y
    let mut x_new = vec![1.0f64; n]; // argmax at the candidate λ⁺
    let mut x_avg = vec![0.0f64; n];
    let mut repaired = vec![0.0f64; n];
    let mut theta_c = vec![1.0f64; m];
    let mut g = vec![0.0f64; m]; // residual usage − cap = −∇D
    let (mut best_dual, mut best_primal, mut best_x) = seeded_incumbent(incumbent, n);

    // The starting point is dual feasible: a valid bound and the restart
    // reference.
    let d0 = dual_value_at(instance, &cache, &lambda, &mut price, &mut x);
    best_dual = best_dual.min(d0);
    let mut d_cur = d0;

    let mut l_est = 1.0f64;
    let mut t = 1.0f64;
    let mut iterations = 0;
    let mut converged = false;

    for k in 1..=max_iters {
        iterations = k;

        // Gradient at the momentum point. On the first iteration
        // `y == λ₀`, whose dual value and argmax the pre-loop evaluation
        // already produced — reuse them instead of paying a second CSR
        // pass (singleton components converge in one iteration, so this
        // is a fixed fraction of their solve cost).
        let d_y = if k == 1 {
            d0
        } else {
            dual_value_at(instance, &cache, &y, &mut price, &mut x)
        };
        residual_pass(instance, &x, &mut g);

        // Backtracked prox step: λ⁺ = max(0, y + g/L)  (g = −∇D).
        let mut d_new;
        loop {
            for c in 0..m {
                lambda_new[c] = (y[c] + g[c] / l_est).max(0.0);
            }
            d_new = dual_value_at(instance, &cache, &lambda_new, &mut price, &mut x_new);
            let mut lin = 0.0;
            let mut dist2 = 0.0;
            for c in 0..m {
                let d = lambda_new[c] - y[c];
                lin += -g[c] * d;
                dist2 += d * d;
            }
            // qdn-lint: allow(float-eq, reason="exact zero-step guard: dist2 is a sum of squares, == 0 iff every component is identically zero; a tolerance would mask genuine tiny steps")
            if dist2 == 0.0
                || d_new <= d_y + lin + 0.5 * l_est * dist2 + 1e-12 * (1.0 + d_y.abs())
                || l_est >= L_MAX
            {
                if dist2 > 0.0 && l_est < L_MAX {
                    // No backtracking needed: allow the estimate to relax
                    // toward the local curvature next iteration.
                    l_est *= L_DOWN;
                }
                break;
            }
            l_est *= L_UP;
        }
        best_dual = best_dual.min(d_new);

        // Primal recovery: running average of accepted argmaxes plus the
        // current argmax, both repaired.
        let w = 1.0 / k as f64;
        for j in 0..n {
            x_avg[j] += (x_new[j] - x_avg[j]) * w;
        }
        for candidate in [&x_new, &x_avg] {
            consider_primal(
                instance,
                &cache,
                candidate,
                &mut theta_c,
                &mut repaired,
                &mut best_primal,
                &mut best_x,
            );
        }

        // Certified-gap stop (same formula as the subgradient loop).
        if best_dual.is_finite() && best_primal.is_finite() {
            let gap = best_dual - best_primal;
            let scale = 1.0 + best_dual.abs().max(best_primal.abs());
            if gap / scale < accept_gap {
                std::mem::swap(&mut lambda, &mut lambda_new);
                converged = true;
                break;
            }
        }

        // Momentum update with function-value restart.
        if d_new > d_cur {
            t = 1.0;
            y.copy_from_slice(&lambda_new);
        } else {
            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
            let beta = (t - 1.0) / t_next;
            for c in 0..m {
                y[c] = lambda_new[c] + beta * (lambda_new[c] - lambda[c]);
            }
            t = t_next;
        }
        d_cur = d_new;
        std::mem::swap(&mut lambda, &mut lambda_new);
    }

    RelaxedSolution {
        x: best_x,
        primal_value: best_primal,
        dual_bound: best_dual,
        iterations,
        lambda,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use crate::instance::{PackingConstraint, Variable};
    use crate::relaxed::{solve_relaxed, DualMethod, RelaxedOptions};
    use crate::AllocationInstance;

    fn accel_opts() -> RelaxedOptions {
        RelaxedOptions {
            method: DualMethod::Accelerated,
            ..RelaxedOptions::default()
        }
    }

    fn inst(ps: &[f64], cons: &[(u32, &[usize])], v: f64, price: f64) -> AllocationInstance {
        AllocationInstance::new(
            ps.iter().map(|&p| Variable::new(p)).collect(),
            cons.iter()
                .map(|&(cap, mem)| PackingConstraint::new(cap, mem.to_vec()))
                .collect(),
            v,
            price,
        )
        .unwrap()
    }

    #[test]
    fn converges_fast_on_binding_instance() {
        let i = inst(&[0.55, 0.55], &[(4, &[0, 1])], 2500.0, 1.0);
        let s = solve_relaxed(&i, &accel_opts()).unwrap();
        assert!(s.converged, "gap {}", s.relative_gap());
        assert!(s.iterations < 600);
        assert!(i.is_feasible_real(&s.x, 1e-6));
    }

    #[test]
    fn certified_gap_is_genuine() {
        // The reported bounds must bracket the brute-force optimum.
        let i = inst(
            &[0.45, 0.7, 0.3],
            &[(6, &[0, 1, 2]), (3, &[0, 1])],
            400.0,
            5.0,
        );
        let s = solve_relaxed(&i, &accel_opts()).unwrap();
        let (_, brute) = crate::brute::brute_force_best(&i, 6);
        // Brute force is integer-restricted, so it lower-bounds the
        // relaxed optimum; the dual bound must still dominate it.
        assert!(
            s.dual_bound >= brute - 1e-9,
            "dual {} vs brute {brute}",
            s.dual_bound
        );
        assert!(s.primal_value <= s.dual_bound + 1e-9 * (1.0 + s.dual_bound.abs()));
    }

    #[test]
    fn unconstrained_component_converges_immediately() {
        let i = inst(&[0.5], &[], 1000.0, 3.0);
        let s = solve_relaxed(&i, &accel_opts()).unwrap();
        assert!(s.converged);
        assert_eq!(s.iterations, 1);
    }

    #[test]
    fn momentum_survives_zero_price_region() {
        // κ = 0 and loose capacity: prices start at 0, the argmax pins to
        // ub everywhere, and the solver must still certify a gap.
        let i = inst(&[0.6, 0.6], &[(40, &[0, 1])], 50.0, 0.0);
        let s = solve_relaxed(&i, &accel_opts()).unwrap();
        assert!(i.is_feasible_real(&s.x, 1e-6));
        assert!(s.converged, "gap {}", s.relative_gap());
    }

    #[test]
    fn deterministic_across_reruns() {
        let i = inst(
            &[0.3, 0.8, 0.5],
            &[(5, &[0, 1, 2]), (3, &[0, 2])],
            1500.0,
            12.0,
        );
        let a = solve_relaxed(&i, &accel_opts()).unwrap();
        let b = solve_relaxed(&i, &accel_opts()).unwrap();
        assert_eq!(a, b);
    }
}
