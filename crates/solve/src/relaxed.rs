//! Lagrangian dual solver for the continuous relaxation of P2.
//!
//! The relaxed problem (paper Algorithm 2, step 3) is separable concave
//! with linear packing constraints, so its Lagrangian dual decomposes into
//! per-variable closed-form maximizations ([`crate::scalar`]). Dual prices
//! are updated by projected subgradient with a diminishing step; the
//! primal answer is recovered from the ergodic (running-average) iterate
//! with a feasibility repair that exactly preserves the `x ≥ 1` lower
//! bound (so the Eq. 8 rounding relation stays valid downstream).
//!
//! # Inner-loop layout (PR 2)
//!
//! The subgradient iteration runs entirely over the instance's flat CSR
//! incidence arrays ([`AllocationInstance`] stores variable→constraint
//! and constraint→member membership as contiguous index+offset slices):
//! one branch-free gather pass computes every variable's price, a fused
//! pass updates `x` and accumulates the dual value from per-variable
//! cached transcendentals (`ln β`, `ln P(1)`, `ln P(ub)` are computed
//! once per solve, and the interior dual term falls out of the
//! stationarity condition as `−ln(1+ρ)` — no `exp`/`ln` pair per
//! variable per iteration), and the repair/objective passes reuse
//! per-solve buffers. A solve allocates a fixed number of vectors up
//! front and nothing inside the loop.
//!
//! # Warm starts
//!
//! [`solve_relaxed_warm`] seeds the dual iteration from a caller-provided
//! λ (typically the memoized prices of a *neighboring* route profile —
//! see `qdn-core::profile_eval`). A warm run is accepted once its
//! relative gap falls below `max(gap_tolerance, warm_accept_gap)` — the
//! secondary threshold exists because the subgradient tail decays like
//! `O(1/k)`, so the strict tolerance is often unreachable within the
//! budget and the cold run's *actual* final quality is what a good warm
//! seed reproduces in a handful of iterations (see
//! [`RelaxedOptions::warm_accept_gap`]). A warm-started run that fails
//! even that relaxed bar within the iteration budget is discarded and
//! the solve re-runs cold from λ = 0, so a bad warm start can cost time
//! but never quality: every returned solution is feasible with a
//! duality gap no worse than the acceptance threshold it converged
//! under, and [`RelaxedSolution::converged`] reports whether it did.
//! The final prices come back in [`RelaxedSolution::lambda`] for the
//! caller to store.

use serde::{Deserialize, Serialize};

use crate::instance::{ln_success, AllocationInstance};
use crate::SolveError;

/// Options for [`solve_relaxed`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelaxedOptions {
    /// Maximum subgradient iterations.
    pub max_iterations: usize,
    /// Initial subgradient step size.
    pub initial_step: f64,
    /// Stop early when the relative duality gap falls below this value.
    pub gap_tolerance: f64,
    /// Let callers that cache dual prices (the profile evaluator's
    /// per-component λ store) seed repeat solves via
    /// [`solve_relaxed_warm`]. The solver itself ignores this flag — it
    /// is configuration surface for the evaluation layer. **Off by
    /// default**: warm-started solves are equal only up to the duality
    /// gap, so paths that must stay bit-identical to the full-rebuild
    /// reference keep it disabled.
    pub warm_start: bool,
    /// Secondary acceptance gap for *warm-started* runs only. Subgradient
    /// iterations shed the duality gap like `O(1/k)`, so on coupled
    /// instances the strict `gap_tolerance` is often unreachable within
    /// the budget and a cold run simply spends all its iterations
    /// grinding the tail (e.g. ~0.9% relative gap after 600 iterations
    /// at paper scale). A good warm seed lands at that same quality in a
    /// handful of iterations; requiring it to then reach the unreachable
    /// strict tolerance would waste the entire budget *and* trigger the
    /// cold fallback. A warm run is therefore accepted once its relative
    /// gap falls below `max(gap_tolerance, warm_accept_gap)`; cold runs
    /// ignore this field entirely. The default 1e-2 matches the gap a
    /// full cold budget actually achieves on paper-scale components.
    pub warm_accept_gap: f64,
}

impl Default for RelaxedOptions {
    fn default() -> Self {
        RelaxedOptions {
            max_iterations: 600,
            initial_step: 1.0,
            gap_tolerance: 1e-4,
            warm_start: false,
            warm_accept_gap: 1e-2,
        }
    }
}

/// Result of the relaxed solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelaxedSolution {
    /// A feasible primal point (`x_j ≥ 1`, all constraints satisfied).
    pub x: Vec<f64>,
    /// Objective value at `x` (lower bound on the relaxed optimum).
    pub primal_value: f64,
    /// Best dual value observed (upper bound on the relaxed optimum).
    pub dual_bound: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Final dual prices, one per constraint (warm-start seed for
    /// neighboring instances).
    pub lambda: Vec<f64>,
    /// Whether the relative duality gap fell below the tolerance within
    /// the iteration budget.
    pub converged: bool,
}

impl RelaxedSolution {
    /// Absolute duality gap `dual_bound − primal_value` (≥ 0 up to
    /// numerical error); small means near-optimal.
    pub fn gap(&self) -> f64 {
        self.dual_bound - self.primal_value
    }
}

/// Solves the continuous relaxation `max Σ V·ln P_j(x_j) − κ·x_j` s.t.
/// packing constraints and `x ≥ 1`, starting cold from `λ = 0`.
///
/// # Errors
///
/// Returns [`SolveError::InfeasibleAtLowerBound`] only if the instance
/// was constructed without validation (cannot happen through
/// [`AllocationInstance::new`]); otherwise always produces a feasible
/// solution.
///
/// # Example
///
/// ```
/// use qdn_solve::{AllocationInstance, PackingConstraint, Variable};
/// use qdn_solve::relaxed::{solve_relaxed, RelaxedOptions};
///
/// let inst = AllocationInstance::new(
///     vec![Variable::new(0.55); 2],
///     vec![PackingConstraint::new(6, vec![0, 1])],
///     1000.0,
///     5.0,
/// ).unwrap();
/// let sol = solve_relaxed(&inst, &RelaxedOptions::default()).unwrap();
/// assert!(inst.is_feasible_real(&sol.x, 1e-6));
/// assert!(sol.gap() < 1.0);
/// ```
pub fn solve_relaxed(
    instance: &AllocationInstance,
    options: &RelaxedOptions,
) -> Result<RelaxedSolution, SolveError> {
    solve_relaxed_warm(instance, options, None)
}

/// [`solve_relaxed`] with an optional warm-start λ (one entry per
/// constraint; negative entries are clamped to 0).
///
/// With `warm = None` (or an all-zero warm vector) this is exactly the
/// cold solve. Otherwise the dual iteration starts from the given
/// prices; if it does not reach the gap tolerance within the iteration
/// budget, the warm attempt is discarded and the solve re-runs cold, so
/// the result is never worse-guaranteed than [`solve_relaxed`]'s (see
/// the module docs).
///
/// # Errors
///
/// As [`solve_relaxed`].
///
/// # Panics
///
/// Debug-asserts `warm.len() == instance.num_constraints()`.
pub fn solve_relaxed_warm(
    instance: &AllocationInstance,
    options: &RelaxedOptions,
    warm: Option<&[f64]>,
) -> Result<RelaxedSolution, SolveError> {
    let n = instance.num_vars();
    let m = instance.num_constraints();
    if let Some(w) = warm {
        debug_assert_eq!(w.len(), m, "warm-start λ arity mismatch");
    }
    if n == 0 {
        return Ok(RelaxedSolution {
            x: Vec::new(),
            primal_value: 0.0,
            dual_bound: 0.0,
            iterations: 0,
            lambda: vec![0.0; m],
            converged: true,
        });
    }

    // Decompose by constraint coupling: the dual iteration below uses
    // *global* convergence checks and a *global* Polyak step, so solving
    // independent components jointly both converges slower and produces
    // different floating-point trajectories than solving them alone.
    // Working component-wise makes the result identical whether a
    // component is solved inside a joint instance or as a stand-alone
    // sub-instance — the invariant the incremental profile evaluator in
    // `qdn-core` relies on.
    let partition = instance.components();
    if partition.len() > 1 {
        let mut x = vec![0.0f64; n];
        let mut lambda = vec![0.0f64; m];
        let mut primal_value = 0.0;
        let mut dual_bound = 0.0;
        let mut iterations = 0;
        let mut converged = true;
        let mut warm_buf: Vec<f64> = Vec::new();
        for (comp_vars, comp_cons) in partition.vars.iter().zip(&partition.constraints) {
            let sub = instance.sub_instance(comp_vars, comp_cons)?;
            let sub_warm = warm.map(|w| {
                warm_buf.clear();
                warm_buf.extend(comp_cons.iter().map(|&ci| w[ci]));
                &warm_buf[..]
            });
            let sol = solve_single(&sub, options, sub_warm);
            for (local, &j) in comp_vars.iter().enumerate() {
                x[j] = sol.x[local];
            }
            for (local, &ci) in comp_cons.iter().enumerate() {
                lambda[ci] = sol.lambda[local];
            }
            primal_value += sol.primal_value;
            dual_bound += sol.dual_bound;
            iterations = iterations.max(sol.iterations);
            converged &= sol.converged;
        }
        return Ok(RelaxedSolution {
            x,
            primal_value,
            dual_bound,
            iterations,
            lambda,
            converged,
        });
    }

    Ok(solve_single(instance, options, warm))
}

/// Solves one coupling component, trying the warm start first (when
/// given and non-trivial) and falling back to the cold λ = 0 iteration
/// when the warm run does not converge.
fn solve_single(
    instance: &AllocationInstance,
    options: &RelaxedOptions,
    warm: Option<&[f64]>,
) -> RelaxedSolution {
    if let Some(w) = warm {
        if w.iter().any(|&l| l > 0.0) {
            let accept = options.gap_tolerance.max(options.warm_accept_gap);
            let sol = dual_iterate(instance, options, Some(w), accept);
            if sol.converged {
                return sol;
            }
        }
    }
    dual_iterate(instance, options, None, options.gap_tolerance)
}

/// The projected-subgradient iteration from a given starting λ
/// (`None` = all zeros), stopping once the relative gap falls below
/// `accept_gap`. See the module docs for the loop layout.
fn dual_iterate(
    instance: &AllocationInstance,
    options: &RelaxedOptions,
    lambda0: Option<&[f64]>,
    accept_gap: f64,
) -> RelaxedSolution {
    let n = instance.num_vars();
    let m = instance.num_constraints();
    let v = instance.v_weight();
    let kappa = instance.unit_price();
    // Flat CSR incidence (see `AllocationInstance` docs).
    let mem_off = &instance.mem_off;
    let mem_idx = &instance.mem_idx;
    let con_off = &instance.con_off;
    let con_idx = &instance.con_idx;
    let caps = &instance.caps;

    // Per-variable constants, computed once per solve. `ln_p1`/`ln_p_ub`
    // use the canonical `ln_success` formula so boundary iterates carry
    // bit-identical objective terms to the unfused reference.
    let mut ln_beta = vec![0.0f64; n];
    let mut ub_f = vec![0.0f64; n];
    let mut ln_p1 = vec![0.0f64; n];
    let mut ln_p_ub = vec![0.0f64; n];
    for j in 0..n {
        let p = instance.vars[j].p;
        ln_beta[j] = f64::ln_1p(-p);
        ub_f[j] = instance.ub[j] as f64;
        ln_p1[j] = ln_success(p, 1.0);
        ln_p_ub[j] = ln_success(p, ub_f[j]);
    }

    let mut lambda = match lambda0 {
        Some(w) => w.iter().map(|&l| l.max(0.0)).collect::<Vec<_>>(),
        None => vec![0.0f64; m],
    };
    let mut price = vec![0.0f64; n];
    let mut x = vec![1.0f64; n];
    let mut x_avg = vec![0.0f64; n];
    let mut repaired = vec![0.0f64; n];
    let mut theta_c = vec![1.0f64; m];
    let mut g = vec![0.0f64; m];
    let mut best_dual = f64::INFINITY;
    let mut best_primal = f64::NEG_INFINITY;
    let mut best_x = vec![1.0f64; n];
    let mut iterations = 0;
    let mut converged = false;

    for k in 1..=options.max_iterations {
        iterations = k;

        // Pass 1: per-variable prices — a flat gather over the
        // variable→constraint CSR slice.
        for j in 0..n {
            let (lo, hi) = (mem_off[j] as usize, mem_off[j + 1] as usize);
            let mut acc = 0.0;
            for &c in &mem_idx[lo..hi] {
                acc += lambda[c as usize];
            }
            price[j] = kappa + acc;
        }

        // Pass 2 (fused): closed-form x update + dual accumulation.
        // D(λ) = Σ_j [V ln P_j(x_j) − price_j x_j] + Σ_c λ_c cap_c, and at
        // the interior stationary point t* = ρ/(1+ρ) the log term is
        // ln(1 − t*) = −ln(1+ρ) — no extra transcendental.
        let mut dual = 0.0;
        for j in 0..n {
            let pr = price[j];
            if pr <= 0.0 {
                // Increasing utility: take everything available.
                x[j] = ub_f[j];
                dual += v * ln_p_ub[j] - pr * ub_f[j];
                continue;
            }
            let rho = pr / (-v * ln_beta[j]);
            let x_star = crate::scalar::stationary_point(rho, ln_beta[j]);
            if x_star <= 1.0 {
                x[j] = 1.0;
                dual += v * ln_p1[j] - pr;
            } else if x_star >= ub_f[j] {
                x[j] = ub_f[j];
                dual += v * ln_p_ub[j] - pr * ub_f[j];
            } else {
                x[j] = x_star;
                dual += v * (-f64::ln_1p(rho)) - pr * x_star;
            }
        }
        for (c, &l) in lambda.iter().enumerate() {
            dual += l * caps[c] as f64;
        }
        best_dual = best_dual.min(dual);

        // Ergodic average for primal recovery.
        let w = 1.0 / k as f64;
        for j in 0..n {
            x_avg[j] += (x[j] - x_avg[j]) * w;
        }

        // Candidate primal points: repaired current iterate and repaired
        // running average, evaluated in place.
        for candidate in [&x, &x_avg] {
            repair_into(instance, candidate, &mut theta_c, &mut repaired);
            let mut value = 0.0;
            for j in 0..n {
                let xj = repaired[j];
                let ls = if xj == 1.0 {
                    ln_p1[j]
                } else {
                    (-f64::exp_m1(xj * ln_beta[j])).ln()
                };
                value += v * ls - kappa * xj;
            }
            if value > best_primal {
                best_primal = value;
                best_x.copy_from_slice(&repaired);
            }
        }

        // Convergence check.
        if best_dual.is_finite() && best_primal.is_finite() {
            let gap = best_dual - best_primal;
            let scale = 1.0 + best_dual.abs().max(best_primal.abs());
            if gap / scale < accept_gap {
                converged = true;
                break;
            }
        }

        // Projected subgradient step on λ. Use the Polyak step
        // (dual − best primal) / ‖g‖², which adapts to the problem's scale;
        // fall back to a diminishing step when the gap estimate degenerates.
        let mut g_norm2 = 0.0;
        for c in 0..m {
            let (lo, hi) = (con_off[c] as usize, con_off[c + 1] as usize);
            let mut usage = 0.0;
            for &j in &con_idx[lo..hi] {
                usage += x[j as usize];
            }
            let gc = usage - caps[c] as f64;
            g[c] = gc;
            g_norm2 += gc * gc;
        }
        if g_norm2 > 0.0 {
            let polyak = (dual - best_primal).max(0.0) / g_norm2;
            let step = if polyak.is_finite() && polyak > 0.0 {
                polyak
            } else {
                options.initial_step / (k as f64).sqrt()
            };
            for c in 0..m {
                lambda[c] = (lambda[c] + step * g[c]).max(0.0);
            }
        }
    }

    RelaxedSolution {
        x: best_x,
        primal_value: best_primal,
        dual_bound: best_dual,
        iterations,
        lambda,
        converged,
    }
}

/// Projects a (possibly infeasible) point onto the feasible region by
/// shrinking each variable's excess over the lower bound 1.
///
/// For each constraint `c`, the usage above the all-ones baseline is
/// `u_c = Σ_{j∈c} (x_j − 1)` and the available slack is
/// `s_c = cap_c − |members_c|`. Scaling every member's excess by
/// `θ_c = min(1, s_c/u_c)` — and taking the smallest θ over a variable's
/// constraints — yields a feasible point:
/// `Σ (1 + (x_j−1)·θ_j) ≤ |members| + θ_c·u_c ≤ cap_c`.
pub fn repair_feasibility(instance: &AllocationInstance, x: &[f64]) -> Vec<f64> {
    let mut theta_c = vec![1.0f64; instance.num_constraints()];
    let mut out = vec![0.0f64; instance.num_vars()];
    repair_into(instance, x, &mut theta_c, &mut out);
    out
}

/// [`repair_feasibility`] into caller-provided buffers (the dual loop
/// repairs two candidates per iteration and must not allocate).
fn repair_into(instance: &AllocationInstance, x: &[f64], theta_c: &mut [f64], out: &mut [f64]) {
    let m = instance.num_constraints();
    let con_off = &instance.con_off;
    let con_idx = &instance.con_idx;
    for c in 0..m {
        let (lo, hi) = (con_off[c] as usize, con_off[c + 1] as usize);
        let mut excess = 0.0;
        for &j in &con_idx[lo..hi] {
            excess += (x[j as usize] - 1.0).max(0.0);
        }
        let slack = instance.caps[c] as f64 - (hi - lo) as f64;
        theta_c[c] = if excess > slack {
            if excess > 0.0 {
                (slack / excess).max(0.0)
            } else {
                1.0
            }
        } else {
            1.0
        };
    }
    let mem_off = &instance.mem_off;
    let mem_idx = &instance.mem_idx;
    for (j, o) in out.iter_mut().enumerate() {
        let (lo, hi) = (mem_off[j] as usize, mem_off[j + 1] as usize);
        let mut theta = 1.0f64;
        for &c in &mem_idx[lo..hi] {
            theta = theta.min(theta_c[c as usize]);
        }
        *o = 1.0 + (x[j] - 1.0).max(0.0) * theta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{PackingConstraint, Variable};

    fn inst(ps: &[f64], cons: &[(u32, &[usize])], v: f64, price: f64) -> AllocationInstance {
        AllocationInstance::new(
            ps.iter().map(|&p| Variable::new(p)).collect(),
            cons.iter()
                .map(|&(cap, mem)| PackingConstraint::new(cap, mem.to_vec()))
                .collect(),
            v,
            price,
        )
        .unwrap()
    }

    #[test]
    fn empty_instance() {
        let i = inst(&[], &[], 1.0, 0.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        assert!(s.x.is_empty());
        assert_eq!(s.primal_value, 0.0);
        assert!(s.converged);
    }

    #[test]
    fn unconstrained_matches_closed_form() {
        // One variable, no constraints: solution is the scalar argmax.
        let i = inst(&[0.55], &[], 2500.0, 25.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        let expected =
            crate::scalar::argmax_edge_utility(0.55, 2500.0, 25.0, 1.0, (1 << 20) as f64);
        assert!((s.x[0] - expected).abs() < 1e-6, "{} vs {expected}", s.x[0]);
    }

    #[test]
    fn respects_binding_capacity() {
        // Two identical variables share capacity 4 with zero price: each
        // should get ~2 (symmetric optimum uses all capacity).
        let i = inst(&[0.55, 0.55], &[(4, &[0, 1])], 2500.0, 1.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        assert!(i.is_feasible_real(&s.x, 1e-6));
        let total: f64 = s.x.iter().sum();
        assert!(total <= 4.0 + 1e-6);
        assert!(total > 3.8, "should nearly exhaust capacity, got {total}");
        assert!((s.x[0] - s.x[1]).abs() < 0.05, "symmetric: {:?}", s.x);
    }

    #[test]
    fn duality_gap_small_on_random_instances() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for trial in 0..20 {
            let nv = rng.random_range(2..6usize);
            let ps: Vec<f64> = (0..nv).map(|_| rng.random_range(0.2..0.9)).collect();
            let mut cons: Vec<(u32, Vec<usize>)> = Vec::new();
            // A few random constraints covering random subsets.
            for _ in 0..rng.random_range(1..4usize) {
                let mut members: Vec<usize> = (0..nv).filter(|_| rng.random_bool(0.6)).collect();
                if members.is_empty() {
                    members.push(0);
                }
                let cap = rng.random_range(members.len() as u32..=members.len() as u32 + 8);
                cons.push((cap, members));
            }
            let v = rng.random_range(10.0..3000.0);
            let price = rng.random_range(0.0..50.0);
            let i = AllocationInstance::new(
                ps.iter().map(|&p| Variable::new(p)).collect(),
                cons.iter()
                    .map(|(cap, mem)| PackingConstraint::new(*cap, mem.clone()))
                    .collect(),
                v,
                price,
            )
            .unwrap();
            let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
            assert!(i.is_feasible_real(&s.x, 1e-6), "trial {trial}");
            let scale = 1.0 + s.dual_bound.abs().max(s.primal_value.abs());
            assert!(
                s.gap() / scale < 0.02,
                "trial {trial}: relative gap too large ({} / {})",
                s.gap(),
                scale
            );
        }
    }

    #[test]
    fn beats_fine_grid_on_two_var_instance() {
        // Exhaustive 2-D grid comparison on a tight instance.
        let i = inst(&[0.4, 0.7], &[(5, &[0, 1]), (3, &[0])], 800.0, 10.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        let mut grid_best = f64::NEG_INFINITY;
        let steps = 400;
        for a in 0..=steps {
            let xa = 1.0 + (3.0 - 1.0) * a as f64 / steps as f64;
            for b in 0..=steps {
                let xb = 1.0 + (4.0 - 1.0) * b as f64 / steps as f64;
                if xa + xb <= 5.0 {
                    grid_best = grid_best.max(i.objective(&[xa, xb]));
                }
            }
        }
        assert!(
            s.primal_value >= grid_best - 0.05 * (1.0 + grid_best.abs()),
            "solver {} vs grid {grid_best}",
            s.primal_value
        );
    }

    #[test]
    fn repair_produces_feasible_points() {
        let i = inst(&[0.5, 0.5, 0.5], &[(4, &[0, 1, 2])], 100.0, 0.0);
        let wild = vec![10.0, 10.0, 10.0];
        let repaired = repair_feasibility(&i, &wild);
        assert!(i.is_feasible_real(&repaired, 1e-9), "{repaired:?}");
        for &v in &repaired {
            assert!(v >= 1.0);
        }
    }

    #[test]
    fn repair_keeps_feasible_points_unchanged() {
        let i = inst(&[0.5, 0.5], &[(6, &[0, 1])], 100.0, 0.0);
        let ok = vec![2.0, 3.0];
        let repaired = repair_feasibility(&i, &ok);
        assert!((repaired[0] - 2.0).abs() < 1e-12);
        assert!((repaired[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn high_price_drives_to_lower_bound() {
        let i = inst(&[0.55, 0.55], &[(10, &[0, 1])], 1.0, 1e6);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-9);
        assert!((s.x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_warm_start_is_bitwise_cold() {
        let i = inst(&[0.4, 0.7], &[(5, &[0, 1]), (3, &[0])], 800.0, 10.0);
        let cold = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        let zeros = vec![0.0; i.num_constraints()];
        let warm = solve_relaxed_warm(&i, &RelaxedOptions::default(), Some(&zeros)).unwrap();
        assert_eq!(cold, warm);
    }

    #[test]
    fn warm_start_from_own_lambda_converges_fast_and_agrees() {
        let i = inst(
            &[0.4, 0.7, 0.55],
            &[(7, &[0, 1, 2]), (3, &[0]), (4, &[1, 2])],
            800.0,
            10.0,
        );
        let opts = RelaxedOptions::default();
        let cold = solve_relaxed(&i, &opts).unwrap();
        let warm = solve_relaxed_warm(&i, &opts, Some(&cold.lambda)).unwrap();
        assert!(i.is_feasible_real(&warm.x, 1e-6));
        assert!(warm.converged);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
        // Both primal values are within the duality gap of the common
        // optimum, so they agree within the larger gap (plus slack).
        let tol = cold.gap().abs().max(warm.gap().abs()) + 1e-9;
        assert!(
            (warm.primal_value - cold.primal_value).abs() <= tol,
            "warm {} vs cold {} (tol {tol})",
            warm.primal_value,
            cold.primal_value
        );
    }

    #[test]
    fn warm_start_reports_lambda_per_constraint() {
        let i = inst(&[0.5, 0.5], &[(3, &[0, 1]), (2, &[1])], 500.0, 1.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        assert_eq!(s.lambda.len(), i.num_constraints());
        assert!(s.lambda.iter().all(|&l| l >= 0.0));
    }
}
