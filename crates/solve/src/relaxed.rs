//! Lagrangian dual solvers for the continuous relaxation of P2.
//!
//! The relaxed problem (paper Algorithm 2, step 3) is separable concave
//! with linear packing constraints, so its Lagrangian dual decomposes into
//! per-variable closed-form maximizations ([`crate::scalar`]). Two dual
//! iterations are available, selected by [`RelaxedOptions::method`]:
//!
//! * [`DualMethod::Subgradient`] — projected subgradient with Polyak
//!   steps (the PR-2 solver). Robust, but its duality gap decays like
//!   `O(1/k)`, so the strict default `gap_tolerance = 1e-4` is
//!   unreachable at paper scale within realistic budgets — every cold
//!   solve exhausts `max_iterations` and reports `converged: false`.
//! * [`DualMethod::Accelerated`] (the default) — adaptively restarted
//!   FISTA on the dual, which is C¹ with Lipschitz gradient because the
//!   strictly concave log-success utility makes the per-variable argmax
//!   unique (see [`crate::accel`] for the math). The `O(1/k²)` rate —
//!   linear near the optimum with adaptive restarts — makes the strict
//!   tolerance actually certifiable, so cold solves stop early instead
//!   of burning the full budget.
//!
//! Either way the primal answer is recovered from the running-average /
//! current iterates with a feasibility repair that exactly preserves the
//! `x ≥ 1` lower bound (so the Eq. 8 rounding relation stays valid
//! downstream), and `converged` means the *certified* relative duality
//! gap fell below the acceptance threshold.
//!
//! # Inner-loop layout (PR 2)
//!
//! Both iterations run entirely over the instance's flat CSR incidence
//! arrays ([`AllocationInstance`] stores variable→constraint and
//! constraint→member membership as contiguous index+offset slices): one
//! branch-free gather pass computes every variable's price, a fused pass
//! updates `x` and accumulates the dual value from per-variable cached
//! transcendentals (`ln β`, `ln P(1)`, `ln P(ub)` are computed once per
//! solve, and the interior dual term falls out of the stationarity
//! condition as `−ln(1+ρ)` — no `exp`/`ln` pair per variable per
//! iteration), and the repair/objective passes reuse per-solve buffers.
//! A solve allocates a fixed number of vectors up front and nothing
//! inside the loop. The shared passes live here ([`VarCache`],
//! [`dual_value_at`], [`residual_pass`], [`consider_primal`]) and are
//! used by both method loops.
//!
//! # Warm starts
//!
//! [`solve_relaxed_warm`] seeds the dual iteration from a caller-provided
//! λ (typically the memoized prices of a *neighboring* route profile —
//! see `qdn-core::profile_eval`). A warm run is accepted once its
//! relative gap falls below the method's acceptance threshold — the
//! strict `gap_tolerance` for [`DualMethod::Accelerated`],
//! `max(gap_tolerance, warm_accept_gap)` for the subgradient method
//! (whose `O(1/k)` tail cannot reach the strict tolerance) — and is
//! capped at [`RelaxedOptions::warm_iteration_fraction`] of the budget: a
//! warm seed either pays off quickly or not at all, so burning the full
//! budget on a failing warm attempt (and then again on the cold fallback)
//! would pay twice for one solve. When the capped warm attempt does not
//! converge, the solve re-runs cold from λ = 0 **carrying the warm
//! attempt's incumbents** (best primal point, best dual bound), so the
//! fallback's answer is never worse than what the warm attempt already
//! had — a bad warm start can cost time, never quality. Every returned
//! solution is feasible with a duality gap no worse than the acceptance
//! threshold it converged under, and [`RelaxedSolution::converged`]
//! reports whether it did. The final prices come back in
//! [`RelaxedSolution::lambda`] for the caller to store.

use serde::{Deserialize, Serialize};
use wide::f64x4;

use crate::instance::{ln_success, AllocationInstance};
use crate::SolveError;

/// `Σ x[idx]` over one CSR row, 4-wide chunked: a vector accumulator
/// over the 4-aligned prefix (lanes combined in the fixed
/// [`f64x4::reduce_add`] order), then the ≤3 tail entries left to right.
/// Deterministic for a given row; every caller of the shared passes sees
/// the same association, so cross-path bit-identity is preserved.
#[inline]
pub(crate) fn gather_sum(idx: &[u32], x: &[f64]) -> f64 {
    let chunks = idx.chunks_exact(4);
    let tail = chunks.remainder();
    let mut acc = f64x4::ZERO;
    for ch in chunks {
        acc = acc
            + f64x4([
                x[ch[0] as usize],
                x[ch[1] as usize],
                x[ch[2] as usize],
                x[ch[3] as usize],
            ]);
    }
    let mut sum = acc.reduce_add();
    for &j in tail {
        sum += x[j as usize];
    }
    sum
}

/// Which dual iteration solves the relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DualMethod {
    /// Projected subgradient with Polyak steps. `O(1/k)` gap tail: keeps
    /// the historical PR-2 *cold-solve* trajectory bit-for-bit (warm
    /// starts now cap the warm budget and carry incumbents into the
    /// fallback, so failed-warm trajectories improve on PR-2 rather
    /// than reproduce it), but cannot certify
    /// tight tolerances at paper scale — cold solves typically exhaust
    /// the budget with `converged: false`.
    Subgradient,
    /// Adaptively restarted FISTA on the smooth dual ([`crate::accel`]).
    /// `O(1/k²)` worst case, linear near the optimum in practice; the
    /// default, because it makes the strict `gap_tolerance` reachable
    /// and lets cold solves stop early on a certified gap.
    Accelerated,
}

/// Options for [`solve_relaxed`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelaxedOptions {
    /// Maximum dual iterations (per attempt; a failed warm attempt plus
    /// its cold fallback together spend at most
    /// `(1 + warm_iteration_fraction) × max_iterations`).
    pub max_iterations: usize,
    /// Initial subgradient step size (the [`DualMethod::Subgradient`]
    /// fallback step when the Polyak estimate degenerates; unused by
    /// [`DualMethod::Accelerated`], which adapts its step by
    /// backtracking).
    pub initial_step: f64,
    /// Stop early when the relative duality gap falls below this value.
    pub gap_tolerance: f64,
    /// The dual iteration to run. **Loud compat break (PR 3):** this
    /// field is required in JSON configs — see MIGRATION.md for the
    /// one-line edit (`"method": "Accelerated"` restores the default;
    /// `"Subgradient"` restores the PR-2 cold iteration bit-for-bit).
    pub method: DualMethod,
    /// Let callers that cache dual prices (the profile evaluator's
    /// per-component λ store) seed repeat solves via
    /// [`solve_relaxed_warm`]. The solver itself ignores this flag — it
    /// is configuration surface for the evaluation layer. **Off by
    /// default**: warm-started solves are equal only up to the duality
    /// gap, so paths that must stay bit-identical to the full-rebuild
    /// reference keep it disabled.
    pub warm_start: bool,
    /// Secondary acceptance gap for *warm-started*
    /// [`DualMethod::Subgradient`] runs only. Subgradient iterations
    /// shed the duality gap like `O(1/k)`, so on coupled instances the
    /// strict `gap_tolerance` is often unreachable within the budget
    /// and a cold run simply spends all its iterations grinding the
    /// tail (e.g. ~0.9% relative gap after 600 iterations at paper
    /// scale). A good warm seed lands at that same quality in a handful
    /// of iterations; requiring it to then reach the unreachable strict
    /// tolerance would waste the entire budget *and* trigger the cold
    /// fallback. A warm subgradient run is therefore accepted once its
    /// relative gap falls below `max(gap_tolerance, warm_accept_gap)`.
    /// Cold runs — and [`DualMethod::Accelerated`] runs, warm or cold,
    /// which certify the strict tolerance cheaply — ignore this field
    /// entirely, so the accelerated path's certificate is never
    /// weakened by a warm seed. The default 1e-2 matches the gap a full
    /// cold subgradient budget actually achieves on paper-scale
    /// components.
    pub warm_accept_gap: f64,
    /// Fraction of `max_iterations` a warm attempt may spend before the
    /// cold fallback takes over (clamped to `[0, 1]`; at least one warm
    /// iteration runs whenever a warm seed is given). Capping the warm
    /// attempt fixes the historical double-pay: a failing warm run used
    /// to burn the *full* budget and then discard its incumbents before
    /// re-running cold for another full budget. **Loud compat break
    /// (PR 3):** required in JSON configs; `0.25` is the default, `1.0`
    /// restores the old warm budget (the incumbent carry-over stays).
    pub warm_iteration_fraction: f64,
}

impl RelaxedOptions {
    /// The certified configuration: accelerated dual iteration, strict
    /// `1e-4` gap tolerance, **no** warm starts — every solve certifies
    /// its own duality gap from a cold start, so results are
    /// bit-identical to the full-rebuild reference. This is exactly
    /// [`RelaxedOptions::default`] under an honest name; use it when
    /// the choice is deliberate rather than incidental.
    pub fn certified() -> Self {
        Self::default()
    }
}

impl Default for RelaxedOptions {
    fn default() -> Self {
        RelaxedOptions {
            max_iterations: 600,
            initial_step: 1.0,
            gap_tolerance: 1e-4,
            method: DualMethod::Accelerated,
            warm_start: false,
            warm_accept_gap: 1e-2,
            warm_iteration_fraction: 0.25,
        }
    }
}

/// Result of the relaxed solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelaxedSolution {
    /// A feasible primal point (`x_j ≥ 1`, all constraints satisfied).
    pub x: Vec<f64>,
    /// Objective value at `x` (lower bound on the relaxed optimum).
    pub primal_value: f64,
    /// Best dual value observed (upper bound on the relaxed optimum).
    pub dual_bound: f64,
    /// Iterations performed (a failed warm attempt's iterations count
    /// toward the total its cold fallback reports).
    pub iterations: usize,
    /// Final dual prices, one per constraint (warm-start seed for
    /// neighboring instances).
    pub lambda: Vec<f64>,
    /// Whether the relative duality gap fell below the acceptance
    /// threshold within the iteration budget.
    pub converged: bool,
}

impl RelaxedSolution {
    /// Absolute duality gap `dual_bound − primal_value` (≥ 0 up to
    /// numerical error); small means near-optimal.
    pub fn gap(&self) -> f64 {
        self.dual_bound - self.primal_value
    }

    /// The relative gap the convergence check certifies:
    /// `gap / (1 + max(|dual|, |primal|))`.
    pub fn relative_gap(&self) -> f64 {
        let scale = 1.0 + self.dual_bound.abs().max(self.primal_value.abs());
        self.gap() / scale
    }
}

/// Solves the continuous relaxation `max Σ V·ln P_j(x_j) − κ·x_j` s.t.
/// packing constraints and `x ≥ 1`, starting cold from `λ = 0`.
///
/// # Errors
///
/// Returns [`SolveError::InfeasibleAtLowerBound`] only if the instance
/// was constructed without validation (cannot happen through
/// [`AllocationInstance::new`]); otherwise always produces a feasible
/// solution.
///
/// # Example
///
/// ```
/// use qdn_solve::{AllocationInstance, PackingConstraint, Variable};
/// use qdn_solve::relaxed::{solve_relaxed, RelaxedOptions};
///
/// let inst = AllocationInstance::new(
///     vec![Variable::new(0.55); 2],
///     vec![PackingConstraint::new(6, vec![0, 1])],
///     1000.0,
///     5.0,
/// ).unwrap();
/// let sol = solve_relaxed(&inst, &RelaxedOptions::default()).unwrap();
/// assert!(inst.is_feasible_real(&sol.x, 1e-6));
/// assert!(sol.gap() < 1.0);
/// ```
pub fn solve_relaxed(
    instance: &AllocationInstance,
    options: &RelaxedOptions,
) -> Result<RelaxedSolution, SolveError> {
    solve_relaxed_warm(instance, options, None)
}

/// [`solve_relaxed`] with an optional warm-start λ (one entry per
/// constraint; negative entries are clamped to 0).
///
/// With `warm = None` (or an all-zero warm vector) this is exactly the
/// cold solve. Otherwise the dual iteration starts from the given
/// prices; if it does not reach the acceptance gap within its (capped)
/// budget, the solve re-runs cold carrying the warm attempt's incumbent
/// primal/dual bounds, so the result is never worse than either the
/// plain cold solve's guarantees or the warm attempt's achieved value
/// (see the module docs).
///
/// # Errors
///
/// As [`solve_relaxed`].
///
/// # Panics
///
/// Debug-asserts `warm.len() == instance.num_constraints()`.
pub fn solve_relaxed_warm(
    instance: &AllocationInstance,
    options: &RelaxedOptions,
    warm: Option<&[f64]>,
) -> Result<RelaxedSolution, SolveError> {
    let n = instance.num_vars();
    let m = instance.num_constraints();
    if let Some(w) = warm {
        debug_assert_eq!(w.len(), m, "warm-start λ arity mismatch");
    }
    if n == 0 {
        return Ok(RelaxedSolution {
            x: Vec::new(),
            primal_value: 0.0,
            dual_bound: 0.0,
            iterations: 0,
            lambda: vec![0.0; m],
            converged: true,
        });
    }

    // Decompose by constraint coupling: the dual iterations below use
    // *global* convergence checks and global step adaptation, so solving
    // independent components jointly both converges slower and produces
    // different floating-point trajectories than solving them alone.
    // Working component-wise makes the result identical whether a
    // component is solved inside a joint instance or as a stand-alone
    // sub-instance — the invariant the incremental profile evaluator in
    // `qdn-core` relies on.
    let partition = instance.components();
    if partition.len() > 1 {
        let mut x = vec![0.0f64; n];
        let mut lambda = vec![0.0f64; m];
        let mut primal_value = 0.0;
        let mut dual_bound = 0.0;
        let mut iterations = 0;
        let mut converged = true;
        let mut warm_buf: Vec<f64> = Vec::new();
        // Sub-instances cycle through one recycled husk + index scratch
        // (ROADMAP item i): the per-component build reuses the previous
        // component's storage instead of the generic allocating
        // constructor, so the recursion allocates once, not per
        // component.
        let mut husk: Option<AllocationInstance> = None;
        let mut local_index: Vec<usize> = Vec::new();
        for (comp_vars, comp_cons) in partition.vars.iter().zip(&partition.constraints) {
            let sub = instance.sub_instance_into(
                comp_vars,
                comp_cons,
                &mut local_index,
                husk.take().unwrap_or_else(AllocationInstance::husk),
            )?;
            let sub_warm = warm.map(|w| {
                warm_buf.clear();
                warm_buf.extend(comp_cons.iter().map(|&ci| w[ci]));
                &warm_buf[..]
            });
            let sol = solve_single(&sub, options, sub_warm);
            for (local, &j) in comp_vars.iter().enumerate() {
                x[j] = sol.x[local];
            }
            for (local, &ci) in comp_cons.iter().enumerate() {
                lambda[ci] = sol.lambda[local];
            }
            primal_value += sol.primal_value;
            dual_bound += sol.dual_bound;
            iterations = iterations.max(sol.iterations);
            converged &= sol.converged;
            husk = Some(sub.into_husk());
        }
        return Ok(RelaxedSolution {
            x,
            primal_value,
            dual_bound,
            iterations,
            lambda,
            converged,
        });
    }

    Ok(solve_single(instance, options, warm))
}

/// Iterations a warm attempt may spend before falling back cold.
fn warm_iteration_budget(options: &RelaxedOptions) -> usize {
    let frac = options.warm_iteration_fraction.clamp(0.0, 1.0);
    let budget = (options.max_iterations as f64 * frac).ceil() as usize;
    budget.clamp(1, options.max_iterations.max(1))
}

/// Solves one coupling component, trying the warm start first (when
/// given and non-trivial) under a capped iteration budget, and falling
/// back to the cold λ = 0 iteration — seeded with the warm attempt's
/// incumbents — when the warm run does not converge.
///
/// The relaxed `warm_accept_gap` applies to [`DualMethod::Subgradient`]
/// only: it exists because the subgradient tail makes the strict
/// tolerance unreachable, a limitation the accelerated method does not
/// have — warm accelerated runs certify the same `gap_tolerance` as
/// cold ones (a warm seed changes where the iteration *starts*, never
/// what it certifies).
fn solve_single(
    instance: &AllocationInstance,
    options: &RelaxedOptions,
    warm: Option<&[f64]>,
) -> RelaxedSolution {
    let warm_attempt = match warm {
        Some(w) if w.iter().any(|&l| l > 0.0) => {
            let accept = match options.method {
                DualMethod::Subgradient => options.gap_tolerance.max(options.warm_accept_gap),
                DualMethod::Accelerated => options.gap_tolerance,
            };
            let budget = warm_iteration_budget(options);
            let sol = iterate(instance, options, Some(w), accept, budget, None);
            if sol.converged {
                return sol;
            }
            Some(sol)
        }
        _ => None,
    };
    let mut cold = iterate(
        instance,
        options,
        None,
        options.gap_tolerance,
        options.max_iterations,
        warm_attempt.as_ref(),
    );
    if let Some(warm_sol) = warm_attempt {
        cold.iterations += warm_sol.iterations;
    }
    cold
}

/// Dispatches one dual iteration run to the configured method, from a
/// given starting λ (`None` = all zeros), stopping once the relative gap
/// falls below `accept_gap` or `max_iters` is exhausted. `incumbent`
/// seeds the best-primal/best-dual trackers (the warm-fallback
/// carry-over); its bounds are valid for the same instance by
/// construction.
fn iterate(
    instance: &AllocationInstance,
    options: &RelaxedOptions,
    lambda0: Option<&[f64]>,
    accept_gap: f64,
    max_iters: usize,
    incumbent: Option<&RelaxedSolution>,
) -> RelaxedSolution {
    match options.method {
        DualMethod::Subgradient => {
            subgradient_iterate(instance, options, lambda0, accept_gap, max_iters, incumbent)
        }
        DualMethod::Accelerated => {
            crate::accel::accelerated_iterate(instance, lambda0, accept_gap, max_iters, incumbent)
        }
    }
}

/// Per-variable constants cached once per solve. `ln_p1`/`ln_p_ub` use
/// the canonical [`ln_success`] formula so boundary iterates carry
/// bit-identical objective terms to the unfused reference.
pub(crate) struct VarCache {
    pub ln_beta: Vec<f64>,
    pub ub_f: Vec<f64>,
    pub ln_p1: Vec<f64>,
    pub ln_p_ub: Vec<f64>,
}

impl VarCache {
    pub(crate) fn new(instance: &AllocationInstance) -> Self {
        // One flat stride-1 fill per output array (not one
        // row-of-structs loop writing four arrays at once): each loop
        // reads/writes contiguous memory, which is the shape the
        // vectorizer and the prefetcher both want. Element values are
        // bit-identical to the fused loop — only the traversal changed.
        let n = instance.num_vars();
        let ln_beta: Vec<f64> = instance.vars.iter().map(|v| f64::ln_1p(-v.p)).collect();
        let ub_f: Vec<f64> = instance.ub.iter().map(|&u| u as f64).collect();
        let ln_p1: Vec<f64> = instance.vars.iter().map(|v| ln_success(v.p, 1.0)).collect();
        let ln_p_ub: Vec<f64> = (0..n)
            .map(|j| ln_success(instance.vars[j].p, ub_f[j]))
            .collect();
        VarCache {
            ln_beta,
            ub_f,
            ln_p1,
            ln_p_ub,
        }
    }
}

/// The fused dual evaluation shared by both method loops: fills `price`
/// (pass 1, a flat gather over the variable→constraint CSR slice) and
/// the per-variable argmax `x` (pass 2, closed form via
/// [`crate::scalar::stationary_point`]), returning the dual value
/// `D(λ) = Σ_j [V ln P_j(x_j) − price_j x_j] + Σ_c λ_c cap_c`. At the
/// interior stationary point `t* = ρ/(1+ρ)` the log term is
/// `−ln(1+ρ)` ([`crate::scalar::interior_log_term`]) — no extra
/// transcendental.
pub(crate) fn dual_value_at(
    instance: &AllocationInstance,
    cache: &VarCache,
    lambda: &[f64],
    price: &mut [f64],
    x: &mut [f64],
) -> f64 {
    let n = instance.num_vars();
    let v = instance.v_weight();
    let kappa = instance.unit_price();
    let mem_off = &instance.mem_off;
    let mem_idx = &instance.mem_idx;
    for j in 0..n {
        let (lo, hi) = (mem_off[j] as usize, mem_off[j + 1] as usize);
        price[j] = kappa + gather_sum(&mem_idx[lo..hi], lambda);
    }
    let mut dual = 0.0;
    for j in 0..n {
        let pr = price[j];
        if pr <= 0.0 {
            // Increasing utility: take everything available.
            x[j] = cache.ub_f[j];
            dual += v * cache.ln_p_ub[j] - pr * cache.ub_f[j];
            continue;
        }
        let rho = pr / (-v * cache.ln_beta[j]);
        let x_star = crate::scalar::stationary_point(rho, cache.ln_beta[j]);
        if x_star <= 1.0 {
            x[j] = 1.0;
            dual += v * cache.ln_p1[j] - pr;
        } else if x_star >= cache.ub_f[j] {
            x[j] = cache.ub_f[j];
            dual += v * cache.ln_p_ub[j] - pr * cache.ub_f[j];
        } else {
            x[j] = x_star;
            dual += v * crate::scalar::interior_log_term(rho) - pr * x_star;
        }
    }
    // Caps term `Σ_c λ_c cap_c`: 4-wide chunked dot with the same fixed
    // lane-reduction order as the gather pass, tail left to right.
    let caps = &instance.caps;
    let chunks = lambda.chunks_exact(4);
    let tail_start = lambda.len() & !3;
    let mut acc = f64x4::ZERO;
    for (k, lam) in chunks.enumerate() {
        let base = k * 4;
        acc = acc.mul_add_lanes(
            f64x4::from_slice(lam),
            f64x4([
                caps[base] as f64,
                caps[base + 1] as f64,
                caps[base + 2] as f64,
                caps[base + 3] as f64,
            ]),
        );
    }
    let mut caps_term = acc.reduce_add();
    for c in tail_start..lambda.len() {
        caps_term += lambda[c] * caps[c] as f64;
    }
    dual + caps_term
}

/// Constraint residual pass shared by both method loops:
/// `g_c = Σ_{j∈c} x_j − cap_c` (the dual's negated gradient /
/// subgradient direction); returns `‖g‖²`.
pub(crate) fn residual_pass(instance: &AllocationInstance, x: &[f64], g: &mut [f64]) -> f64 {
    let con_off = &instance.con_off;
    let con_idx = &instance.con_idx;
    for c in 0..instance.caps.len() {
        let (lo, hi) = (con_off[c] as usize, con_off[c + 1] as usize);
        g[c] = gather_sum(&con_idx[lo..hi], x) - instance.caps[c] as f64;
    }
    // ‖g‖² as a second flat stride-1 pass over the filled residuals —
    // chunked self-dot in the fixed `wide` order instead of a scalar
    // accumulator riding the gather loop.
    wide::dot_chunked(g, g)
}

/// Repairs `candidate` into the feasible region ([`repair_into`]) and
/// promotes it to the incumbent primal if it improves on `best_primal`.
pub(crate) fn consider_primal(
    instance: &AllocationInstance,
    cache: &VarCache,
    candidate: &[f64],
    theta_c: &mut [f64],
    repaired: &mut [f64],
    best_primal: &mut f64,
    best_x: &mut [f64],
) {
    repair_into(instance, candidate, theta_c, repaired);
    let v = instance.v_weight();
    let kappa = instance.unit_price();
    let mut value = 0.0;
    for (j, &xj) in repaired.iter().enumerate() {
        // qdn-lint: allow(float-eq, reason="exact sentinel: repair_into clamps to exactly 1.0, where the cached ln(1-beta) value replaces an exp_m1 evaluation at the removable singularity")
        let ls = if xj == 1.0 {
            cache.ln_p1[j]
        } else {
            (-f64::exp_m1(xj * cache.ln_beta[j])).ln()
        };
        value += v * ls - kappa * xj;
    }
    if value > *best_primal {
        *best_primal = value;
        best_x.copy_from_slice(repaired);
    }
}

/// Initial incumbent trackers: the warm attempt's, or pristine.
pub(crate) fn seeded_incumbent(
    incumbent: Option<&RelaxedSolution>,
    n: usize,
) -> (f64, f64, Vec<f64>) {
    match incumbent {
        Some(inc) => {
            debug_assert_eq!(inc.x.len(), n, "incumbent arity mismatch");
            (inc.dual_bound, inc.primal_value, inc.x.clone())
        }
        None => (f64::INFINITY, f64::NEG_INFINITY, vec![1.0f64; n]),
    }
}

/// The projected-subgradient iteration ([`DualMethod::Subgradient`]).
/// See the module docs for the loop layout.
fn subgradient_iterate(
    instance: &AllocationInstance,
    options: &RelaxedOptions,
    lambda0: Option<&[f64]>,
    accept_gap: f64,
    max_iters: usize,
    incumbent: Option<&RelaxedSolution>,
) -> RelaxedSolution {
    let n = instance.num_vars();
    let m = instance.num_constraints();
    let cache = VarCache::new(instance);

    let mut lambda = match lambda0 {
        Some(w) => w.iter().map(|&l| l.max(0.0)).collect::<Vec<_>>(),
        None => vec![0.0f64; m],
    };
    let mut price = vec![0.0f64; n];
    let mut x = vec![1.0f64; n];
    let mut x_avg = vec![0.0f64; n];
    let mut repaired = vec![0.0f64; n];
    let mut theta_c = vec![1.0f64; m];
    let mut g = vec![0.0f64; m];
    let (mut best_dual, mut best_primal, mut best_x) = seeded_incumbent(incumbent, n);
    let mut iterations = 0;
    let mut converged = false;

    for k in 1..=max_iters {
        iterations = k;

        // Fused price gather + closed-form x update + dual accumulation.
        let dual = dual_value_at(instance, &cache, &lambda, &mut price, &mut x);
        best_dual = best_dual.min(dual);

        // Ergodic average for primal recovery.
        let w = 1.0 / k as f64;
        for j in 0..n {
            x_avg[j] += (x[j] - x_avg[j]) * w;
        }

        // Candidate primal points: repaired current iterate and repaired
        // running average, evaluated in place.
        for candidate in [&x, &x_avg] {
            consider_primal(
                instance,
                &cache,
                candidate,
                &mut theta_c,
                &mut repaired,
                &mut best_primal,
                &mut best_x,
            );
        }

        // Convergence check.
        if best_dual.is_finite() && best_primal.is_finite() {
            let gap = best_dual - best_primal;
            let scale = 1.0 + best_dual.abs().max(best_primal.abs());
            if gap / scale < accept_gap {
                converged = true;
                break;
            }
        }

        // Projected subgradient step on λ. Use the Polyak step
        // (dual − best primal) / ‖g‖², which adapts to the problem's scale;
        // fall back to a diminishing step when the gap estimate degenerates.
        let g_norm2 = residual_pass(instance, &x, &mut g);
        if g_norm2 > 0.0 {
            let polyak = (dual - best_primal).max(0.0) / g_norm2;
            let step = if polyak.is_finite() && polyak > 0.0 {
                polyak
            } else {
                options.initial_step / (k as f64).sqrt()
            };
            for c in 0..m {
                lambda[c] = (lambda[c] + step * g[c]).max(0.0);
            }
        }
    }

    RelaxedSolution {
        x: best_x,
        primal_value: best_primal,
        dual_bound: best_dual,
        iterations,
        lambda,
        converged,
    }
}

/// Projects a (possibly infeasible) point onto the feasible region by
/// shrinking each variable's excess over the lower bound 1.
///
/// For each constraint `c`, the usage above the all-ones baseline is
/// `u_c = Σ_{j∈c} (x_j − 1)` and the available slack is
/// `s_c = cap_c − |members_c|`. Scaling every member's excess by
/// `θ_c = min(1, s_c/u_c)` — and taking the smallest θ over a variable's
/// constraints — yields a feasible point:
/// `Σ (1 + (x_j−1)·θ_j) ≤ |members| + θ_c·u_c ≤ cap_c`.
pub fn repair_feasibility(instance: &AllocationInstance, x: &[f64]) -> Vec<f64> {
    let mut theta_c = vec![1.0f64; instance.num_constraints()];
    let mut out = vec![0.0f64; instance.num_vars()];
    repair_into(instance, x, &mut theta_c, &mut out);
    out
}

/// [`repair_feasibility`] into caller-provided buffers (the dual loops
/// repair two candidates per iteration and must not allocate).
pub(crate) fn repair_into(
    instance: &AllocationInstance,
    x: &[f64],
    theta_c: &mut [f64],
    out: &mut [f64],
) {
    let m = instance.num_constraints();
    let con_off = &instance.con_off;
    let con_idx = &instance.con_idx;
    for c in 0..m {
        let (lo, hi) = (con_off[c] as usize, con_off[c + 1] as usize);
        let mut excess = 0.0;
        for &j in &con_idx[lo..hi] {
            excess += (x[j as usize] - 1.0).max(0.0);
        }
        let slack = instance.caps[c] as f64 - (hi - lo) as f64;
        theta_c[c] = if excess > slack {
            if excess > 0.0 {
                (slack / excess).max(0.0)
            } else {
                1.0
            }
        } else {
            1.0
        };
    }
    let mem_off = &instance.mem_off;
    let mem_idx = &instance.mem_idx;
    for (j, o) in out.iter_mut().enumerate() {
        let (lo, hi) = (mem_off[j] as usize, mem_off[j + 1] as usize);
        let mut theta = 1.0f64;
        for &c in &mem_idx[lo..hi] {
            theta = theta.min(theta_c[c as usize]);
        }
        *o = 1.0 + (x[j] - 1.0).max(0.0) * theta;
    }
}

/// Microbenchmark entry points for the `csr_pass_ns_per_row` rows in
/// `qdn_bench`. Not public API — the pass functions stay `pub(crate)`;
/// this shim only exists so the bench crate can time them in isolation.
#[doc(hidden)]
pub mod bench_hooks {
    use super::{AllocationInstance, VarCache};

    /// Opaque per-solve constant cache (wraps the crate-private
    /// [`VarCache`]).
    pub struct Cache(VarCache);

    pub fn cache(instance: &AllocationInstance) -> Cache {
        Cache(VarCache::new(instance))
    }

    pub fn dual_value_at(
        instance: &AllocationInstance,
        cache: &Cache,
        lambda: &[f64],
        price: &mut [f64],
        x: &mut [f64],
    ) -> f64 {
        super::dual_value_at(instance, &cache.0, lambda, price, x)
    }

    pub fn residual_pass(instance: &AllocationInstance, x: &[f64], g: &mut [f64]) -> f64 {
        super::residual_pass(instance, x, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{PackingConstraint, Variable};

    fn inst(ps: &[f64], cons: &[(u32, &[usize])], v: f64, price: f64) -> AllocationInstance {
        AllocationInstance::new(
            ps.iter().map(|&p| Variable::new(p)).collect(),
            cons.iter()
                .map(|&(cap, mem)| PackingConstraint::new(cap, mem.to_vec()))
                .collect(),
            v,
            price,
        )
        .unwrap()
    }

    fn both_methods() -> [RelaxedOptions; 2] {
        [
            RelaxedOptions {
                method: DualMethod::Subgradient,
                ..RelaxedOptions::default()
            },
            RelaxedOptions {
                method: DualMethod::Accelerated,
                ..RelaxedOptions::default()
            },
        ]
    }

    #[test]
    fn empty_instance() {
        let i = inst(&[], &[], 1.0, 0.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        assert!(s.x.is_empty());
        assert_eq!(s.primal_value, 0.0);
        assert!(s.converged);
    }

    #[test]
    fn unconstrained_matches_closed_form() {
        // One variable, no constraints: solution is the scalar argmax.
        let i = inst(&[0.55], &[], 2500.0, 25.0);
        for opts in both_methods() {
            let s = solve_relaxed(&i, &opts).unwrap();
            let expected =
                crate::scalar::argmax_edge_utility(0.55, 2500.0, 25.0, 1.0, (1 << 20) as f64);
            assert!((s.x[0] - expected).abs() < 1e-6, "{} vs {expected}", s.x[0]);
        }
    }

    #[test]
    fn respects_binding_capacity() {
        // Two identical variables share capacity 4 with zero price: each
        // should get ~2 (symmetric optimum uses all capacity).
        for opts in both_methods() {
            let i = inst(&[0.55, 0.55], &[(4, &[0, 1])], 2500.0, 1.0);
            let s = solve_relaxed(&i, &opts).unwrap();
            assert!(i.is_feasible_real(&s.x, 1e-6));
            let total: f64 = s.x.iter().sum();
            assert!(total <= 4.0 + 1e-6);
            assert!(total > 3.8, "should nearly exhaust capacity, got {total}");
            assert!((s.x[0] - s.x[1]).abs() < 0.05, "symmetric: {:?}", s.x);
        }
    }

    #[test]
    fn duality_gap_small_on_random_instances() {
        use rand::{RngExt, SeedableRng};
        for opts in both_methods() {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            for trial in 0..20 {
                let nv = rng.random_range(2..6usize);
                let ps: Vec<f64> = (0..nv).map(|_| rng.random_range(0.2..0.9)).collect();
                let mut cons: Vec<(u32, Vec<usize>)> = Vec::new();
                // A few random constraints covering random subsets.
                for _ in 0..rng.random_range(1..4usize) {
                    let mut members: Vec<usize> =
                        (0..nv).filter(|_| rng.random_bool(0.6)).collect();
                    if members.is_empty() {
                        members.push(0);
                    }
                    let cap = rng.random_range(members.len() as u32..=members.len() as u32 + 8);
                    cons.push((cap, members));
                }
                let v = rng.random_range(10.0..3000.0);
                let price = rng.random_range(0.0..50.0);
                let i = AllocationInstance::new(
                    ps.iter().map(|&p| Variable::new(p)).collect(),
                    cons.iter()
                        .map(|(cap, mem)| PackingConstraint::new(*cap, mem.clone()))
                        .collect(),
                    v,
                    price,
                )
                .unwrap();
                let s = solve_relaxed(&i, &opts).unwrap();
                assert!(i.is_feasible_real(&s.x, 1e-6), "trial {trial}");
                let scale = 1.0 + s.dual_bound.abs().max(s.primal_value.abs());
                assert!(
                    s.gap() / scale < 0.02,
                    "trial {trial} ({:?}): relative gap too large ({} / {})",
                    opts.method,
                    s.gap(),
                    scale
                );
            }
        }
    }

    #[test]
    fn beats_fine_grid_on_two_var_instance() {
        // Exhaustive 2-D grid comparison on a tight instance.
        let i = inst(&[0.4, 0.7], &[(5, &[0, 1]), (3, &[0])], 800.0, 10.0);
        let mut grid_best = f64::NEG_INFINITY;
        let steps = 400;
        for a in 0..=steps {
            let xa = 1.0 + (3.0 - 1.0) * a as f64 / steps as f64;
            for b in 0..=steps {
                let xb = 1.0 + (4.0 - 1.0) * b as f64 / steps as f64;
                if xa + xb <= 5.0 {
                    grid_best = grid_best.max(i.objective(&[xa, xb]));
                }
            }
        }
        for opts in both_methods() {
            let s = solve_relaxed(&i, &opts).unwrap();
            assert!(
                s.primal_value >= grid_best - 0.05 * (1.0 + grid_best.abs()),
                "solver {} ({:?}) vs grid {grid_best}",
                s.primal_value,
                opts.method
            );
        }
    }

    #[test]
    fn repair_produces_feasible_points() {
        let i = inst(&[0.5, 0.5, 0.5], &[(4, &[0, 1, 2])], 100.0, 0.0);
        let wild = vec![10.0, 10.0, 10.0];
        let repaired = repair_feasibility(&i, &wild);
        assert!(i.is_feasible_real(&repaired, 1e-9), "{repaired:?}");
        for &v in &repaired {
            assert!(v >= 1.0);
        }
    }

    #[test]
    fn repair_keeps_feasible_points_unchanged() {
        let i = inst(&[0.5, 0.5], &[(6, &[0, 1])], 100.0, 0.0);
        let ok = vec![2.0, 3.0];
        let repaired = repair_feasibility(&i, &ok);
        assert!((repaired[0] - 2.0).abs() < 1e-12);
        assert!((repaired[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn high_price_drives_to_lower_bound() {
        for opts in both_methods() {
            let i = inst(&[0.55, 0.55], &[(10, &[0, 1])], 1.0, 1e6);
            let s = solve_relaxed(&i, &opts).unwrap();
            assert!((s.x[0] - 1.0).abs() < 1e-9);
            assert!((s.x[1] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_warm_start_is_bitwise_cold() {
        let i = inst(&[0.4, 0.7], &[(5, &[0, 1]), (3, &[0])], 800.0, 10.0);
        for opts in both_methods() {
            let cold = solve_relaxed(&i, &opts).unwrap();
            let zeros = vec![0.0; i.num_constraints()];
            let warm = solve_relaxed_warm(&i, &opts, Some(&zeros)).unwrap();
            assert_eq!(cold, warm);
        }
    }

    #[test]
    fn warm_start_from_own_lambda_converges_fast_and_agrees() {
        let i = inst(
            &[0.4, 0.7, 0.55],
            &[(7, &[0, 1, 2]), (3, &[0]), (4, &[1, 2])],
            800.0,
            10.0,
        );
        for opts in both_methods() {
            let cold = solve_relaxed(&i, &opts).unwrap();
            let warm = solve_relaxed_warm(&i, &opts, Some(&cold.lambda)).unwrap();
            assert!(i.is_feasible_real(&warm.x, 1e-6));
            assert!(warm.converged);
            assert!(
                warm.iterations <= cold.iterations,
                "warm {} vs cold {} iterations ({:?})",
                warm.iterations,
                cold.iterations,
                opts.method
            );
            // Both primal values are within the duality gap of the common
            // optimum, so they agree within the larger gap (plus slack).
            let tol = cold.gap().abs().max(warm.gap().abs()) + 1e-9;
            assert!(
                (warm.primal_value - cold.primal_value).abs() <= tol,
                "warm {} vs cold {} (tol {tol})",
                warm.primal_value,
                cold.primal_value
            );
        }
    }

    #[test]
    fn warm_start_reports_lambda_per_constraint() {
        let i = inst(&[0.5, 0.5], &[(3, &[0, 1]), (2, &[1])], 500.0, 1.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        assert_eq!(s.lambda.len(), i.num_constraints());
        assert!(s.lambda.iter().all(|&l| l >= 0.0));
    }

    #[test]
    fn warm_attempt_budget_is_capped() {
        let base = RelaxedOptions::default();
        assert_eq!(warm_iteration_budget(&base), 150); // 600 × 0.25
        let full = RelaxedOptions {
            warm_iteration_fraction: 1.0,
            ..base
        };
        assert_eq!(warm_iteration_budget(&full), 600);
        let clamped = RelaxedOptions {
            warm_iteration_fraction: 7.5,
            ..base
        };
        assert_eq!(warm_iteration_budget(&clamped), 600);
        let tiny = RelaxedOptions {
            warm_iteration_fraction: 0.0,
            ..base
        };
        assert_eq!(warm_iteration_budget(&tiny), 1);
    }

    /// The warm-start double-pay regression (PR-3 satellite): a warm
    /// attempt that fails to converge must (a) not burn the full budget
    /// before the cold fallback and (b) hand its incumbents over, so the
    /// returned objective is at least the warm attempt's.
    #[test]
    fn failed_warm_fallback_carries_incumbents_and_caps_budget() {
        let i = inst(
            &[0.3, 0.8, 0.5, 0.6],
            &[(6, &[0, 1, 2, 3]), (3, &[0, 1]), (4, &[2, 3])],
            2500.0,
            10.0,
        );
        for method in [DualMethod::Subgradient, DualMethod::Accelerated] {
            // An unreachable tolerance with a tiny budget guarantees the
            // warm attempt fails; an adversarial seed makes it start far
            // from the optimum.
            let opts = RelaxedOptions {
                max_iterations: 8,
                gap_tolerance: 0.0,
                warm_accept_gap: 0.0,
                method,
                warm_iteration_fraction: 0.25,
                ..RelaxedOptions::default()
            };
            let bad_seed = vec![1e3; i.num_constraints()];

            // The warm attempt alone, reproduced via the internal entry
            // point with the same capped budget `solve_single` uses.
            let budget = warm_iteration_budget(&opts);
            assert_eq!(budget, 2);
            let warm_attempt = iterate(&i, &opts, Some(&bad_seed), 0.0, budget, None);
            assert!(!warm_attempt.converged);

            let fallback = solve_relaxed_warm(&i, &opts, Some(&bad_seed)).unwrap();
            assert!(
                fallback.primal_value >= warm_attempt.primal_value,
                "{method:?}: fallback {} worse than warm attempt {}",
                fallback.primal_value,
                warm_attempt.primal_value
            );
            assert!(
                fallback.dual_bound <= warm_attempt.dual_bound,
                "{method:?}: fallback bound {} looser than warm attempt {}",
                fallback.dual_bound,
                warm_attempt.dual_bound
            );
            // Total budget: capped warm attempt + full cold run, not 2×.
            assert_eq!(fallback.iterations, budget + opts.max_iterations);
        }
    }

    #[test]
    fn accelerated_certifies_strict_gap_where_subgradient_cannot() {
        // A coupled instance where the subgradient tail stalls: the
        // accelerated method must certify the strict 1e-4 gap within the
        // budget.
        let i = inst(
            &[0.3, 0.8, 0.5, 0.6, 0.45],
            &[
                (9, &[0, 1, 2, 3, 4]),
                (4, &[0, 1]),
                (5, &[2, 3]),
                (6, &[1, 2, 4]),
            ],
            2500.0,
            10.0,
        );
        let accel = solve_relaxed(
            &i,
            &RelaxedOptions {
                method: DualMethod::Accelerated,
                ..RelaxedOptions::default()
            },
        )
        .unwrap();
        assert!(
            accel.converged,
            "gap {} after {}",
            accel.relative_gap(),
            accel.iterations
        );
        assert!(accel.iterations < 600, "took {}", accel.iterations);
        assert!(accel.relative_gap() <= 1e-4 + 1e-12);
    }

    #[test]
    fn options_serde_round_trip_and_loud_compat_break() {
        let opts = RelaxedOptions {
            method: DualMethod::Subgradient,
            warm_iteration_fraction: 0.5,
            ..RelaxedOptions::default()
        };
        let json = serde_json::to_string(&opts).unwrap();
        assert!(json.contains("\"method\":\"Subgradient\""), "{json}");
        assert!(json.contains("\"warm_iteration_fraction\":0.5"), "{json}");
        let back: RelaxedOptions = serde_json::from_str(&json).unwrap();
        assert_eq!(opts, back);

        // Pre-PR-3 configs must fail loudly, naming the missing field.
        let pre_pr3 = r#"{"max_iterations":600,"initial_step":1.0,"gap_tolerance":0.0001,
            "warm_start":false,"warm_accept_gap":0.01}"#;
        let err = serde_json::from_str::<RelaxedOptions>(pre_pr3)
            .unwrap_err()
            .to_string();
        assert!(err.contains("method") || err.contains("missing"), "{err}");
    }

    #[test]
    fn multi_component_recursion_matches_standalone_solves() {
        // Two disjoint components solved jointly (through the recycled
        // sub-instance husk) must equal the stand-alone solves bit for
        // bit.
        let joint = inst(
            &[0.4, 0.7, 0.55, 0.62],
            &[(5, &[0, 1]), (6, &[2, 3]), (3, &[2])],
            900.0,
            7.0,
        );
        let left = inst(&[0.4, 0.7], &[(5, &[0, 1])], 900.0, 7.0);
        let right = inst(&[0.55, 0.62], &[(6, &[0, 1]), (3, &[0])], 900.0, 7.0);
        for opts in both_methods() {
            let s = solve_relaxed(&joint, &opts).unwrap();
            let sl = solve_relaxed(&left, &opts).unwrap();
            let sr = solve_relaxed(&right, &opts).unwrap();
            assert_eq!(s.x[0].to_bits(), sl.x[0].to_bits());
            assert_eq!(s.x[1].to_bits(), sl.x[1].to_bits());
            assert_eq!(s.x[2].to_bits(), sr.x[0].to_bits());
            assert_eq!(s.x[3].to_bits(), sr.x[1].to_bits());
            assert_eq!(
                s.primal_value.to_bits(),
                (sl.primal_value + sr.primal_value).to_bits()
            );
        }
    }
}
