//! Lagrangian dual solver for the continuous relaxation of P2.
//!
//! The relaxed problem (paper Algorithm 2, step 3) is separable concave
//! with linear packing constraints, so its Lagrangian dual decomposes into
//! per-variable closed-form maximizations ([`crate::scalar`]). Dual prices
//! are updated by projected subgradient with a diminishing step; the
//! primal answer is recovered from the ergodic (running-average) iterate
//! with a feasibility repair that exactly preserves the `x ≥ 1` lower
//! bound (so the Eq. 8 rounding relation stays valid downstream).

use serde::{Deserialize, Serialize};

use crate::instance::AllocationInstance;
use crate::scalar::argmax_edge_utility;
use crate::SolveError;

/// Options for [`solve_relaxed`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelaxedOptions {
    /// Maximum subgradient iterations.
    pub max_iterations: usize,
    /// Initial subgradient step size.
    pub initial_step: f64,
    /// Stop early when the relative duality gap falls below this value.
    pub gap_tolerance: f64,
}

impl Default for RelaxedOptions {
    fn default() -> Self {
        RelaxedOptions {
            max_iterations: 600,
            initial_step: 1.0,
            gap_tolerance: 1e-4,
        }
    }
}

/// Result of the relaxed solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelaxedSolution {
    /// A feasible primal point (`x_j ≥ 1`, all constraints satisfied).
    pub x: Vec<f64>,
    /// Objective value at `x` (lower bound on the relaxed optimum).
    pub primal_value: f64,
    /// Best dual value observed (upper bound on the relaxed optimum).
    pub dual_bound: f64,
    /// Iterations performed.
    pub iterations: usize,
}

impl RelaxedSolution {
    /// Absolute duality gap `dual_bound − primal_value` (≥ 0 up to
    /// numerical error); small means near-optimal.
    pub fn gap(&self) -> f64 {
        self.dual_bound - self.primal_value
    }
}

/// Solves the continuous relaxation `max Σ V·ln P_j(x_j) − κ·x_j` s.t.
/// packing constraints and `x ≥ 1`.
///
/// # Errors
///
/// Returns [`SolveError::InfeasibleAtLowerBound`] only if the instance
/// was constructed without validation (cannot happen through
/// [`AllocationInstance::new`]); otherwise always produces a feasible
/// solution.
///
/// # Example
///
/// ```
/// use qdn_solve::{AllocationInstance, PackingConstraint, Variable};
/// use qdn_solve::relaxed::{solve_relaxed, RelaxedOptions};
///
/// let inst = AllocationInstance::new(
///     vec![Variable::new(0.55); 2],
///     vec![PackingConstraint::new(6, vec![0, 1])],
///     1000.0,
///     5.0,
/// ).unwrap();
/// let sol = solve_relaxed(&inst, &RelaxedOptions::default()).unwrap();
/// assert!(inst.is_feasible_real(&sol.x, 1e-6));
/// assert!(sol.gap() < 1.0);
/// ```
pub fn solve_relaxed(
    instance: &AllocationInstance,
    options: &RelaxedOptions,
) -> Result<RelaxedSolution, SolveError> {
    let n = instance.num_vars();
    if n == 0 {
        return Ok(RelaxedSolution {
            x: Vec::new(),
            primal_value: 0.0,
            dual_bound: 0.0,
            iterations: 0,
        });
    }

    // Decompose by constraint coupling: the dual iteration below uses
    // *global* convergence checks and a *global* Polyak step, so solving
    // independent components jointly both converges slower and produces
    // different floating-point trajectories than solving them alone.
    // Working component-wise makes the result identical whether a
    // component is solved inside a joint instance or as a stand-alone
    // sub-instance — the invariant the incremental profile evaluator in
    // `qdn-core` relies on.
    let partition = instance.components();
    if partition.len() > 1 {
        let mut x = vec![0.0f64; n];
        let mut primal_value = 0.0;
        let mut dual_bound = 0.0;
        let mut iterations = 0;
        for (comp_vars, comp_cons) in partition.vars.iter().zip(&partition.constraints) {
            let sub = instance.sub_instance(comp_vars, comp_cons)?;
            let sol = solve_relaxed(&sub, options)?;
            for (local, &j) in comp_vars.iter().enumerate() {
                x[j] = sol.x[local];
            }
            primal_value += sol.primal_value;
            dual_bound += sol.dual_bound;
            iterations = iterations.max(sol.iterations);
        }
        return Ok(RelaxedSolution {
            x,
            primal_value,
            dual_bound,
            iterations,
        });
    }

    let m = instance.num_constraints();
    let mut lambda = vec![0.0f64; m];
    let mut x = vec![1.0f64; n];
    let mut x_avg = vec![0.0f64; n];
    let mut best_dual = f64::INFINITY;
    let mut best_primal = f64::NEG_INFINITY;
    let mut best_x = instance
        .lower_bound_point()
        .iter()
        .map(|&v| v as f64)
        .collect::<Vec<_>>();
    let mut iterations = 0;

    for k in 1..=options.max_iterations {
        iterations = k;
        // Per-variable closed-form maximization under current prices.
        for (j, xj) in x.iter_mut().enumerate() {
            let price = instance.unit_price()
                + instance
                    .membership(j)
                    .iter()
                    .map(|&c| lambda[c])
                    .sum::<f64>();
            let ub = instance.upper_bound(j) as f64;
            *xj = argmax_edge_utility(instance.vars()[j].p, instance.v_weight(), price, 1.0, ub);
        }

        // Dual value: L(x(λ), λ) = Σ_j h_j(x_j) + Σ_c λ_c · cap_c
        // where h_j uses the per-variable price (already subtracted), i.e.
        // D(λ) = Σ_j [V ln P_j(x_j) − price_j x_j] + Σ_c λ_c cap_c.
        let mut dual = 0.0;
        for (j, &xj) in x.iter().enumerate() {
            let price = instance.unit_price()
                + instance
                    .membership(j)
                    .iter()
                    .map(|&c| lambda[c])
                    .sum::<f64>();
            dual += instance.v_weight() * crate::instance::ln_success(instance.vars()[j].p, xj)
                - price * xj;
        }
        for (c, &l) in lambda.iter().enumerate() {
            dual += l * instance.constraints()[c].capacity as f64;
        }
        best_dual = best_dual.min(dual);

        // Ergodic average for primal recovery.
        let w = 1.0 / k as f64;
        for j in 0..n {
            x_avg[j] += (x[j] - x_avg[j]) * w;
        }

        // Candidate primal points: repaired current iterate and repaired
        // running average.
        for candidate in [&x, &x_avg] {
            let repaired = repair_feasibility(instance, candidate);
            let value = instance.objective(&repaired);
            if value > best_primal {
                best_primal = value;
                best_x = repaired;
            }
        }

        // Convergence check.
        if best_dual.is_finite() && best_primal.is_finite() {
            let gap = best_dual - best_primal;
            let scale = 1.0 + best_dual.abs().max(best_primal.abs());
            if gap / scale < options.gap_tolerance {
                break;
            }
        }

        // Projected subgradient step on λ. Use the Polyak step
        // (dual − best primal) / ‖g‖², which adapts to the problem's scale;
        // fall back to a diminishing step when the gap estimate degenerates.
        let mut g = vec![0.0f64; m];
        let mut g_norm2 = 0.0;
        for (c, con) in instance.constraints().iter().enumerate() {
            let usage: f64 = con.members.iter().map(|&j| x[j]).sum();
            g[c] = usage - con.capacity as f64;
            g_norm2 += g[c] * g[c];
        }
        if g_norm2 > 0.0 {
            let polyak = (dual - best_primal).max(0.0) / g_norm2;
            let step = if polyak.is_finite() && polyak > 0.0 {
                polyak
            } else {
                options.initial_step / (k as f64).sqrt()
            };
            for c in 0..m {
                lambda[c] = (lambda[c] + step * g[c]).max(0.0);
            }
        }
    }

    Ok(RelaxedSolution {
        x: best_x,
        primal_value: best_primal,
        dual_bound: best_dual,
        iterations,
    })
}

/// Projects a (possibly infeasible) point onto the feasible region by
/// shrinking each variable's excess over the lower bound 1.
///
/// For each constraint `c`, the usage above the all-ones baseline is
/// `u_c = Σ_{j∈c} (x_j − 1)` and the available slack is
/// `s_c = cap_c − |members_c|`. Scaling every member's excess by
/// `θ_c = min(1, s_c/u_c)` — and taking the smallest θ over a variable's
/// constraints — yields a feasible point:
/// `Σ (1 + (x_j−1)·θ_j) ≤ |members| + θ_c·u_c ≤ cap_c`.
pub fn repair_feasibility(instance: &AllocationInstance, x: &[f64]) -> Vec<f64> {
    let m = instance.num_constraints();
    let mut theta_c = vec![1.0f64; m];
    for (c, con) in instance.constraints().iter().enumerate() {
        let excess: f64 = con.members.iter().map(|&j| (x[j] - 1.0).max(0.0)).sum();
        let slack = con.capacity as f64 - con.members.len() as f64;
        if excess > slack {
            theta_c[c] = if excess > 0.0 {
                (slack / excess).max(0.0)
            } else {
                1.0
            };
        }
    }
    (0..instance.num_vars())
        .map(|j| {
            let theta = instance
                .membership(j)
                .iter()
                .map(|&c| theta_c[c])
                .fold(1.0f64, f64::min);
            1.0 + (x[j] - 1.0).max(0.0) * theta
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{PackingConstraint, Variable};

    fn inst(ps: &[f64], cons: &[(u32, &[usize])], v: f64, price: f64) -> AllocationInstance {
        AllocationInstance::new(
            ps.iter().map(|&p| Variable::new(p)).collect(),
            cons.iter()
                .map(|&(cap, mem)| PackingConstraint::new(cap, mem.to_vec()))
                .collect(),
            v,
            price,
        )
        .unwrap()
    }

    #[test]
    fn empty_instance() {
        let i = inst(&[], &[], 1.0, 0.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        assert!(s.x.is_empty());
        assert_eq!(s.primal_value, 0.0);
    }

    #[test]
    fn unconstrained_matches_closed_form() {
        // One variable, no constraints: solution is the scalar argmax.
        let i = inst(&[0.55], &[], 2500.0, 25.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        let expected =
            crate::scalar::argmax_edge_utility(0.55, 2500.0, 25.0, 1.0, (1 << 20) as f64);
        assert!((s.x[0] - expected).abs() < 1e-6, "{} vs {expected}", s.x[0]);
    }

    #[test]
    fn respects_binding_capacity() {
        // Two identical variables share capacity 4 with zero price: each
        // should get ~2 (symmetric optimum uses all capacity).
        let i = inst(&[0.55, 0.55], &[(4, &[0, 1])], 2500.0, 1.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        assert!(i.is_feasible_real(&s.x, 1e-6));
        let total: f64 = s.x.iter().sum();
        assert!(total <= 4.0 + 1e-6);
        assert!(total > 3.8, "should nearly exhaust capacity, got {total}");
        assert!((s.x[0] - s.x[1]).abs() < 0.05, "symmetric: {:?}", s.x);
    }

    #[test]
    fn duality_gap_small_on_random_instances() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for trial in 0..20 {
            let nv = rng.random_range(2..6usize);
            let ps: Vec<f64> = (0..nv).map(|_| rng.random_range(0.2..0.9)).collect();
            let mut cons: Vec<(u32, Vec<usize>)> = Vec::new();
            // A few random constraints covering random subsets.
            for _ in 0..rng.random_range(1..4usize) {
                let mut members: Vec<usize> = (0..nv).filter(|_| rng.random_bool(0.6)).collect();
                if members.is_empty() {
                    members.push(0);
                }
                let cap = rng.random_range(members.len() as u32..=members.len() as u32 + 8);
                cons.push((cap, members));
            }
            let v = rng.random_range(10.0..3000.0);
            let price = rng.random_range(0.0..50.0);
            let i = AllocationInstance::new(
                ps.iter().map(|&p| Variable::new(p)).collect(),
                cons.iter()
                    .map(|(cap, mem)| PackingConstraint::new(*cap, mem.clone()))
                    .collect(),
                v,
                price,
            )
            .unwrap();
            let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
            assert!(i.is_feasible_real(&s.x, 1e-6), "trial {trial}");
            let scale = 1.0 + s.dual_bound.abs().max(s.primal_value.abs());
            assert!(
                s.gap() / scale < 0.02,
                "trial {trial}: relative gap too large ({} / {})",
                s.gap(),
                scale
            );
        }
    }

    #[test]
    fn beats_fine_grid_on_two_var_instance() {
        // Exhaustive 2-D grid comparison on a tight instance.
        let i = inst(&[0.4, 0.7], &[(5, &[0, 1]), (3, &[0])], 800.0, 10.0);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        let mut grid_best = f64::NEG_INFINITY;
        let steps = 400;
        for a in 0..=steps {
            let xa = 1.0 + (3.0 - 1.0) * a as f64 / steps as f64;
            for b in 0..=steps {
                let xb = 1.0 + (4.0 - 1.0) * b as f64 / steps as f64;
                if xa + xb <= 5.0 {
                    grid_best = grid_best.max(i.objective(&[xa, xb]));
                }
            }
        }
        assert!(
            s.primal_value >= grid_best - 0.05 * (1.0 + grid_best.abs()),
            "solver {} vs grid {grid_best}",
            s.primal_value
        );
    }

    #[test]
    fn repair_produces_feasible_points() {
        let i = inst(&[0.5, 0.5, 0.5], &[(4, &[0, 1, 2])], 100.0, 0.0);
        let wild = vec![10.0, 10.0, 10.0];
        let repaired = repair_feasibility(&i, &wild);
        assert!(i.is_feasible_real(&repaired, 1e-9), "{repaired:?}");
        for &v in &repaired {
            assert!(v >= 1.0);
        }
    }

    #[test]
    fn repair_keeps_feasible_points_unchanged() {
        let i = inst(&[0.5, 0.5], &[(6, &[0, 1])], 100.0, 0.0);
        let ok = vec![2.0, 3.0];
        let repaired = repair_feasibility(&i, &ok);
        assert!((repaired[0] - 2.0).abs() < 1e-12);
        assert!((repaired[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn high_price_drives_to_lower_bound() {
        let i = inst(&[0.55, 0.55], &[(10, &[0, 1])], 1.0, 1e6);
        let s = solve_relaxed(&i, &RelaxedOptions::default()).unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-9);
        assert!((s.x[1] - 1.0).abs() < 1e-9);
    }
}
