//! The consolidated slot-decision facade.
//!
//! Every driver of the per-slot pipeline — the OSCAR policy, the myopic
//! baselines, the event-driven online router, the controller daemon in
//! `crates/serve` — used to call a nine-argument free function and carry
//! its two `&mut` state halves (route cache, selection session) as
//! separate fields. [`EngineState`] owns that slot-spanning state as one
//! value, [`SlotDecisionRequest`] names the per-slot inputs, and
//! [`decide`] is the whole per-slot API:
//!
//! ```
//! use qdn_core::engine::{decide, EngineState, SlotDecisionRequest};
//! use qdn_core::problem::PerSlotContext;
//! use qdn_core::route_selection::RouteSelector;
//! use qdn_core::allocation::AllocationMethod;
//! use qdn_net::routes::RouteLimits;
//! use qdn_net::{CapacitySnapshot, NetworkConfig};
//! use qdn_net::workload::{UniformWorkload, Workload};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
//! let mut state = EngineState::new(RouteLimits::paper_default());
//! let snap = CapacitySnapshot::full(&net);
//! let requests = UniformWorkload::paper_default().requests(0, &net, &mut rng);
//! let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
//! let decision = decide(
//!     &mut state,
//!     SlotDecisionRequest {
//!         network: &net,
//!         requests: &requests,
//!         ctx: &ctx,
//!         selector: &RouteSelector::default(),
//!         allocation: &AllocationMethod::default(),
//!         fidelity_target: None,
//!         rng: &mut rng,
//!     },
//! );
//! assert_eq!(decision.request_count(), requests.len());
//! ```
//!
//! The pipeline: reconcile the candidate cache with the slot's link
//! state, apply the optional fidelity constraint, select routes through
//! the slot-spanning [`SelectorSession`], and degrade gracefully (drop
//! the most expensive pair) when the slot cannot serve everything.

use std::collections::HashMap;

use qdn_graph::{EdgeId, Path};
use qdn_net::routes::{CandidateRoutes, RouteLimits, RoutesSnapshot};
use qdn_net::{QdnNetwork, SdPair};
use serde::{Deserialize, Serialize};

use crate::allocation::AllocationMethod;
use crate::policy::ChurnDiagnostics;
use crate::problem::PerSlotContext;
use crate::profile_eval::{SelectorSession, SessionSnapshot};
use crate::route_selection::{Candidates, RouteSelector, Selection};
use crate::types::{Decision, RouteAssignment};

/// The per-slot inputs of one decision, borrowed from the driver.
///
/// Everything here describes *this* slot: the network and its link
/// state (inside `ctx`), the request set `Φ_t`, the strategy knobs, and
/// the driver's RNG stream. Slot-spanning state lives in
/// [`EngineState`] instead.
pub struct SlotDecisionRequest<'a> {
    /// The network topology (fixed between [`EngineState::reset`]s).
    pub network: &'a QdnNetwork,
    /// The slot's request set `Φ_t`.
    pub requests: &'a [SdPair],
    /// The per-slot objective context (capacity snapshot, `V`, price,
    /// optional slot budget).
    pub ctx: &'a PerSlotContext<'a>,
    /// Route-selection strategy (Algorithm 3 by default).
    pub selector: &'a RouteSelector,
    /// Qubit-allocation method (Algorithm 2 by default).
    pub allocation: &'a AllocationMethod,
    /// Optional end-to-end fidelity target (paper §III-C extension):
    /// candidate routes whose post-swapping Werner fidelity falls below
    /// this value are excluded from `R(φ)` for the slot.
    pub fidelity_target: Option<f64>,
    /// The driver's policy RNG stream (route-selection tie breaking).
    pub rng: &'a mut dyn rand::Rng,
}

impl std::fmt::Debug for SlotDecisionRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotDecisionRequest")
            .field("requests", &self.requests)
            .field("selector", &self.selector.label())
            .field("allocation", &self.allocation)
            .field("fidelity_target", &self.fidelity_target)
            .finish_non_exhaustive()
    }
}

/// The slot-spanning half of the decision pipeline, owned by a policy
/// (or daemon shard) for the lifetime of a run: the candidate route
/// cache with its incremental churn repair, the [`SelectorSession`]
/// carrying memos / λ stores / the previous selected profile, and the
/// fidelity-filter cache.
#[derive(Debug)]
pub struct EngineState {
    routes: CandidateRoutes,
    session: SelectorSession,
    fidelity: FidelityCache,
}

impl EngineState {
    /// Fresh state with the given candidate route limits.
    pub fn new(limits: RouteLimits) -> Self {
        EngineState {
            routes: CandidateRoutes::new(limits),
            session: SelectorSession::new(),
            fidelity: FidelityCache::default(),
        }
    }

    /// Wraps an already-warmed candidate cache with a fresh session —
    /// e.g. the oracle baseline pre-warms candidates while planning
    /// per-slot budgets and keeps that work.
    pub fn with_routes(routes: CandidateRoutes) -> Self {
        EngineState {
            routes,
            session: SelectorSession::new(),
            fidelity: FidelityCache::default(),
        }
    }

    /// The candidate route cache (read access, e.g. for diagnostics).
    pub fn routes(&self) -> &CandidateRoutes {
        &self.routes
    }

    /// The slot-spanning selection session (read access).
    pub fn session(&self) -> &SelectorSession {
        &self.session
    }

    /// Mutable session access, e.g. for
    /// [`SelectorSession::set_global_invalidation`].
    pub fn session_mut(&mut self) -> &mut SelectorSession {
        &mut self.session
    }

    /// Clears all cross-slot state for a fresh trial: the session's
    /// parked memos / λ stores / previous profile, the candidate cache
    /// (churn-repaired candidates are only weight-equivalent, not
    /// tie-identical, to a cold recompute — replay determinism needs a
    /// fresh cache), and the fidelity-filter cache.
    pub fn reset(&mut self) {
        self.session.reset();
        self.routes.clear();
        self.fidelity.clear();
    }

    /// The churn/invalidation ledger of the most recent slot.
    pub fn churn_diagnostics(&self) -> ChurnDiagnostics {
        ChurnDiagnostics::collect(&self.routes, &self.session)
    }

    /// Precomputes candidate repair for an *announced* outage of
    /// `edges` (e.g. an advised maintenance window), so the repair at
    /// cut time installs cached sets instead of running Yen. Purely an
    /// optimization: decisions are bit-identical with or without the
    /// prewarm, so snapshots do not carry it. Returns the number of
    /// tracked pairs prewarmed.
    pub fn prewarm_dead_edges(&mut self, network: &QdnNetwork, edges: &[EdgeId]) -> usize {
        self.routes.prewarm_dead_edges(network, edges)
    }

    /// Serializes the full cross-slot state into an [`EngineSnapshot`].
    ///
    /// The snapshot captures the candidate route cache (with the
    /// churn-repaired route sets themselves — repair is only
    /// weight-equivalent to a cold recompute, so restore must not
    /// recompute) and the complete selection session. The fidelity
    /// cache is *not* captured: it is a pure function of the network
    /// and the candidate sets and is rebuilt deterministically on the
    /// first slot after restore.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            version: ENGINE_SNAPSHOT_VERSION,
            routes: self.routes.snapshot(),
            session: self.session.snapshot(),
        }
    }

    /// Rebuilds engine state from a snapshot taken by
    /// [`EngineState::snapshot`]. Decisions made by the restored state
    /// are bit-identical to the uninterrupted run's (pinned by the
    /// `restored_session_matches_uninterrupted` proptest).
    pub fn restore(snapshot: &EngineSnapshot) -> Result<Self, String> {
        if snapshot.version != ENGINE_SNAPSHOT_VERSION {
            return Err(format!(
                "engine snapshot version {} (expected {ENGINE_SNAPSHOT_VERSION})",
                snapshot.version
            ));
        }
        Ok(EngineState {
            routes: CandidateRoutes::restore(&snapshot.routes)?,
            session: SelectorSession::restore(&snapshot.session)?,
            fidelity: FidelityCache::default(),
        })
    }

    /// Splits the state into its halves for callers that hold them
    /// separately (the deprecated 9-argument shim migration path).
    pub(crate) fn parts(
        &mut self,
    ) -> (
        &mut CandidateRoutes,
        &mut SelectorSession,
        &mut FidelityCache,
    ) {
        (&mut self.routes, &mut self.session, &mut self.fidelity)
    }
}

/// Version tag of [`EngineSnapshot`]; bump on layout changes.
pub const ENGINE_SNAPSHOT_VERSION: u32 = 1;

/// Serializable image of an [`EngineState`] — the warm-restart unit the
/// serve daemon persists per shard (see [`EngineState::snapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Layout version ([`ENGINE_SNAPSHOT_VERSION`]).
    pub version: u32,
    routes: RoutesSnapshot,
    session: SessionSnapshot,
}

/// Slot-spanning cache of the §III-C fidelity filter.
///
/// A route's end-to-end Werner fidelity depends only on its links'
/// models — not on the slot's capacities — so which candidates survive a
/// fixed target is constant until churn repair changes a pair's
/// candidate list. The old pipeline nevertheless cloned every surviving
/// [`Path`] of every requested pair every slot (a `Cow::Owned` per
/// pair). This cache computes the surviving *indices* against the cached
/// candidate slice once per pair, materializes a compact route list only
/// when the filter actually removes something, and reuses both until the
/// pair's candidates are repaired — steady-state slots clone nothing.
#[derive(Debug, Default)]
pub(crate) struct FidelityCache {
    /// Bit pattern of the target the entries were computed for.
    target_bits: Option<u64>,
    entries: HashMap<SdPair, FidelityEntry>,
}

#[derive(Debug)]
struct FidelityEntry {
    /// The filtered route list, materialized only when the target
    /// removes candidates; `None` means every candidate survives and
    /// the cached slice is served directly.
    filtered: Option<Vec<Path>>,
}

impl FidelityCache {
    fn clear(&mut self) {
        self.target_bits = None;
        self.entries.clear();
    }

    /// Drops entries whose pair's candidate list was repaired this slot
    /// (both orientations share the canonical candidate computation).
    fn invalidate_pairs(&mut self, changed: &[SdPair]) {
        for pair in changed {
            self.entries.remove(pair);
            self.entries.remove(&pair.reversed());
        }
    }

    /// Ensures an up-to-date entry for `pair` against `cached`.
    fn ensure(&mut self, network: &QdnNetwork, pair: SdPair, cached: &[Path], target: f64) {
        if self.target_bits != Some(target.to_bits()) {
            // Target changed (or first use): every entry is for the
            // wrong constraint.
            self.entries.clear();
            self.target_bits = Some(target.to_bits());
        }
        if self.entries.contains_key(&pair) {
            return;
        }
        // Filter by index against the cached slice; clone survivors
        // only when the target actually removes something.
        let keep: Vec<u32> = cached
            .iter()
            .enumerate()
            .filter(|(_, r)| network.route_fidelity(r).value() >= target)
            .map(|(i, _)| i as u32)
            .collect();
        let filtered = (keep.len() < cached.len())
            .then(|| keep.iter().map(|&i| cached[i as usize].clone()).collect());
        self.entries.insert(pair, FidelityEntry { filtered });
    }

    /// The slot's candidate view for `pair`: the full cached slice when
    /// everything survives, the cached filtered list otherwise.
    fn serve<'a>(&'a self, pair: SdPair, cached: &'a [Path]) -> &'a [Path] {
        match self.entries.get(&pair) {
            Some(entry) => entry.filtered.as_deref().unwrap_or(cached),
            // Unreachable in practice (`ensure` ran for every requested
            // pair), but serving unfiltered is the safe degradation.
            None => cached,
        }
    }
}

/// Decides one slot: routes and qubit allocations for `req.requests`
/// under `req.ctx`, using and updating the slot-spanning `state`.
///
/// This is the consolidated facade over [`decide_parts`]; see the
/// module docs for the pipeline.
pub fn decide(state: &mut EngineState, req: SlotDecisionRequest<'_>) -> Decision {
    let (routes, session, fidelity) = state.parts();
    decide_parts(routes, session, fidelity, req)
}

/// The pipeline over explicitly split state halves; [`decide`] is the
/// one-struct facade over this.
pub(crate) fn decide_parts(
    routes_cache: &mut CandidateRoutes,
    session: &mut SelectorSession,
    fidelity: &mut FidelityCache,
    req: SlotDecisionRequest<'_>,
) -> Decision {
    let SlotDecisionRequest {
        network,
        requests,
        ctx,
        selector,
        allocation,
        fidelity_target,
        rng,
    } = req;
    // Reconcile the candidate cache with this slot's link state first:
    // an edge at zero channels is failed for the slot (every route needs
    // at least one channel per edge), so routes through it are dropped
    // and only the affected pairs repaired — incrementally, via the KSP
    // maintainer; a restored edge re-admits routes the same way. Pairs
    // left with no candidates fall through to `unserved` below.
    let changed = routes_cache
        .sync_dead_edges(network, ctx.snapshot)
        .changed_pairs
        .clone();
    fidelity.invalidate_pairs(&changed);
    // Warm the cache with one `&mut` call per pair (and refresh the
    // fidelity entries against the warmed slices), then take shared
    // borrows: the selector is handed cached slices directly — the
    // full candidate list, or the cached filtered list when a fidelity
    // target removes candidates. Nothing is cloned per slot.
    for &pair in requests {
        routes_cache.routes(network, pair);
        if let Some(target) = fidelity_target {
            let cached = routes_cache
                .cached(pair)
                .expect("routes() populated this pair");
            fidelity.ensure(network, pair, cached, target);
        }
    }
    let routes_cache = &*routes_cache;
    let fidelity = &*fidelity;
    let mut unserved: Vec<SdPair> = Vec::new();
    let mut served: Vec<(SdPair, &[Path])> = Vec::new();
    for &pair in requests {
        let cached = routes_cache
            .cached(pair)
            .expect("cache warmed for every requested pair above");
        let routes: &[Path] = match fidelity_target {
            Some(_) => fidelity.serve(pair, cached),
            None => cached,
        };
        if routes.is_empty() {
            unserved.push(pair);
        } else {
            served.push((pair, routes));
        }
    }

    // Try to serve everything; on infeasibility drop the pair whose
    // cheapest route is longest (it consumes the most mandatory units) and
    // retry — Assumption 1 makes this rare at the paper's defaults.
    loop {
        let cands: Vec<Candidates<'_>> = served
            .iter()
            .map(|(pair, routes)| Candidates {
                pair: *pair,
                routes,
            })
            .collect();
        match selector.select_in(session, ctx, &cands, allocation, rng) {
            Some(Selection {
                indices,
                evaluation,
            }) => {
                let assignments = served
                    .iter()
                    .zip(&indices)
                    .zip(evaluation.allocations)
                    .map(|(((pair, routes), &idx), alloc)| {
                        RouteAssignment::new(*pair, routes[idx].clone(), alloc)
                    })
                    .collect();
                return Decision::new(assignments, unserved);
            }
            None => {
                if served.is_empty() {
                    return Decision::new(Vec::new(), unserved);
                }
                // Drop the pair with the longest shortest-route.
                let victim = served
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, (_, routes))| routes[0].hops())
                    .map(|(i, _)| i)
                    .expect("served is non-empty");
                let (pair, _) = served.remove(victim);
                unserved.push(pair);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdn_net::{CapacitySnapshot, NetworkConfig};
    use rand::SeedableRng;

    fn setup() -> (QdnNetwork, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let net = NetworkConfig::paper_default().build(&mut rng).unwrap();
        (net, rng)
    }

    fn requests(net: &QdnNetwork, rng: &mut dyn rand::Rng, t: u64) -> Vec<SdPair> {
        use qdn_net::workload::{UniformWorkload, Workload};
        UniformWorkload::paper_default().requests(t, net, rng)
    }

    #[test]
    fn facade_matches_split_parts_pipeline() {
        let (net, mut rng) = setup();
        let snap = CapacitySnapshot::full(&net);
        let selector = RouteSelector::default();
        let alloc = AllocationMethod::default();

        let mut state = EngineState::new(RouteLimits::paper_default());
        let mut split_routes = CandidateRoutes::new(RouteLimits::paper_default());
        let mut split_session = SelectorSession::new();
        let mut split_fidelity = FidelityCache::default();

        for t in 0..5u64 {
            let reqs = requests(&net, &mut rng, t);
            let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
            let mut rng_a = rand::rngs::StdRng::seed_from_u64(1000 + t);
            let mut rng_b = rand::rngs::StdRng::seed_from_u64(1000 + t);
            let via_facade = decide(
                &mut state,
                SlotDecisionRequest {
                    network: &net,
                    requests: &reqs,
                    ctx: &ctx,
                    selector: &selector,
                    allocation: &alloc,
                    fidelity_target: None,
                    rng: &mut rng_a,
                },
            );
            let via_parts = decide_parts(
                &mut split_routes,
                &mut split_session,
                &mut split_fidelity,
                SlotDecisionRequest {
                    network: &net,
                    requests: &reqs,
                    ctx: &ctx,
                    selector: &selector,
                    allocation: &alloc,
                    fidelity_target: None,
                    rng: &mut rng_b,
                },
            );
            assert_eq!(via_facade, via_parts, "slot {t}");
        }
    }

    #[test]
    fn fidelity_filter_matches_per_slot_recompute() {
        let (net, mut rng) = setup();
        let snap = CapacitySnapshot::full(&net);
        let selector = RouteSelector::default();
        let alloc = AllocationMethod::default();
        let target = 0.6;

        let mut state = EngineState::new(RouteLimits::paper_default());
        for t in 0..8u64 {
            let reqs = requests(&net, &mut rng, t);
            let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
            let mut rng_a = rand::rngs::StdRng::seed_from_u64(7 + t);
            let decision = decide(
                &mut state,
                SlotDecisionRequest {
                    network: &net,
                    requests: &reqs,
                    ctx: &ctx,
                    selector: &selector,
                    allocation: &alloc,
                    fidelity_target: Some(target),
                    rng: &mut rng_a,
                },
            );
            // Every served route meets the target; the reference
            // computation is the direct per-route fidelity check.
            for a in decision.assignments() {
                assert!(net.route_fidelity(&a.route).value() >= target);
            }
        }
        // Steady state: entries exist, and a repeated request clones
        // nothing (observable as: the entry map stops growing).
        let before = state.fidelity.entries.len();
        let reqs = requests(&net, &mut rng, 99);
        let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(99);
        let _ = decide(
            &mut state,
            SlotDecisionRequest {
                network: &net,
                requests: &reqs,
                ctx: &ctx,
                selector: &selector,
                allocation: &alloc,
                fidelity_target: Some(target),
                rng: &mut rng_a,
            },
        );
        assert!(state.fidelity.entries.len() >= before);
    }

    #[test]
    fn fidelity_cache_invalidates_on_churn() {
        let (net, mut rng) = setup();
        let selector = RouteSelector::default();
        let alloc = AllocationMethod::default();
        let target = 0.5;
        let mut state = EngineState::new(RouteLimits::paper_default());

        let reqs = requests(&net, &mut rng, 0);
        let full = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &full, 2500.0, 10.0);
        let mut r = rand::rngs::StdRng::seed_from_u64(5);
        let d0 = decide(
            &mut state,
            SlotDecisionRequest {
                network: &net,
                requests: &reqs,
                ctx: &ctx,
                selector: &selector,
                allocation: &alloc,
                fidelity_target: Some(target),
                rng: &mut r,
            },
        );
        // Fail an edge used by some served route, then decide again:
        // the repaired pair's entry must be recomputed against the
        // repaired candidates (no stale indices).
        let Some(first) = d0.assignments().first() else {
            return;
        };
        let dead = first.route.edges()[0];
        let mut channels: Vec<u32> = net
            .graph()
            .edge_ids()
            .map(|e| net.channel_capacity(e))
            .collect();
        channels[dead.index()] = 0;
        let snap = CapacitySnapshot::clamped(
            &net,
            net.graph()
                .node_ids()
                .map(|v| net.qubit_capacity(v))
                .collect(),
            channels,
        );
        let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
        let d1 = decide(
            &mut state,
            SlotDecisionRequest {
                network: &net,
                requests: &reqs,
                ctx: &ctx,
                selector: &selector,
                allocation: &alloc,
                fidelity_target: Some(target),
                rng: &mut r,
            },
        );
        for a in d1.assignments() {
            assert!(!a.route.edges().contains(&dead), "dead edge served");
            assert!(net.route_fidelity(&a.route).value() >= target);
        }
    }

    #[test]
    fn reset_clears_engine_state() {
        let (net, mut rng) = setup();
        let snap = CapacitySnapshot::full(&net);
        let mut state = EngineState::new(RouteLimits::paper_default());
        let reqs = requests(&net, &mut rng, 0);
        let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
        let mut r = rand::rngs::StdRng::seed_from_u64(3);
        let _ = decide(
            &mut state,
            SlotDecisionRequest {
                network: &net,
                requests: &reqs,
                ctx: &ctx,
                selector: &RouteSelector::default(),
                allocation: &AllocationMethod::default(),
                fidelity_target: Some(0.5),
                rng: &mut r,
            },
        );
        assert!(state.routes().cached_pairs() > 0);
        state.reset();
        assert_eq!(state.routes().cached_pairs(), 0);
        assert_eq!(state.session().remembered_pairs(), 0);
        assert!(state.fidelity.entries.is_empty());
    }

    #[test]
    fn snapshot_roundtrip_preserves_decisions() {
        let (net, mut rng) = setup();
        let snap = CapacitySnapshot::full(&net);
        let selector = RouteSelector::default();
        let alloc = AllocationMethod::default();

        // Warm a state for a few slots, snapshot it through the JSON
        // wire form, then continue both the original and the restored
        // state through further slots with twin RNGs: decisions must be
        // bit-identical, and the restored state must re-snapshot to the
        // exact same bytes (canonical ordering).
        let mut state = EngineState::new(RouteLimits::paper_default());
        for t in 0..4u64 {
            let reqs = requests(&net, &mut rng, t);
            let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
            let mut r = rand::rngs::StdRng::seed_from_u64(40 + t);
            let _ = decide(
                &mut state,
                SlotDecisionRequest {
                    network: &net,
                    requests: &reqs,
                    ctx: &ctx,
                    selector: &selector,
                    allocation: &alloc,
                    fidelity_target: Some(0.5),
                    rng: &mut r,
                },
            );
        }
        let image = state.snapshot();
        let wire = serde_json::to_string(&image).unwrap();
        let decoded: EngineSnapshot = serde_json::from_str(&wire).unwrap();
        assert_eq!(decoded, image);
        let mut restored = EngineState::restore(&decoded).unwrap();
        assert_eq!(
            serde_json::to_string(&restored.snapshot()).unwrap(),
            wire,
            "restored state must re-snapshot byte-identically"
        );

        for t in 4..9u64 {
            let reqs = requests(&net, &mut rng, t);
            let ctx = PerSlotContext::oscar(&net, &snap, 2500.0, 10.0);
            let mut rng_a = rand::rngs::StdRng::seed_from_u64(40 + t);
            let mut rng_b = rand::rngs::StdRng::seed_from_u64(40 + t);
            let cont = decide(
                &mut state,
                SlotDecisionRequest {
                    network: &net,
                    requests: &reqs,
                    ctx: &ctx,
                    selector: &selector,
                    allocation: &alloc,
                    fidelity_target: Some(0.5),
                    rng: &mut rng_a,
                },
            );
            let rest = decide(
                &mut restored,
                SlotDecisionRequest {
                    network: &net,
                    requests: &reqs,
                    ctx: &ctx,
                    selector: &selector,
                    allocation: &alloc,
                    fidelity_target: Some(0.5),
                    rng: &mut rng_b,
                },
            );
            assert_eq!(cont, rest, "slot {t} diverged after restore");
        }
    }

    #[test]
    fn snapshot_rejects_wrong_version() {
        let state = EngineState::new(RouteLimits::paper_default());
        let mut image = state.snapshot();
        image.version += 1;
        assert!(EngineState::restore(&image).is_err());
    }
}
