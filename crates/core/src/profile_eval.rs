//! Incremental, component-decomposed route-profile evaluation.
//!
//! Route selection (Algorithm 3 / Eq. 13) evaluates thousands of route
//! profiles per slot, and the naive path — [`PerSlotContext::evaluate`] —
//! rebuilds a fresh [`AllocationInstance`] and re-solves the *joint*
//! allocation problem for every proposal, even when only one SD pair's
//! route changed. [`ProfileEvaluator`] is the engine the selectors use
//! instead:
//!
//! * **Dense scratch buffers** — node/edge first-touch maps are flat
//!   vectors indexed by [`NodeId`]/[`EdgeId`] with epoch stamping, sized
//!   once per slot and reused across evaluations; repeat evaluations of a
//!   profile build no instances and solve nothing (their only heap
//!   traffic is one components-sized reference buffer per call).
//! * **Connected-component decomposition** — pairs are partitioned by
//!   constraint coupling: two pairs share a component iff some candidate
//!   route of one shares a node with some candidate route of the other
//!   (the static closure of the coupling that any profile can exhibit;
//!   a per-slot budget constraint couples everything). Each component is
//!   an independent sub-instance, so a single-pair Gibbs/greedy move
//!   re-solves only the component that pair belongs to. This generalizes
//!   — and subsumes — the `parallel_isolated` special case of
//!   [`crate::route_selection::gibbs`]: an isolated pair is exactly a
//!   singleton component.
//! * **Evaluation memo** — per component, solved allocations are cached
//!   under the tuple of that component's route indices, so profiles
//!   revisited by Gibbs or sharing unchanged components with a previous
//!   proposal (every profile the exhaustive odometer visits) are free.
//!
//! # Bit-identical results
//!
//! The evaluator returns *exactly* the objective and allocations of the
//! full-rebuild path, bit for bit. Three invariants make this hold:
//!
//! 1. [`PerSlotContext::build_instance`] lays out variables in profile
//!    order and constraints in first-touch order, so the sub-instance of
//!    a component equals the joint instance restricted to it;
//! 2. `qdn_solve::solve_relaxed` itself decomposes by constraint
//!    coupling, so solving a component stand-alone or inside the joint
//!    instance follows the same floating-point trajectory (the greedy
//!    allocator is interleaving-invariant across components by
//!    construction, and `Minimal` trivially so);
//! 3. the final objective is re-accumulated over the gathered joint
//!    allocation in variable order with the same
//!    [`qdn_solve::ln_success`] terms [`AllocationInstance::objective_int`]
//!    uses, rather than by summing cached per-component objectives (which
//!    would associate the additions differently).
//!
//! The property test `incremental_matches_full_rebuild` in
//! `crates/core/tests/proptests.rs` enforces this equivalence on random
//! topologies and profiles for every allocation method.
//!
//! # Parallelism (`parallel` feature)
//!
//! With the `parallel` cargo feature, unsolved components of one
//! evaluation are solved on `std::thread::scope` threads (rayon is not
//! available in this build environment; scoped threads provide the same
//! fork-join shape). Results are inserted into the memo after the join,
//! so the outcome is bit-identical to the serial path. Multi-chain Gibbs
//! restarts parallelize the same way — see
//! [`crate::route_selection::gibbs::sample_restarts`].

use std::collections::HashMap;

use qdn_graph::{EdgeId, NodeId, Path};
use qdn_net::SdPair;
use qdn_physics::swap::SwapModel;
use qdn_solve::{ln_success, AllocationInstance};

use crate::allocation::AllocationMethod;
use crate::problem::{assemble_instance, LayoutScratch, PerSlotContext, ProfileEvaluation};
use crate::route_selection::Candidates;

/// One candidate route, pre-resolved against the network.
#[derive(Debug, Clone)]
struct RouteData {
    /// Per edge: identity, endpoints, and channel success probability.
    edges: Vec<EdgeVar>,
    /// Number of hops (= variables this route contributes).
    hops: usize,
    /// Swap count of the route (`hops − 1` surviving swaps).
    swaps: u64,
}

#[derive(Debug, Clone, Copy)]
struct EdgeVar {
    edge: EdgeId,
    u: NodeId,
    v: NodeId,
    p: f64,
}

/// Reusable dense buffers for sub-instance construction.
#[derive(Debug, Default)]
struct Scratch {
    /// First-touch layout maps shared with `PerSlotContext::build_instance`.
    layout: LayoutScratch,
    /// Reusable memo-key buffer (route indices of one component).
    key: Vec<u32>,
    /// Per-component read cursors for the gather pass.
    cursors: Vec<usize>,
}

/// Per-component memo: route-index tuple → flat allocation
/// (`None` = that combination is infeasible).
type Memo = HashMap<Box<[u32]>, Option<Box<[u32]>>>;

/// Counters describing how much work the evaluator actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Profile evaluations served (objective-only or full).
    pub evaluations: u64,
    /// Component lookups answered from the memo.
    pub memo_hits: u64,
    /// Component sub-instances built and solved.
    pub components_solved: u64,
}

/// The incremental profile-evaluation engine. See the module docs.
#[derive(Debug)]
pub struct ProfileEvaluator<'a> {
    ctx: PerSlotContext<'a>,
    method: AllocationMethod,
    pairs: Vec<SdPair>,
    /// `routes[i][r]` describes candidate `r` of pair `i`.
    routes: Vec<Vec<RouteData>>,
    /// Static partition: `comp_of_pair[i]` and the ascending pair lists.
    comp_of_pair: Vec<usize>,
    comp_pairs: Vec<Vec<usize>>,
    /// `ln(swap_success)`; only meaningful when `lossy_swap`.
    ln_q: f64,
    lossy_swap: bool,
    budget: Option<u32>,
    scratch: Scratch,
    memos: Vec<Memo>,
    /// `pair_memo[i][r]`: cached single-pair objective (outer `None` =
    /// not yet computed; inner `None` = infeasible).
    pair_memo: Vec<Vec<Option<Option<f64>>>>,
    stats: EvalStats,
}

impl<'a> ProfileEvaluator<'a> {
    /// Builds the evaluator for one slot: resolves candidate routes
    /// against the network, partitions pairs into coupling components,
    /// and sizes the scratch buffers.
    pub fn new(
        ctx: &PerSlotContext<'a>,
        candidates: &[Candidates<'_>],
        method: &AllocationMethod,
    ) -> Self {
        let k = candidates.len();
        let pairs: Vec<SdPair> = candidates.iter().map(|c| c.pair).collect();
        let routes: Vec<Vec<RouteData>> = candidates
            .iter()
            .map(|c| c.routes.iter().map(|r| resolve_route(ctx, r)).collect())
            .collect();

        // Static partition by candidate-route node sharing (edge sharing
        // implies node sharing). A slot budget couples everything.
        let mut dsu = qdn_solve::Dsu::new(k);
        if ctx.slot_budget.is_some() {
            for i in 1..k {
                dsu.union(0, i);
            }
        } else {
            let mut node_owner = vec![usize::MAX; ctx.network.node_count()];
            for (i, cand) in routes.iter().enumerate() {
                for route in cand {
                    for ev in &route.edges {
                        for node in [ev.u, ev.v] {
                            let owner = node_owner[node.index()];
                            if owner == usize::MAX {
                                node_owner[node.index()] = i;
                            } else if owner != i {
                                dsu.union(owner, i);
                            }
                        }
                    }
                }
            }
        }
        let mut comp_of_pair = vec![usize::MAX; k];
        let mut comp_pairs: Vec<Vec<usize>> = Vec::new();
        for i in 0..k {
            let root = dsu.find(i);
            let comp = if comp_of_pair[root] == usize::MAX {
                comp_pairs.push(Vec::new());
                let id = comp_pairs.len() - 1;
                comp_of_pair[root] = id;
                id
            } else {
                comp_of_pair[root]
            };
            comp_of_pair[i] = comp;
            comp_pairs[comp].push(i);
        }

        let q = ctx.network.swap().success();
        let scratch = Scratch {
            layout: LayoutScratch::sized(ctx.network.node_count(), ctx.network.edge_count()),
            key: Vec::with_capacity(k),
            cursors: vec![0; comp_pairs.len()],
        };
        let memos = vec![Memo::new(); comp_pairs.len()];
        let pair_memo = routes.iter().map(|c| vec![None; c.len()]).collect();
        ProfileEvaluator {
            ctx: *ctx,
            method: *method,
            pairs,
            routes,
            comp_of_pair,
            comp_pairs,
            ln_q: if q < 1.0 { q.ln() } else { 0.0 },
            lossy_swap: q < 1.0,
            budget: ctx.slot_budget.map(|b| b.min(u32::MAX as u64) as u32),
            scratch,
            memos,
            pair_memo,
            stats: EvalStats::default(),
        }
    }

    /// Number of SD pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of coupling components in the static partition.
    pub fn component_count(&self) -> usize {
        self.comp_pairs.len()
    }

    /// Whether pair `i` is alone in its component (the generalization of
    /// the Gibbs `parallel_isolated` notion).
    pub fn pair_is_isolated(&self, i: usize) -> bool {
        self.comp_pairs[self.comp_of_pair[i]].len() == 1
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Evaluates only the objective of the profile `indices`, re-solving
    /// just the components whose route-index tuples have not been seen
    /// before. Returns `None` when the profile is infeasible.
    ///
    /// Bit-identical to
    /// [`PerSlotContext::evaluate_objective`] on the equivalent profile.
    pub fn evaluate_objective(&mut self, indices: &[usize]) -> Option<f64> {
        self.stats.evaluations += 1;
        if self.pairs.is_empty() {
            return Some(0.0);
        }
        self.ensure_components(indices)?;
        Some(self.accumulate_objective(indices, None))
    }

    /// Fully evaluates the profile `indices`, returning per-route
    /// allocations plus the objective. Returns `None` when infeasible.
    ///
    /// Bit-identical to [`PerSlotContext::evaluate`] on the equivalent
    /// profile.
    pub fn evaluate(&mut self, indices: &[usize]) -> Option<ProfileEvaluation> {
        self.stats.evaluations += 1;
        if self.pairs.is_empty() {
            return Some(ProfileEvaluation {
                allocations: Vec::new(),
                objective: 0.0,
            });
        }
        self.ensure_components(indices)?;
        let mut allocations: Vec<Vec<u32>> = Vec::with_capacity(self.pairs.len());
        let objective = self.accumulate_objective(indices, Some(&mut allocations));
        Some(ProfileEvaluation {
            allocations,
            objective,
        })
    }

    /// Objective of pair `i` served alone with candidate `route_idx`
    /// (memoized). Matches the seed's "local evaluation" used for
    /// isolated pairs in Gibbs: the single-pair profile evaluated under
    /// this slot's context, including any slot budget.
    pub fn evaluate_pair_objective(&mut self, i: usize, route_idx: usize) -> Option<f64> {
        if let Some(cached) = self.pair_memo[i][route_idx] {
            return cached;
        }
        let route = &self.routes[i][route_idx];
        let instance = build_instance_for(
            &mut self.scratch,
            &self.ctx,
            self.budget,
            std::iter::once(route),
        );
        let objective = instance.ok().and_then(|inst| {
            let flat = self.method.allocate(&inst)?;
            let swap_term = if self.lossy_swap {
                route.swaps as f64 * self.ln_q
            } else {
                0.0
            };
            Some(inst.objective_int(&flat) + self.ctx.v_weight * swap_term)
        });
        self.pair_memo[i][route_idx] = Some(objective);
        objective
    }

    /// Ensures every component's allocation for `indices` is in the memo;
    /// `None` if any component is infeasible.
    fn ensure_components(&mut self, indices: &[usize]) -> Option<()> {
        debug_assert_eq!(indices.len(), self.pairs.len());
        // Components the parallel pre-pass solved this call (ascending);
        // they must not count as memo hits below.
        #[cfg(feature = "parallel")]
        let fresh = self.solve_missing_parallel(indices);
        #[cfg(not(feature = "parallel"))]
        let fresh: Vec<usize> = Vec::new();

        for comp in 0..self.comp_pairs.len() {
            self.scratch.key.clear();
            for &i in &self.comp_pairs[comp] {
                self.scratch.key.push(indices[i] as u32);
            }
            if let Some(entry) = self.memos[comp].get(self.scratch.key.as_slice()) {
                if fresh.binary_search(&comp).is_err() {
                    self.stats.memo_hits += 1;
                }
                if entry.is_none() {
                    return None;
                }
                continue;
            }
            self.stats.components_solved += 1;
            let solved = solve_component(
                &mut self.scratch,
                &self.ctx,
                self.budget,
                &self.method,
                &self.routes,
                &self.comp_pairs[comp],
                indices,
            );
            let feasible = solved.is_some();
            let key = self.scratch.key.clone().into_boxed_slice();
            self.memos[comp].insert(key, solved);
            if !feasible {
                return None;
            }
        }
        Some(())
    }

    /// Pre-solves all missing components of `indices` on scoped threads
    /// and returns their ids (ascending). Bit-identical to the serial
    /// path: each component's solve is independent and results are
    /// inserted in component order. Components are chunked over a bounded
    /// worker count with one scratch per worker, so the cost per call is
    /// a few spawns — not one spawn and four network-sized allocations
    /// per component.
    #[cfg(feature = "parallel")]
    fn solve_missing_parallel(&mut self, indices: &[usize]) -> Vec<usize> {
        let mut missing: Vec<usize> = Vec::new();
        for comp in 0..self.comp_pairs.len() {
            self.scratch.key.clear();
            for &i in &self.comp_pairs[comp] {
                self.scratch.key.push(indices[i] as u32);
            }
            if !self.memos[comp].contains_key(self.scratch.key.as_slice()) {
                missing.push(comp);
            }
        }
        if missing.len() < 2 {
            return Vec::new();
        }
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(missing.len());
        let chunk = missing.len().div_ceil(workers);
        let ctx = self.ctx;
        let budget = self.budget;
        let method = self.method;
        let routes = &self.routes;
        let comp_pairs = &self.comp_pairs;
        let results: Vec<Vec<(usize, Option<Box<[u32]>>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = missing
                .chunks(chunk)
                .map(|comps| {
                    scope.spawn(move || {
                        let mut scratch = Scratch {
                            layout: LayoutScratch::sized(
                                ctx.network.node_count(),
                                ctx.network.edge_count(),
                            ),
                            key: Vec::new(),
                            cursors: Vec::new(),
                        };
                        comps
                            .iter()
                            .map(|&comp| {
                                (
                                    comp,
                                    solve_component(
                                        &mut scratch,
                                        &ctx,
                                        budget,
                                        &method,
                                        routes,
                                        &comp_pairs[comp],
                                        indices,
                                    ),
                                )
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (comp, solved) in results.into_iter().flatten() {
            let key: Vec<u32> = self.comp_pairs[comp]
                .iter()
                .map(|&i| indices[i] as u32)
                .collect();
            self.stats.components_solved += 1;
            self.memos[comp].insert(key.into_boxed_slice(), solved);
        }
        missing
    }

    /// Gathers the memoized component allocations in joint variable order
    /// and accumulates the objective exactly as
    /// [`AllocationInstance::objective_int`] would on the joint instance
    /// (same terms, same order), plus the profile's swap term. Optionally
    /// copies out per-route allocations.
    ///
    /// All referenced components must already be memoized feasible.
    fn accumulate_objective(
        &mut self,
        indices: &[usize],
        mut allocations: Option<&mut Vec<Vec<u32>>>,
    ) -> f64 {
        self.scratch.cursors.iter_mut().for_each(|c| *c = 0);
        // One memo lookup per component, hoisted out of the pair loop —
        // rebuilding the key per *pair* would make the memo-hit path
        // quadratic in component size.
        let flats: Vec<&[u32]> = (0..self.comp_pairs.len())
            .map(|comp| {
                self.scratch.key.clear();
                for &j in &self.comp_pairs[comp] {
                    self.scratch.key.push(indices[j] as u32);
                }
                self.memos[comp]
                    .get(self.scratch.key.as_slice())
                    .expect("component memoized by ensure_components")
                    .as_deref()
                    .expect("component feasible by ensure_components")
            })
            .collect();
        let mut objective = 0.0;
        let mut total_swaps = 0u64;
        for (i, &route_idx) in indices.iter().enumerate() {
            let comp = self.comp_of_pair[i];
            let flat = flats[comp];
            let route = &self.routes[i][route_idx];
            let seg = &flat[self.scratch.cursors[comp]..self.scratch.cursors[comp] + route.hops];
            self.scratch.cursors[comp] += route.hops;
            for (ev, &n) in route.edges.iter().zip(seg) {
                objective +=
                    self.ctx.v_weight * ln_success(ev.p, n as f64) - self.ctx.unit_price * n as f64;
            }
            total_swaps += route.swaps;
            if let Some(out) = allocations.as_deref_mut() {
                out.push(seg.to_vec());
            }
        }
        if self.lossy_swap {
            objective += self.ctx.v_weight * (total_swaps as f64 * self.ln_q);
        }
        objective
    }
}

/// Resolves one candidate [`Path`] into per-edge data.
fn resolve_route(ctx: &PerSlotContext<'_>, route: &Path) -> RouteData {
    let edges: Vec<EdgeVar> = route
        .edges()
        .iter()
        .map(|&edge| {
            let (u, v) = ctx.network.graph().endpoints(edge);
            EdgeVar {
                edge,
                u,
                v,
                p: ctx.network.link(edge).channel_success(),
            }
        })
        .collect();
    RouteData {
        hops: edges.len(),
        swaps: SwapModel::swaps_for_hops(route.hops()) as u64,
        edges,
    }
}

/// Builds the [`AllocationInstance`] for the given routes via the shared
/// [`assemble_instance`] layout routine — the same code path
/// [`PerSlotContext::build_instance`] uses, so a component's sub-instance
/// is structurally the joint instance restricted to it.
fn build_instance_for<'r>(
    scratch: &mut Scratch,
    ctx: &PerSlotContext<'_>,
    budget: Option<u32>,
    routes: impl Iterator<Item = &'r RouteData>,
) -> Result<AllocationInstance, qdn_solve::SolveError> {
    let edges = routes.flat_map(|route| route.edges.iter().map(|ev| (ev.edge, ev.u, ev.v, ev.p)));
    assemble_instance(
        &mut scratch.layout,
        ctx.snapshot,
        edges,
        budget,
        ctx.v_weight,
        ctx.unit_price,
    )
}

/// Builds and solves one component's sub-instance; `None` = infeasible.
fn solve_component(
    scratch: &mut Scratch,
    ctx: &PerSlotContext<'_>,
    budget: Option<u32>,
    method: &AllocationMethod,
    routes: &[Vec<RouteData>],
    comp_pairs: &[usize],
    indices: &[usize],
) -> Option<Box<[u32]>> {
    let instance = build_instance_for(
        scratch,
        ctx,
        budget,
        comp_pairs.iter().map(|&i| &routes[i][indices[i]]),
    )
    .ok()?;
    method.allocate(&instance).map(Vec::into_boxed_slice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route_selection::Candidates;
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_net::routes::{CandidateRoutes, RouteLimits};
    use qdn_net::{CapacitySnapshot, QdnNetwork};
    use qdn_physics::link::LinkModel;

    /// Two disjoint diamonds plus one extra pair inside the first.
    fn two_diamonds() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..8).map(|_| b.add_node(10)).collect();
        let good = LinkModel::new(0.85).unwrap();
        let bad = LinkModel::new(0.25).unwrap();
        b.add_edge(n[0], n[1], 5, good).unwrap();
        b.add_edge(n[1], n[3], 5, good).unwrap();
        b.add_edge(n[0], n[2], 5, bad).unwrap();
        b.add_edge(n[2], n[3], 5, bad).unwrap();
        b.add_edge(n[4], n[5], 5, good).unwrap();
        b.add_edge(n[5], n[7], 5, good).unwrap();
        b.add_edge(n[4], n[6], 5, bad).unwrap();
        b.add_edge(n[6], n[7], 5, bad).unwrap();
        b.build()
    }

    fn owned_candidates(net: &QdnNetwork, pairs: &[SdPair]) -> Vec<(SdPair, Vec<Path>)> {
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        pairs
            .iter()
            .map(|&p| (p, cr.routes(net, p).to_vec()))
            .collect()
    }

    fn to_cands(owned: &[(SdPair, Vec<Path>)]) -> Vec<Candidates<'_>> {
        owned
            .iter()
            .map(|(pair, routes)| Candidates {
                pair: *pair,
                routes,
            })
            .collect()
    }

    fn profile_of<'a>(cands: &[Candidates<'a>], indices: &[usize]) -> Vec<(SdPair, &'a Path)> {
        cands
            .iter()
            .zip(indices)
            .map(|(c, &i)| (c.pair, &c.routes[i]))
            .collect()
    }

    #[test]
    fn disjoint_pairs_form_two_components() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let eval = ProfileEvaluator::new(&ctx, &cands, &AllocationMethod::default());
        assert_eq!(eval.component_count(), 2);
        assert!(eval.pair_is_isolated(0));
        assert!(eval.pair_is_isolated(1));
    }

    #[test]
    fn overlapping_pairs_share_a_component() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(1), NodeId(2)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let eval = ProfileEvaluator::new(&ctx, &cands, &AllocationMethod::default());
        assert_eq!(eval.component_count(), 2);
        assert!(!eval.pair_is_isolated(0));
        assert!(!eval.pair_is_isolated(1));
        assert!(eval.pair_is_isolated(2));
    }

    #[test]
    fn budget_couples_all_pairs() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::myopic(&net, &snap, 20);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let eval = ProfileEvaluator::new(&ctx, &cands, &AllocationMethod::Greedy);
        assert_eq!(eval.component_count(), 1);
    }

    #[test]
    fn matches_full_rebuild_everywhere() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        for (v, price) in [(800.0, 1.0), (100.0, 0.0), (2500.0, 25.0)] {
            let ctx = PerSlotContext::oscar(&net, &snap, v, price);
            let pairs = [
                SdPair::new(NodeId(0), NodeId(3)).unwrap(),
                SdPair::new(NodeId(1), NodeId(2)).unwrap(),
                SdPair::new(NodeId(4), NodeId(7)).unwrap(),
            ];
            let owned = owned_candidates(&net, &pairs);
            let cands = to_cands(&owned);
            for method in [
                AllocationMethod::default(),
                AllocationMethod::Greedy,
                AllocationMethod::Minimal,
            ] {
                let mut eval = ProfileEvaluator::new(&ctx, &cands, &method);
                // Every profile in the (small) product space.
                let radix: Vec<usize> = cands.iter().map(|c| c.routes.len()).collect();
                let mut indices = vec![0usize; cands.len()];
                'product_space: loop {
                    let profile = profile_of(&cands, &indices);
                    let reference = ctx.evaluate(&profile, &method);
                    let incremental = eval.evaluate(&indices);
                    match (&reference, &incremental) {
                        (None, None) => {}
                        (Some(r), Some(x)) => {
                            assert_eq!(r.objective.to_bits(), x.objective.to_bits());
                            assert_eq!(r.allocations, x.allocations);
                        }
                        _ => panic!("feasibility mismatch at {indices:?}"),
                    }
                    assert_eq!(
                        ctx.evaluate_objective(&profile, &method).map(f64::to_bits),
                        eval.evaluate_objective(&indices).map(f64::to_bits)
                    );
                    let mut pos = 0;
                    loop {
                        if pos == indices.len() {
                            // Odometer wrapped: this (ctx, method) pair is
                            // exhausted; move on to the next combination.
                            break 'product_space;
                        }
                        indices[pos] += 1;
                        if indices[pos] < radix[pos] {
                            break;
                        }
                        indices[pos] = 0;
                        pos += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn memo_hits_accumulate_on_revisits() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let mut eval = ProfileEvaluator::new(&ctx, &cands, &AllocationMethod::default());
        let a = eval.evaluate_objective(&[0, 0]).unwrap();
        let solved_once = eval.stats().components_solved;
        let b = eval.evaluate_objective(&[0, 0]).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(eval.stats().components_solved, solved_once);
        assert!(eval.stats().memo_hits >= 2);
        // Moving only pair 1 must not re-solve pair 0's component.
        eval.evaluate_objective(&[0, 1]);
        assert_eq!(eval.stats().components_solved, solved_once + 1);
    }

    #[test]
    fn pair_objective_matches_single_pair_profile() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let method = AllocationMethod::default();
        let mut eval = ProfileEvaluator::new(&ctx, &cands, &method);
        for (i, cand) in cands.iter().enumerate() {
            for r in 0..cand.routes.len() {
                let single = [(cand.pair, &cand.routes[r])];
                let reference = ctx.evaluate(&single, &method).map(|e| e.objective);
                let got = eval.evaluate_pair_objective(i, r);
                assert_eq!(reference.map(f64::to_bits), got.map(f64::to_bits));
                // Second call is served from the memo.
                assert_eq!(got, eval.evaluate_pair_objective(i, r));
            }
        }
    }

    #[test]
    fn infeasible_profile_is_none_and_cached() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::clamped(&net, vec![10; 8], vec![0; 8]);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [SdPair::new(NodeId(0), NodeId(3)).unwrap()];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let mut eval = ProfileEvaluator::new(&ctx, &cands, &AllocationMethod::default());
        assert!(eval.evaluate_objective(&[0]).is_none());
        let solved = eval.stats().components_solved;
        assert!(eval.evaluate(&[0]).is_none());
        assert_eq!(eval.stats().components_solved, solved);
    }

    #[test]
    fn empty_profile_is_zero() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let mut eval = ProfileEvaluator::new(&ctx, &[], &AllocationMethod::default());
        assert_eq!(eval.evaluate_objective(&[]), Some(0.0));
        let ev = eval.evaluate(&[]).unwrap();
        assert!(ev.allocations.is_empty());
        assert_eq!(ev.objective, 0.0);
    }
}
