//! Incremental, component-decomposed route-profile evaluation.
//!
//! Route selection (Algorithm 3 / Eq. 13) evaluates thousands of route
//! profiles per slot, and the naive path — [`PerSlotContext::evaluate`] —
//! rebuilds a fresh [`AllocationInstance`] and re-solves the *joint*
//! allocation problem for every proposal, even when only one SD pair's
//! route changed. [`ProfileEvaluator`] is the engine the selectors use
//! instead:
//!
//! * **Arena-backed instance assembly** — sub-instances are built by one
//!   [`RouteAssembler`] per evaluator (dense first-touch maps with epoch
//!   stamping, CSR constraint arrays written in place) and recycled after
//!   each solve, so steady-state component solves allocate no instance
//!   storage at all; repeat evaluations of a profile build no instances
//!   and solve nothing.
//! * **Connected-component decomposition** — pairs are partitioned by
//!   constraint coupling: two pairs share a component iff some candidate
//!   route of one shares a node with some candidate route of the other
//!   (the static closure of the coupling that any profile can exhibit;
//!   a per-slot budget constraint couples everything). Each component is
//!   an independent sub-instance, so a single-pair Gibbs/greedy move
//!   re-solves only the component that pair belongs to. This generalizes
//!   — and subsumes — the `parallel_isolated` special case of
//!   [`crate::route_selection::gibbs`]: an isolated pair is exactly a
//!   singleton component.
//! * **Evaluation memo** — per component, solved allocations are cached
//!   under the tuple of that component's route indices, so profiles
//!   revisited by Gibbs or sharing unchanged components with a previous
//!   proposal (every profile the exhaustive odometer visits) are free.
//! * **Dual warm starts** (opt-in) — when the allocation method is
//!   `RelaxAndRound` with [`RelaxedOptions::warm_start`] set, each
//!   component keeps the dual prices λ of its most recent fresh solve,
//!   keyed by constraint identity (node / edge / budget). A fresh route
//!   tuple re-solves starting from the neighboring profile's prices;
//!   [`qdn_solve::solve_relaxed_warm`] falls back to the cold λ = 0
//!   iteration — capped warm budget, incumbents carried over — whenever
//!   the warm run does not converge, so warm results satisfy the same
//!   feasibility and duality-gap guarantees as cold ones (they may
//!   differ from the cold answer *within* the solver tolerance, which is
//!   why the flag is off by default). The whole `RelaxedOptions` bundle,
//!   including the [`qdn_solve::DualMethod`] selection, threads through
//!   the store untouched: warm starts compose with either dual
//!   iteration.
//!
//! # Bit-identical results
//!
//! With warm starts disabled (the default), the evaluator returns
//! *exactly* the objective and allocations of the full-rebuild path, bit
//! for bit. Three invariants make this hold:
//!
//! 1. [`PerSlotContext::build_instance`] and the evaluator stream through
//!    the same [`RouteAssembler`] layout (variables in profile order,
//!    constraints in first-touch order), so the sub-instance of a
//!    component equals the joint instance restricted to it;
//! 2. `qdn_solve::solve_relaxed` itself decomposes by constraint
//!    coupling, so solving a component stand-alone or inside the joint
//!    instance follows the same floating-point trajectory (the greedy
//!    allocator is interleaving-invariant across components by
//!    construction, and `Minimal` trivially so);
//! 3. the final objective is re-accumulated over the gathered joint
//!    allocation in variable order with the same
//!    [`qdn_solve::ln_success`] terms [`AllocationInstance::objective_int`]
//!    uses, rather than by summing cached per-component objectives (which
//!    would associate the additions differently).
//!
//! The property test `incremental_matches_full_rebuild` in
//! `crates/core/tests/proptests.rs` enforces this equivalence on random
//! topologies and profiles for every allocation method; the warm-start
//! path is covered by `warm_start_agrees_within_tolerance`.
//!
//! # Parallelism (`parallel` feature)
//!
//! With the `parallel` cargo feature, unsolved components of one
//! evaluation are solved on `std::thread::scope` threads (rayon is not
//! available in this build environment; scoped threads provide the same
//! fork-join shape). Results are inserted into the memo after the join,
//! so the outcome is bit-identical to the serial path; when a component
//! reports infeasibility the remaining workers stop early (matching the
//! serial path's short-circuit). Multi-chain Gibbs restarts parallelize
//! the same way — see [`crate::route_selection::gibbs::sample_restarts`].

use std::collections::HashMap;

use qdn_graph::{EdgeId, NodeId, Path};
use qdn_net::SdPair;
use qdn_physics::swap::SwapModel;
use qdn_solve::relaxed::RelaxedOptions;
use qdn_solve::rounding::round_down_and_fill;
use qdn_solve::{ln_success, solve_relaxed_warm, AllocationInstance, RouteAssembler};

use crate::allocation::AllocationMethod;
use crate::problem::{assemble_instance, PerSlotContext, ProfileEvaluation};
use crate::route_selection::Candidates;

/// One candidate route, pre-resolved against the network.
#[derive(Debug, Clone)]
struct RouteData {
    /// Per edge: identity, endpoints, and channel success probability.
    edges: Vec<EdgeVar>,
    /// Number of hops (= variables this route contributes).
    hops: usize,
    /// Swap count of the route (`hops − 1` surviving swaps).
    swaps: u64,
}

#[derive(Debug, Clone, Copy)]
struct EdgeVar {
    edge: EdgeId,
    u: NodeId,
    v: NodeId,
    p: f64,
}

/// Reusable dense buffers for sub-instance construction.
#[derive(Debug)]
struct Scratch {
    /// Arena-backed instance assembler shared with
    /// [`PerSlotContext::build_instance`]'s layout.
    asm: RouteAssembler,
    /// All components' keys for the profile under evaluation,
    /// concatenated at [`ProfileEvaluator::comp_key_off`] offsets —
    /// resolved once by `ensure_components`, reused by
    /// `accumulate_objective` (ROADMAP item f).
    joint_key: Vec<u32>,
    /// Per-component read cursors for the gather pass.
    cursors: Vec<usize>,
    /// Constraint keys of the instance being built (warm-start path).
    con_keys: Vec<u32>,
    /// Warm λ gathered from a component's store (warm-start path).
    warm: Vec<f64>,
}

impl Scratch {
    fn sized(nodes: usize, edges: usize, components: usize) -> Self {
        Scratch {
            asm: RouteAssembler::sized(nodes, edges),
            joint_key: Vec::new(),
            cursors: vec![0; components],
            con_keys: Vec::new(),
            warm: Vec::new(),
        }
    }
}

/// Per-component memo: route-index tuple → flat allocation
/// (`None` = that combination is infeasible).
type Memo = HashMap<Box<[u32]>, Option<Box<[u32]>>>;

/// One component's stored dual prices, dense over constraint keys
/// (node / edge / budget identity — see [`RouteAssembler`]).
#[derive(Debug, Clone)]
struct ComponentDual {
    lambda: Vec<f64>,
    valid: bool,
}

impl ComponentDual {
    fn absorb(&mut self, keys: &[u32], lambda: &[f64]) {
        debug_assert_eq!(keys.len(), lambda.len());
        for (&key, &l) in keys.iter().zip(lambda) {
            self.lambda[key as usize] = l;
        }
        self.valid = true;
    }
}

/// The outcome of one fresh component solve.
struct ComponentSolve {
    /// The allocation (`None` = infeasible route combination).
    alloc: Option<Box<[u32]>>,
    /// `(constraint keys, final λ)` when a warm-capable solve ran.
    dual: Option<(Vec<u32>, Vec<f64>)>,
    /// Whether the dual iteration was actually seeded from stored λ.
    warm_started: bool,
}

/// Counters describing how much work the evaluator actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Profile evaluations served (objective-only or full).
    pub evaluations: u64,
    /// Component lookups answered from the memo.
    pub memo_hits: u64,
    /// Component sub-instances built and solved.
    pub components_solved: u64,
    /// Component solves seeded from a stored neighboring-profile λ.
    pub warm_started: u64,
}

/// The incremental profile-evaluation engine. See the module docs.
#[derive(Debug)]
pub struct ProfileEvaluator<'a> {
    ctx: PerSlotContext<'a>,
    method: AllocationMethod,
    pairs: Vec<SdPair>,
    /// `routes[i][r]` describes candidate `r` of pair `i`.
    routes: Vec<Vec<RouteData>>,
    /// Static partition: `comp_of_pair[i]` and the ascending pair lists.
    comp_of_pair: Vec<usize>,
    comp_pairs: Vec<Vec<usize>>,
    /// `comp_key_off[c]..comp_key_off[c+1]` slices component `c`'s route
    /// indices out of `Scratch::joint_key`.
    comp_key_off: Vec<usize>,
    /// `ln(swap_success)`; only meaningful when `lossy_swap`.
    ln_q: f64,
    lossy_swap: bool,
    budget: Option<u32>,
    scratch: Scratch,
    memos: Vec<Memo>,
    /// Per-component dual warm-start store (empty unless the method is
    /// `RelaxAndRound` with `warm_start` enabled).
    duals: Vec<ComponentDual>,
    warm_opts: Option<RelaxedOptions>,
    /// `pair_memo[i][r]`: cached single-pair objective (outer `None` =
    /// not yet computed; inner `None` = infeasible).
    pair_memo: Vec<Vec<Option<Option<f64>>>>,
    stats: EvalStats,
}

impl<'a> ProfileEvaluator<'a> {
    /// Builds the evaluator for one slot: resolves candidate routes
    /// against the network, partitions pairs into coupling components,
    /// and sizes the scratch buffers.
    pub fn new(
        ctx: &PerSlotContext<'a>,
        candidates: &[Candidates<'_>],
        method: &AllocationMethod,
    ) -> Self {
        let k = candidates.len();
        let pairs: Vec<SdPair> = candidates.iter().map(|c| c.pair).collect();
        let routes: Vec<Vec<RouteData>> = candidates
            .iter()
            .map(|c| c.routes.iter().map(|r| resolve_route(ctx, r)).collect())
            .collect();

        // Static partition by candidate-route node sharing (edge sharing
        // implies node sharing). A slot budget couples everything.
        let mut dsu = qdn_solve::Dsu::new(k);
        if ctx.slot_budget.is_some() {
            for i in 1..k {
                dsu.union(0, i);
            }
        } else {
            let mut node_owner = vec![usize::MAX; ctx.network.node_count()];
            for (i, cand) in routes.iter().enumerate() {
                for route in cand {
                    for ev in &route.edges {
                        for node in [ev.u, ev.v] {
                            let owner = node_owner[node.index()];
                            if owner == usize::MAX {
                                node_owner[node.index()] = i;
                            } else if owner != i {
                                dsu.union(owner, i);
                            }
                        }
                    }
                }
            }
        }
        let mut comp_of_pair = vec![usize::MAX; k];
        let mut comp_pairs: Vec<Vec<usize>> = Vec::new();
        for i in 0..k {
            let root = dsu.find(i);
            let comp = if comp_of_pair[root] == usize::MAX {
                comp_pairs.push(Vec::new());
                let id = comp_pairs.len() - 1;
                comp_of_pair[root] = id;
                id
            } else {
                comp_of_pair[root]
            };
            comp_of_pair[i] = comp;
            comp_pairs[comp].push(i);
        }
        let mut comp_key_off = Vec::with_capacity(comp_pairs.len() + 1);
        comp_key_off.push(0);
        for pairs in &comp_pairs {
            comp_key_off.push(comp_key_off.last().unwrap() + pairs.len());
        }

        let q = ctx.network.swap().success();
        let scratch = Scratch::sized(
            ctx.network.node_count(),
            ctx.network.edge_count(),
            comp_pairs.len(),
        );
        let memos = vec![Memo::new(); comp_pairs.len()];
        let warm_opts = match method {
            AllocationMethod::RelaxAndRound(o) if o.warm_start => Some(*o),
            _ => None,
        };
        let duals = if warm_opts.is_some() {
            let key_space = ctx.network.node_count() + ctx.network.edge_count() + 1;
            vec![
                ComponentDual {
                    lambda: vec![0.0; key_space],
                    valid: false,
                };
                comp_pairs.len()
            ]
        } else {
            Vec::new()
        };
        let pair_memo = routes.iter().map(|c| vec![None; c.len()]).collect();
        ProfileEvaluator {
            ctx: *ctx,
            method: *method,
            pairs,
            routes,
            comp_of_pair,
            comp_pairs,
            comp_key_off,
            ln_q: if q < 1.0 { q.ln() } else { 0.0 },
            lossy_swap: q < 1.0,
            budget: ctx.slot_budget.map(|b| b.min(u32::MAX as u64) as u32),
            scratch,
            memos,
            duals,
            warm_opts,
            pair_memo,
            stats: EvalStats::default(),
        }
    }

    /// Number of SD pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of coupling components in the static partition.
    pub fn component_count(&self) -> usize {
        self.comp_pairs.len()
    }

    /// Whether pair `i` is alone in its component (the generalization of
    /// the Gibbs `parallel_isolated` notion).
    pub fn pair_is_isolated(&self, i: usize) -> bool {
        self.comp_pairs[self.comp_of_pair[i]].len() == 1
    }

    /// Whether fresh `RelaxAndRound` solves are being warm-started from
    /// stored dual prices.
    pub fn warm_start_enabled(&self) -> bool {
        self.warm_opts.is_some()
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Evaluates only the objective of the profile `indices`, re-solving
    /// just the components whose route-index tuples have not been seen
    /// before. Returns `None` when the profile is infeasible.
    ///
    /// Bit-identical to
    /// [`PerSlotContext::evaluate_objective`] on the equivalent profile.
    pub fn evaluate_objective(&mut self, indices: &[usize]) -> Option<f64> {
        self.stats.evaluations += 1;
        if self.pairs.is_empty() {
            return Some(0.0);
        }
        self.ensure_components(indices)?;
        Some(self.accumulate_objective(indices, None))
    }

    /// Fully evaluates the profile `indices`, returning per-route
    /// allocations plus the objective. Returns `None` when infeasible.
    ///
    /// Bit-identical to [`PerSlotContext::evaluate`] on the equivalent
    /// profile.
    pub fn evaluate(&mut self, indices: &[usize]) -> Option<ProfileEvaluation> {
        self.stats.evaluations += 1;
        if self.pairs.is_empty() {
            return Some(ProfileEvaluation {
                allocations: Vec::new(),
                objective: 0.0,
            });
        }
        self.ensure_components(indices)?;
        let mut allocations: Vec<Vec<u32>> = Vec::with_capacity(self.pairs.len());
        let objective = self.accumulate_objective(indices, Some(&mut allocations));
        Some(ProfileEvaluation {
            allocations,
            objective,
        })
    }

    /// Objective of pair `i` served alone with candidate `route_idx`
    /// (memoized). Matches the seed's "local evaluation" used for
    /// isolated pairs in Gibbs: the single-pair profile evaluated under
    /// this slot's context, including any slot budget.
    pub fn evaluate_pair_objective(&mut self, i: usize, route_idx: usize) -> Option<f64> {
        if let Some(cached) = self.pair_memo[i][route_idx] {
            return cached;
        }
        let route = &self.routes[i][route_idx];
        let instance = build_instance_for(
            &mut self.scratch,
            &self.ctx,
            self.budget,
            std::iter::once(route),
            false,
        );
        let objective = instance.ok().and_then(|inst| {
            let flat = self.method.allocate(&inst);
            let result = flat.map(|flat| {
                let swap_term = if self.lossy_swap {
                    route.swaps as f64 * self.ln_q
                } else {
                    0.0
                };
                inst.objective_int(&flat) + self.ctx.v_weight * swap_term
            });
            self.scratch.asm.recycle(inst);
            result
        });
        self.pair_memo[i][route_idx] = Some(objective);
        objective
    }

    /// Ensures every component's allocation for `indices` is in the memo
    /// and resolves all component keys into `Scratch::joint_key` (sliced
    /// by [`ProfileEvaluator::comp_key_off`]) so the accumulation pass
    /// does not rebuild them; `None` if any component is infeasible.
    fn ensure_components(&mut self, indices: &[usize]) -> Option<()> {
        debug_assert_eq!(indices.len(), self.pairs.len());
        // Resolve every component's key once, up front.
        self.scratch.joint_key.clear();
        for comp_pairs in &self.comp_pairs {
            self.scratch
                .joint_key
                .extend(comp_pairs.iter().map(|&i| indices[i] as u32));
        }

        // Components the parallel pre-pass solved this call (ascending);
        // they must not count as memo hits below.
        #[cfg(feature = "parallel")]
        let (fresh, parallel_infeasible) = self.solve_missing_parallel(indices);
        #[cfg(feature = "parallel")]
        if parallel_infeasible {
            return None;
        }
        #[cfg(not(feature = "parallel"))]
        let fresh: Vec<usize> = Vec::new();

        for comp in 0..self.comp_pairs.len() {
            let key = &self.scratch.joint_key[self.comp_key_off[comp]..self.comp_key_off[comp + 1]];
            if let Some(entry) = self.memos[comp].get(key) {
                if fresh.binary_search(&comp).is_err() {
                    self.stats.memo_hits += 1;
                }
                if entry.is_none() {
                    return None;
                }
                continue;
            }
            self.stats.components_solved += 1;
            let warm = self.warm_opts.as_ref().map(|o| (o, &self.duals[comp]));
            let solve = solve_component(
                &mut self.scratch,
                &self.ctx,
                self.budget,
                &self.method,
                &self.routes,
                &self.comp_pairs[comp],
                indices,
                warm,
            );
            if solve.warm_started {
                self.stats.warm_started += 1;
            }
            if let Some((keys, lambda)) = &solve.dual {
                self.duals[comp].absorb(keys, lambda);
            }
            let feasible = solve.alloc.is_some();
            let key = self.scratch.joint_key[self.comp_key_off[comp]..self.comp_key_off[comp + 1]]
                .to_vec()
                .into_boxed_slice();
            self.memos[comp].insert(key, solve.alloc);
            if !feasible {
                return None;
            }
        }
        Some(())
    }

    /// Pre-solves all missing components of `indices` on scoped threads
    /// and returns their ids (ascending) plus whether any of them turned
    /// out infeasible. Bit-identical to the serial path: each
    /// component's solve is independent and results are inserted in
    /// component order. Components are chunked over a bounded worker
    /// count with one scratch per worker, so the cost per call is a few
    /// spawns — not one spawn and four network-sized allocations per
    /// component. An infeasibility observed by any worker stops the
    /// remaining solves early (ROADMAP item g): skipped components are
    /// simply not memoized, matching the serial path's short-circuit.
    #[cfg(feature = "parallel")]
    fn solve_missing_parallel(&mut self, indices: &[usize]) -> (Vec<usize>, bool) {
        use std::sync::atomic::{AtomicBool, Ordering};

        let mut missing: Vec<usize> = Vec::new();
        for comp in 0..self.comp_pairs.len() {
            let key = &self.scratch.joint_key[self.comp_key_off[comp]..self.comp_key_off[comp + 1]];
            if !self.memos[comp].contains_key(key) {
                missing.push(comp);
            }
        }
        if missing.len() < 2 {
            return (Vec::new(), false);
        }
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(missing.len());
        let chunk = missing.len().div_ceil(workers);
        let ctx = self.ctx;
        let budget = self.budget;
        let method = self.method;
        let warm_opts = self.warm_opts;
        let routes = &self.routes;
        let comp_pairs = &self.comp_pairs;
        let duals = &self.duals;
        let infeasible = AtomicBool::new(false);
        let results: Vec<Vec<(usize, ComponentSolve)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = missing
                .chunks(chunk)
                .map(|comps| {
                    let infeasible = &infeasible;
                    scope.spawn(move || {
                        let mut scratch =
                            Scratch::sized(ctx.network.node_count(), ctx.network.edge_count(), 0);
                        let mut out = Vec::with_capacity(comps.len());
                        for &comp in comps {
                            if infeasible.load(Ordering::Relaxed) {
                                break;
                            }
                            let warm = warm_opts.as_ref().map(|o| (o, &duals[comp]));
                            let solve = solve_component(
                                &mut scratch,
                                &ctx,
                                budget,
                                &method,
                                routes,
                                &comp_pairs[comp],
                                indices,
                                warm,
                            );
                            if solve.alloc.is_none() {
                                infeasible.store(true, Ordering::Relaxed);
                            }
                            out.push((comp, solve));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let any_infeasible = infeasible.into_inner();
        let mut fresh = Vec::new();
        for (comp, solve) in results.into_iter().flatten() {
            let key: Vec<u32> = self.comp_pairs[comp]
                .iter()
                .map(|&i| indices[i] as u32)
                .collect();
            self.stats.components_solved += 1;
            if solve.warm_started {
                self.stats.warm_started += 1;
            }
            if let Some((keys, lambda)) = &solve.dual {
                self.duals[comp].absorb(keys, lambda);
            }
            self.memos[comp].insert(key.into_boxed_slice(), solve.alloc);
            fresh.push(comp);
        }
        fresh.sort_unstable();
        (fresh, any_infeasible)
    }

    /// Gathers the memoized component allocations in joint variable order
    /// and accumulates the objective exactly as
    /// [`AllocationInstance::objective_int`] would on the joint instance
    /// (same terms, same order), plus the profile's swap term. Optionally
    /// copies out per-route allocations.
    ///
    /// All referenced components must already be memoized feasible, and
    /// `Scratch::joint_key` must hold the profile's resolved keys (both
    /// established by `ensure_components`).
    fn accumulate_objective(
        &mut self,
        indices: &[usize],
        mut allocations: Option<&mut Vec<Vec<u32>>>,
    ) -> f64 {
        self.scratch.cursors.iter_mut().for_each(|c| *c = 0);
        // One memo lookup per component over the pre-resolved keys,
        // hoisted out of the pair loop — rebuilding the key per *pair*
        // would make the memo-hit path quadratic in component size.
        let flats: Vec<&[u32]> = (0..self.comp_pairs.len())
            .map(|comp| {
                let key =
                    &self.scratch.joint_key[self.comp_key_off[comp]..self.comp_key_off[comp + 1]];
                self.memos[comp]
                    .get(key)
                    .expect("component memoized by ensure_components")
                    .as_deref()
                    .expect("component feasible by ensure_components")
            })
            .collect();
        let mut objective = 0.0;
        let mut total_swaps = 0u64;
        for (i, &route_idx) in indices.iter().enumerate() {
            let comp = self.comp_of_pair[i];
            let flat = flats[comp];
            let route = &self.routes[i][route_idx];
            let seg = &flat[self.scratch.cursors[comp]..self.scratch.cursors[comp] + route.hops];
            self.scratch.cursors[comp] += route.hops;
            for (ev, &n) in route.edges.iter().zip(seg) {
                objective +=
                    self.ctx.v_weight * ln_success(ev.p, n as f64) - self.ctx.unit_price * n as f64;
            }
            total_swaps += route.swaps;
            if let Some(out) = allocations.as_deref_mut() {
                out.push(seg.to_vec());
            }
        }
        if self.lossy_swap {
            objective += self.ctx.v_weight * (total_swaps as f64 * self.ln_q);
        }
        objective
    }
}

/// Resolves one candidate [`Path`] into per-edge data.
fn resolve_route(ctx: &PerSlotContext<'_>, route: &Path) -> RouteData {
    let edges: Vec<EdgeVar> = route
        .edges()
        .iter()
        .map(|&edge| {
            let (u, v) = ctx.network.graph().endpoints(edge);
            EdgeVar {
                edge,
                u,
                v,
                p: ctx.network.link(edge).channel_success(),
            }
        })
        .collect();
    RouteData {
        hops: edges.len(),
        swaps: SwapModel::swaps_for_hops(route.hops()) as u64,
        edges,
    }
}

/// Builds the [`AllocationInstance`] for the given routes via the shared
/// [`assemble_instance`] layout routine — the same code path
/// [`PerSlotContext::build_instance`] uses, so a component's sub-instance
/// is structurally the joint instance restricted to it. With
/// `want_keys`, the constraint keys land in `Scratch::con_keys`.
fn build_instance_for<'r>(
    scratch: &mut Scratch,
    ctx: &PerSlotContext<'_>,
    budget: Option<u32>,
    routes: impl Iterator<Item = &'r RouteData>,
    want_keys: bool,
) -> Result<AllocationInstance, qdn_solve::SolveError> {
    let edges = routes.flat_map(|route| route.edges.iter().map(|ev| (ev.edge, ev.u, ev.v, ev.p)));
    let keys_out = want_keys.then_some(&mut scratch.con_keys);
    assemble_instance(
        &mut scratch.asm,
        ctx.snapshot,
        edges,
        budget,
        ctx.v_weight,
        ctx.unit_price,
        keys_out,
    )
}

/// Builds and solves one component's sub-instance, recycling the
/// instance storage afterwards. `alloc == None` means the route
/// combination is infeasible. With `warm`, a `RelaxAndRound` solve is
/// seeded from the component's stored λ (when valid) and the final
/// prices are returned for the caller to absorb into the store.
#[allow(clippy::too_many_arguments)]
fn solve_component(
    scratch: &mut Scratch,
    ctx: &PerSlotContext<'_>,
    budget: Option<u32>,
    method: &AllocationMethod,
    routes: &[Vec<RouteData>],
    comp_pairs: &[usize],
    indices: &[usize],
    warm: Option<(&RelaxedOptions, &ComponentDual)>,
) -> ComponentSolve {
    let route_iter = comp_pairs.iter().map(|&i| &routes[i][indices[i]]);
    if let Some((options, dual)) = warm {
        let Ok(instance) = build_instance_for(scratch, ctx, budget, route_iter, true) else {
            return ComponentSolve {
                alloc: None,
                dual: None,
                warm_started: false,
            };
        };
        if dual.valid {
            let Scratch { warm, con_keys, .. } = &mut *scratch;
            warm.clear();
            warm.extend(con_keys.iter().map(|&k| dual.lambda[k as usize]));
        }
        let warm_lambda = dual.valid.then_some(scratch.warm.as_slice());
        // Count only seeds the solver actually engages: an all-zero
        // gathered λ makes `solve_relaxed_warm` run the plain cold path.
        let warm_started = warm_lambda.is_some_and(|w| w.iter().any(|&l| l > 0.0));
        let solution =
            solve_relaxed_warm(&instance, options, warm_lambda).expect("validated instance solves");
        let alloc = round_down_and_fill(&instance, &solution.x)
            .ok()
            .map(Vec::into_boxed_slice);
        let keys = scratch.con_keys.clone();
        scratch.asm.recycle(instance);
        ComponentSolve {
            alloc,
            dual: Some((keys, solution.lambda)),
            warm_started,
        }
    } else {
        let alloc = match build_instance_for(scratch, ctx, budget, route_iter, false) {
            Ok(instance) => {
                let flat = method.allocate(&instance);
                scratch.asm.recycle(instance);
                flat.map(Vec::into_boxed_slice)
            }
            Err(_) => None,
        };
        ComponentSolve {
            alloc,
            dual: None,
            warm_started: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route_selection::Candidates;
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_net::routes::{CandidateRoutes, RouteLimits};
    use qdn_net::{CapacitySnapshot, QdnNetwork};
    use qdn_physics::link::LinkModel;

    /// Two disjoint diamonds plus one extra pair inside the first.
    fn two_diamonds() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..8).map(|_| b.add_node(10)).collect();
        let good = LinkModel::new(0.85).unwrap();
        let bad = LinkModel::new(0.25).unwrap();
        b.add_edge(n[0], n[1], 5, good).unwrap();
        b.add_edge(n[1], n[3], 5, good).unwrap();
        b.add_edge(n[0], n[2], 5, bad).unwrap();
        b.add_edge(n[2], n[3], 5, bad).unwrap();
        b.add_edge(n[4], n[5], 5, good).unwrap();
        b.add_edge(n[5], n[7], 5, good).unwrap();
        b.add_edge(n[4], n[6], 5, bad).unwrap();
        b.add_edge(n[6], n[7], 5, bad).unwrap();
        b.build()
    }

    fn owned_candidates(net: &QdnNetwork, pairs: &[SdPair]) -> Vec<(SdPair, Vec<Path>)> {
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        pairs
            .iter()
            .map(|&p| (p, cr.routes(net, p).to_vec()))
            .collect()
    }

    fn to_cands(owned: &[(SdPair, Vec<Path>)]) -> Vec<Candidates<'_>> {
        owned
            .iter()
            .map(|(pair, routes)| Candidates {
                pair: *pair,
                routes,
            })
            .collect()
    }

    fn profile_of<'a>(cands: &[Candidates<'a>], indices: &[usize]) -> Vec<(SdPair, &'a Path)> {
        cands
            .iter()
            .zip(indices)
            .map(|(c, &i)| (c.pair, &c.routes[i]))
            .collect()
    }

    #[test]
    fn disjoint_pairs_form_two_components() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let eval = ProfileEvaluator::new(&ctx, &cands, &AllocationMethod::default());
        assert_eq!(eval.component_count(), 2);
        assert!(eval.pair_is_isolated(0));
        assert!(eval.pair_is_isolated(1));
        assert!(!eval.warm_start_enabled());
    }

    #[test]
    fn overlapping_pairs_share_a_component() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(1), NodeId(2)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let eval = ProfileEvaluator::new(&ctx, &cands, &AllocationMethod::default());
        assert_eq!(eval.component_count(), 2);
        assert!(!eval.pair_is_isolated(0));
        assert!(!eval.pair_is_isolated(1));
        assert!(eval.pair_is_isolated(2));
    }

    #[test]
    fn budget_couples_all_pairs() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::myopic(&net, &snap, 20);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let eval = ProfileEvaluator::new(&ctx, &cands, &AllocationMethod::Greedy);
        assert_eq!(eval.component_count(), 1);
    }

    #[test]
    fn matches_full_rebuild_everywhere() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        for (v, price) in [(800.0, 1.0), (100.0, 0.0), (2500.0, 25.0)] {
            let ctx = PerSlotContext::oscar(&net, &snap, v, price);
            let pairs = [
                SdPair::new(NodeId(0), NodeId(3)).unwrap(),
                SdPair::new(NodeId(1), NodeId(2)).unwrap(),
                SdPair::new(NodeId(4), NodeId(7)).unwrap(),
            ];
            let owned = owned_candidates(&net, &pairs);
            let cands = to_cands(&owned);
            for method in [
                AllocationMethod::RelaxAndRound(RelaxedOptions {
                    method: qdn_solve::DualMethod::Accelerated,
                    ..RelaxedOptions::default()
                }),
                AllocationMethod::RelaxAndRound(RelaxedOptions {
                    method: qdn_solve::DualMethod::Subgradient,
                    ..RelaxedOptions::default()
                }),
                AllocationMethod::Greedy,
                AllocationMethod::Minimal,
            ] {
                let mut eval = ProfileEvaluator::new(&ctx, &cands, &method);
                // Every profile in the (small) product space.
                let radix: Vec<usize> = cands.iter().map(|c| c.routes.len()).collect();
                let mut indices = vec![0usize; cands.len()];
                'product_space: loop {
                    let profile = profile_of(&cands, &indices);
                    let reference = ctx.evaluate(&profile, &method);
                    let incremental = eval.evaluate(&indices);
                    match (&reference, &incremental) {
                        (None, None) => {}
                        (Some(r), Some(x)) => {
                            assert_eq!(r.objective.to_bits(), x.objective.to_bits());
                            assert_eq!(r.allocations, x.allocations);
                        }
                        _ => panic!("feasibility mismatch at {indices:?}"),
                    }
                    assert_eq!(
                        ctx.evaluate_objective(&profile, &method).map(f64::to_bits),
                        eval.evaluate_objective(&indices).map(f64::to_bits)
                    );
                    let mut pos = 0;
                    loop {
                        if pos == indices.len() {
                            // Odometer wrapped: this (ctx, method) pair is
                            // exhausted; move on to the next combination.
                            break 'product_space;
                        }
                        indices[pos] += 1;
                        if indices[pos] < radix[pos] {
                            break;
                        }
                        indices[pos] = 0;
                        pos += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn memo_hits_accumulate_on_revisits() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let mut eval = ProfileEvaluator::new(&ctx, &cands, &AllocationMethod::default());
        let a = eval.evaluate_objective(&[0, 0]).unwrap();
        let solved_once = eval.stats().components_solved;
        let b = eval.evaluate_objective(&[0, 0]).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(eval.stats().components_solved, solved_once);
        assert!(eval.stats().memo_hits >= 2);
        // Moving only pair 1 must not re-solve pair 0's component.
        eval.evaluate_objective(&[0, 1]);
        assert_eq!(eval.stats().components_solved, solved_once + 1);
    }

    #[test]
    fn pair_objective_matches_single_pair_profile() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let method = AllocationMethod::default();
        let mut eval = ProfileEvaluator::new(&ctx, &cands, &method);
        for (i, cand) in cands.iter().enumerate() {
            for r in 0..cand.routes.len() {
                let single = [(cand.pair, &cand.routes[r])];
                let reference = ctx.evaluate(&single, &method).map(|e| e.objective);
                let got = eval.evaluate_pair_objective(i, r);
                assert_eq!(reference.map(f64::to_bits), got.map(f64::to_bits));
                // Second call is served from the memo.
                assert_eq!(got, eval.evaluate_pair_objective(i, r));
            }
        }
    }

    #[test]
    fn infeasible_profile_is_none_and_cached() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::clamped(&net, vec![10; 8], vec![0; 8]);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [SdPair::new(NodeId(0), NodeId(3)).unwrap()];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let mut eval = ProfileEvaluator::new(&ctx, &cands, &AllocationMethod::default());
        assert!(eval.evaluate_objective(&[0]).is_none());
        let solved = eval.stats().components_solved;
        assert!(eval.evaluate(&[0]).is_none());
        assert_eq!(eval.stats().components_solved, solved);
    }

    #[test]
    fn empty_profile_is_zero() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let mut eval = ProfileEvaluator::new(&ctx, &[], &AllocationMethod::default());
        assert_eq!(eval.evaluate_objective(&[]), Some(0.0));
        let ev = eval.evaluate(&[]).unwrap();
        assert!(ev.allocations.is_empty());
        assert_eq!(ev.objective, 0.0);
    }

    #[test]
    fn warm_start_reuses_neighbor_lambda_and_agrees() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(1), NodeId(2)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        for dual_method in [
            qdn_solve::DualMethod::Accelerated,
            qdn_solve::DualMethod::Subgradient,
        ] {
            let warm_method = AllocationMethod::RelaxAndRound(RelaxedOptions {
                warm_start: true,
                method: dual_method,
                ..RelaxedOptions::default()
            });
            let cold_method = AllocationMethod::RelaxAndRound(RelaxedOptions {
                method: dual_method,
                ..RelaxedOptions::default()
            });
            let mut warm_eval = ProfileEvaluator::new(&ctx, &cands, &warm_method);
            let mut cold_eval = ProfileEvaluator::new(&ctx, &cands, &cold_method);
            assert!(warm_eval.warm_start_enabled());

            // First evaluation is cold everywhere (no stored λ yet).
            let w0 = warm_eval.evaluate_objective(&[0, 0]).unwrap();
            let c0 = cold_eval.evaluate_objective(&[0, 0]).unwrap();
            assert_eq!(w0.to_bits(), c0.to_bits(), "no λ stored: must match cold");
            assert_eq!(warm_eval.stats().warm_started, 0);

            // Fresh tuples now warm-start from the neighboring profile's λ
            // and agree with the cold path within the solver tolerance.
            let radix: Vec<usize> = cands.iter().map(|c| c.routes.len()).collect();
            let mut checked = 0;
            for r0 in 0..radix[0] {
                for r1 in 0..radix[1] {
                    let warm = warm_eval.evaluate_objective(&[r0, r1]);
                    let cold = cold_eval.evaluate_objective(&[r0, r1]);
                    match (warm, cold) {
                        (None, None) => {}
                        (Some(w), Some(c)) => {
                            let tol = 0.05 * (1.0 + c.abs());
                            assert!(
                                (w - c).abs() <= tol,
                                "[{r0},{r1}]: warm {w} vs cold {c} (tol {tol})"
                            );
                            checked += 1;
                        }
                        (w, c) => panic!("feasibility diverged at [{r0},{r1}]: {w:?} vs {c:?}"),
                    }
                }
            }
            assert!(checked >= 2, "route space too small to exercise warm path");
            assert!(
                warm_eval.stats().warm_started > 0,
                "warm starts never engaged ({dual_method:?}): {:?}",
                warm_eval.stats()
            );
        }
    }
}
