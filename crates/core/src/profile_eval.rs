//! Incremental, component-decomposed route-profile evaluation with a
//! two-level coupling partition and slot-spanning selection sessions.
//!
//! Route selection (Algorithm 3 / Eq. 13) evaluates thousands of route
//! profiles per slot, and the naive path — [`PerSlotContext::evaluate`] —
//! rebuilds a fresh [`AllocationInstance`] and re-solves the *joint*
//! allocation problem for every proposal, even when only one SD pair's
//! route changed. [`ProfileEvaluator`] is the engine the selectors use
//! instead:
//!
//! * **Arena-backed instance assembly** — sub-instances are built by one
//!   [`RouteAssembler`] per evaluator (dense first-touch maps with epoch
//!   stamping, CSR constraint arrays written in place) and recycled after
//!   each solve, so steady-state component solves allocate no instance
//!   storage at all; repeat evaluations of a profile build no instances
//!   and solve nothing.
//! * **Two-level coupling partition** — see below.
//! * **Evaluation memos** — one per partition level; see below.
//! * **Dual warm starts** (opt-in) — when the allocation method is
//!   `RelaxAndRound` with [`RelaxedOptions::warm_start`] set, each
//!   static component keeps the dual prices λ of its most recent fresh
//!   solves, dense over constraint identity (node / edge / budget). A
//!   fresh route tuple re-solves starting from the neighboring profile's
//!   prices; [`qdn_solve::solve_relaxed_warm`] falls back to the cold
//!   λ = 0 iteration — capped warm budget, incumbents carried over —
//!   whenever the warm run does not converge, so warm results satisfy
//!   the same feasibility and duality-gap guarantees as cold ones (they
//!   may differ from the cold answer *within* the solver tolerance,
//!   which is why the flag is off by default).
//!
//! # The two-level partition
//!
//! **Static envelope.** Pairs are first partitioned by the *candidate*
//! coupling closure: two pairs share a static component iff some
//! candidate route of one shares a node with some candidate route of the
//! other (a per-slot budget constraint couples everything). This is the
//! coarsest partition that is valid for *every* profile, so everything
//! below it can never leak coupling across static components.
//!
//! **Dynamic refinement** ([`PartitionMode::Dynamic`], the default).
//! Within each static component, the *currently selected* routes of a
//! profile usually touch far fewer shared nodes than the candidate
//! union: at paper scale (20-node Waxman, 10 pairs) the static closure
//! collapses into one 10-pair component, while a concrete profile
//! typically splits into several 2–4-pair groups. The evaluator
//! therefore re-partitions each static component by the node sharing of
//! the profile's *selected* routes (the budget rule is inherited: a slot
//! budget keeps everything in one group) and solves each **dynamic
//! group** as its own sub-instance. The sub-partition is refreshed
//! per component exactly when that component's route tuple changes — a
//! single-pair Gibbs/greedy move refreshes one component and re-solves
//! only the groups whose membership-and-routes key is new, which is the
//! mover's group(s), not the whole static component. A move can both
//! *split* the mover out of its old group and *merge* it into the groups
//! its new route touches; [`EvalStats::component_merges`] /
//! [`EvalStats::component_splits`] count exactly those transitions
//! (relative to the last profile whose partition was computed).
//!
//! # The two memo levels and λ re-keying
//!
//! * **Level 1 (static tuple memo)** — per static component, the
//!   *assembled* allocation is cached under the tuple of that
//!   component's route indices, exactly as in the single-level engine.
//!   Profiles revisited by Gibbs, and unchanged components of any
//!   proposal, are answered here without touching the partition at all —
//!   the memoized re-evaluation path is byte-for-byte the old one.
//! * **Level 2 (dynamic group memo)** — per static component, each
//!   dynamic group's solve is cached under the group's sub-key: the
//!   interleaved `(member position, route index)` pairs of its members.
//!   The sub-key identifies both the member set and its routes, so a
//!   group outlives any particular partition: after a merge or split the
//!   groups that kept their membership and routes are level-2 hits, and
//!   only genuinely new groups are solved. A level-1 miss assembles its
//!   entry by gathering the level-2 allocations back into component
//!   variable order ([`qdn_solve::assemble::scatter_segments`]).
//!
//! The λ warm-start store needs no per-group key at all: it is dense
//! over *constraint identity* (node / edge / budget — see
//! [`RouteAssembler`]), which already sub-keys any dynamic group of the
//! component. Group solves gather their warm seed through their own
//! constraint keys and absorb their final prices back into the same
//! store, so merges and splits re-key the λ data implicitly and for
//! free.
//!
//! # Bit-identical results
//!
//! With warm starts disabled (the default), the evaluator returns
//! *exactly* the objective and allocations of the full-rebuild path —
//! under **either** partition mode — bit for bit. Three invariants make
//! this hold:
//!
//! 1. [`PerSlotContext::build_instance`] and the evaluator stream through
//!    the same [`RouteAssembler`] layout (variables in profile order,
//!    constraints in first-touch order), so the sub-instance of a
//!    static component — or of a dynamic group — equals the joint
//!    instance restricted to it;
//! 2. `qdn_solve::solve_relaxed` itself decomposes by constraint
//!    coupling, and the dynamic groups *are* the constraint-coupled
//!    components of the profile's instance, so solving a group
//!    stand-alone, inside its static component, or inside the joint
//!    instance follows the same floating-point trajectory (the greedy
//!    allocator is interleaving-invariant across components by
//!    construction, and `Minimal` trivially so);
//! 3. the final objective is re-accumulated over the gathered joint
//!    allocation in variable order with the same
//!    [`qdn_solve::ln_success`] terms [`AllocationInstance::objective_int`]
//!    uses, rather than by summing cached per-component objectives (which
//!    would associate the additions differently).
//!
//! The property tests `incremental_matches_full_rebuild` and
//! `dynamic_matches_static_partition` in `crates/core/tests/proptests.rs`
//! enforce these equivalences on random topologies, profiles, and move
//! sequences for every allocation method and both dual methods; the
//! warm-start path is covered by `warm_start_agrees_within_tolerance`.
//!
//! # Move hooks
//!
//! [`ProfileEvaluator::evaluate_objective_move`] and
//! [`ProfileEvaluator::evaluate_move`] are the selector-facing way to
//! declare which pair a proposal moved. The hint is *advisory and
//! currently unused beyond a bounds check*: a rejected Gibbs proposal
//! means the next call differs from the evaluator's last-seen profile
//! in *two* pairs (the revert plus the new proposal), so a declared
//! move can never be trusted blindly — the evaluator instead verifies
//! every static component's route tuple itself, which costs one slice
//! compare per component and makes the hint redundant for correctness
//! and for the stats (both entry points behave identically). The hooks
//! exist so the selectors express single-pair-move intent at the call
//! site and so a future incremental partition maintainer has its entry
//! points in place without another selector-surface change.
//!
//! # Persistent selection sessions
//!
//! A [`ProfileEvaluator`] lives for one slot; a [`SelectorSession`]
//! lives for a run. OSCAR is an online controller whose consecutive
//! slots pose *almost* the same problem — overlapping request sets,
//! smoothly drifting prices `q_t`, similar capacities — so each policy
//! owns one session and threads it through
//! [`crate::route_selection::RouteSelector::select_in`]; the evaluator
//! is then built with [`ProfileEvaluator::new_in`] and handed back with
//! [`ProfileEvaluator::retire`]. What carries over, and under which
//! invalidation rule, is specified on [`SelectorSession`] ("Lifetime
//! and invalidation invariants"); the short version:
//!
//! * **buffers always** (arena, husks, dense scratch, memo-map
//!   capacity) — pure allocation reuse, no semantic state;
//! * **memo entries only under an identical region fingerprint** —
//!   each static region's entries are epoch-stamped, and exactly the
//!   regions whose own sub-context (or the shared price/method context)
//!   changed get their epoch bumped — a link failure flushes the region
//!   it hits, not the whole network — so reuse is exactly as legal as
//!   re-running the same sub-problem;
//! * **λ seeds across any context drift** (opt-in via
//!   `RelaxedOptions::warm_start`) — seeds are advisory and every warm
//!   solve still certifies the cold path's guarantees;
//! * **the previous selected profile** (opt-in via
//!   [`EvalOptions::warm_profile_seed`]) — seeds the next slot's chain
//!   start, changing the search trajectory but never a profile's value.
//!
//! With both opt-ins off, a session-built evaluator is bit-identical to
//! a fresh one every slot (`session_matches_fresh_per_slot` proptest).
//!
//! # Parallelism (`parallel` feature)
//!
//! With the `parallel` cargo feature, unsolved work items of one
//! evaluation — dynamic groups, or whole components where the partition
//! does not refine — are solved on `std::thread::scope` threads (rayon
//! is not available in this build environment; scoped threads provide
//! the same fork-join shape). Results are inserted into the memos after
//! the join, so the outcome is bit-identical to the serial path; when an
//! item reports infeasibility the remaining workers stop early (matching
//! the serial path's short-circuit). Multi-chain Gibbs restarts
//! parallelize the same way — see
//! [`crate::route_selection::gibbs::sample_restarts`].

use std::collections::HashMap;

use qdn_graph::{EdgeId, NodeId, Path};
use qdn_net::SdPair;
use qdn_physics::swap::SwapModel;
use qdn_solve::assemble::scatter_segments;
use qdn_solve::relaxed::RelaxedOptions;
use qdn_solve::rounding::round_down_and_fill;
use qdn_solve::{ln_success, solve_relaxed_warm, AllocationInstance, RouteAssembler};
use serde::{Deserialize, Serialize};

use crate::allocation::AllocationMethod;
use crate::problem::{assemble_instance, PerSlotContext, ProfileEvaluation};
use crate::route_selection::Candidates;

/// Which coupling partition drives memoization and sub-instance solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionMode {
    /// The candidate-union closure only: one sub-instance per static
    /// component (the pre-PR-4 engine). Kept as the reference
    /// implementation and for workloads whose selected routes almost
    /// always coincide with the candidate closure.
    Static,
    /// Refine each static component by the *currently selected* routes
    /// (the default): single-pair moves re-solve only the dynamic
    /// groups the move actually touches. Bit-identical to `Static`.
    Dynamic,
}

/// Selector-facing evaluator options, carried by every route-selection
/// config that drives a [`ProfileEvaluator`].
///
/// **Loud compat breaks:** `partition` (PR 4) and `warm_profile_seed`
/// (PR 5) are required fields — old JSON configs fail with an explicit
/// missing-field error. See MIGRATION.md for the one-line edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalOptions {
    /// The coupling partition to evaluate under. Results are
    /// bit-identical either way; the mode only changes how much work a
    /// fresh (non-memoized) evaluation performs.
    pub partition: PartitionMode,
    /// Seed the selector's starting profile from the previous slot's
    /// selected routes when a [`SelectorSession`] carries them (pairs
    /// present in consecutive slots start on last slot's route; new
    /// pairs fall back to their shortest candidate). `false` keeps the
    /// session path bit-identical to the fresh-per-slot path; `true`
    /// changes the search trajectory (not the per-evaluation results).
    /// **Required since PR 5** — see MIGRATION.md.
    pub warm_profile_seed: bool,
}

impl EvalOptions {
    /// Dynamic route-keyed partitioning, no cross-slot profile seeding —
    /// the default, spelled out so callers building the struct by hand
    /// can say what they mean instead of `..Default::default()`.
    pub fn dynamic() -> Self {
        EvalOptions::default()
    }

    /// The static-envelope-only engine (pre-PR-4 behavior); alias of
    /// [`EvalOptions::static_partition`] matching the
    /// [`EvalOptions::dynamic`] naming.
    pub fn static_() -> Self {
        Self::static_partition()
    }

    /// The static-envelope-only engine (pre-PR-4 behavior).
    pub fn static_partition() -> Self {
        EvalOptions {
            partition: PartitionMode::Static,
            warm_profile_seed: false,
        }
    }

    /// The default options with cross-slot profile seeding enabled.
    pub fn warm_seeded() -> Self {
        EvalOptions {
            warm_profile_seed: true,
            ..EvalOptions::default()
        }
    }
}

impl Default for EvalOptions {
    /// Dynamic partitioning, no cross-slot profile seeding — the
    /// fresh-per-slot-identical configuration.
    fn default() -> Self {
        EvalOptions {
            partition: PartitionMode::Dynamic,
            warm_profile_seed: false,
        }
    }
}

/// One candidate route, pre-resolved against the network.
#[derive(Debug, Clone)]
struct RouteData {
    /// Per edge: identity, endpoints, and channel success probability.
    edges: Vec<EdgeVar>,
    /// Number of hops (= variables this route contributes).
    hops: usize,
    /// Swap count of the route (`hops − 1` surviving swaps).
    swaps: u64,
}

#[derive(Debug, Clone, Copy)]
struct EdgeVar {
    edge: EdgeId,
    u: NodeId,
    v: NodeId,
    p: f64,
}

/// Scratch for the dynamic sub-partition refresh (main thread only).
#[derive(Debug)]
struct PartitionScratch {
    /// Node → member position of the route that last touched it,
    /// epoch-stamped (never cleared).
    owner: Vec<u32>,
    owner_mark: Vec<u64>,
    epoch: u64,
    /// Union-find over member positions, reset per refresh (the
    /// smallest-root-wins invariant is what makes group numbering
    /// deterministic).
    dsu: qdn_solve::Dsu,
    /// Root → normalized group id.
    group_map: Vec<u32>,
    /// Previous group labels (merge/split accounting).
    old_groups: Vec<u32>,
    /// Distinct-label scratch for the churn counters.
    labels: Vec<u32>,
}

/// Reusable dense buffers for sub-instance construction.
#[derive(Debug)]
struct Scratch {
    /// Network dimensions the dense buffers are sized for (recycle
    /// check).
    nodes: usize,
    edges: usize,
    /// Arena-backed instance assembler shared with
    /// [`PerSlotContext::build_instance`]'s layout.
    asm: RouteAssembler,
    /// All components' keys for the profile under evaluation,
    /// concatenated at [`ProfileEvaluator::comp_key_off`] offsets —
    /// resolved once by `ensure_components`, reused by
    /// `accumulate_objective` (ROADMAP item f).
    joint_key: Vec<u32>,
    /// Per-component read cursors for the gather pass.
    cursors: Vec<usize>,
    /// Constraint keys of the instance being built (warm-start path).
    con_keys: Vec<u32>,
    /// Warm λ gathered from a component's store (warm-start path).
    warm: Vec<f64>,
    /// Dynamic sub-partition scratch.
    part: PartitionScratch,
    /// Per-member variable offsets within one component (gather pass).
    pos_off: Vec<usize>,
    /// `(offset, len)` spans of one dynamic group (gather pass).
    spans: Vec<(usize, usize)>,
    /// Assembled component allocation (gather pass).
    gathered: Vec<u32>,
}

impl Scratch {
    fn sized(nodes: usize, edges: usize, components: usize) -> Self {
        Scratch {
            asm: RouteAssembler::sized(nodes, edges),
            joint_key: Vec::new(),
            cursors: vec![0; components],
            con_keys: Vec::new(),
            warm: Vec::new(),
            part: PartitionScratch {
                owner: vec![0; nodes],
                owner_mark: vec![0; nodes],
                epoch: 0,
                dsu: qdn_solve::Dsu::new(0),
                group_map: Vec::new(),
                old_groups: Vec::new(),
                labels: Vec::new(),
            },
            pos_off: Vec::new(),
            spans: Vec::new(),
            gathered: Vec::new(),
            nodes,
            edges,
        }
    }

    /// Recycles a session-carried scratch for a new slot: same network
    /// dimensions keep every buffer (the arena, the husks, the dense
    /// partition maps), a topology change rebuilds from scratch.
    fn recycled(prev: Option<Scratch>, nodes: usize, edges: usize, components: usize) -> Self {
        match prev {
            Some(mut s) if s.nodes == nodes && s.edges == edges => {
                s.cursors.clear();
                s.cursors.resize(components, 0);
                s
            }
            _ => Scratch::sized(nodes, edges, components),
        }
    }
}

/// A route-index-keyed memo: key → epoch-stamped flat allocation
/// (`None` = that combination is infeasible). Level 1 keys by a static
/// component's route tuple; level 2 by a dynamic group's
/// `(position, route)` pairs. Entries whose epoch is not the
/// evaluator's current one are invisible (stale from an earlier slot
/// context) and get overwritten in place on the next solve.
type Memo = HashMap<Box<[u32]>, MemoEntry>;

/// One memoized allocation, stamped with the slot-context epoch it was
/// solved under.
#[derive(Debug, Clone)]
struct MemoEntry {
    epoch: u64,
    alloc: Option<Box<[u32]>>,
}

/// Session-level exact-tuple λ store: member identity (interleaved
/// `(source, destination, route index)` per member, ascending by member)
/// → the final dual prices of that sub-instance's most recent solve, in
/// the instance's deterministic constraint order.
type LambdaMemo = HashMap<Box<[u32]>, Box<[f64]>>;

/// The run-wide share of one slot's evaluation context: everything not
/// attributable to a single static region. The objective weights and
/// the solver enter *every* sub-instance, so any change here makes every
/// region's memos unreusable — a mismatch flushes all regions at once.
#[derive(Debug, Clone, PartialEq)]
struct SharedFingerprint {
    v_bits: u64,
    price_bits: u64,
    budget: Option<u64>,
    method: AllocationMethod,
    options: EvalOptions,
    nodes: usize,
    edges: usize,
}

impl SharedFingerprint {
    fn of(ctx: &PerSlotContext<'_>, method: &AllocationMethod, options: EvalOptions) -> Self {
        SharedFingerprint {
            v_bits: ctx.v_weight.to_bits(),
            price_bits: ctx.unit_price.to_bits(),
            budget: ctx.slot_budget,
            method: *method,
            options,
            nodes: ctx.network.node_count(),
            edges: ctx.network.edge_count(),
        }
    }
}

/// Identity of one static region's evaluation sub-context. When the
/// shared fingerprints of two slots match and a region's fingerprints
/// match, the region poses the *same* mathematical sub-problem in both —
/// same members in the same positional order, same candidate routes,
/// same capacities on every node and edge those candidates touch — so
/// its memo entries are interchangeable between the slots. Capacities
/// are recorded only for *touched* resources: a region's sub-instances
/// restrict to the constraints its candidate routes reach, so a link
/// failure (or occupancy change) elsewhere in the network cannot change
/// any of its solves and rightly does not flush it.
#[derive(Debug, Clone, PartialEq)]
struct RegionFingerprint {
    /// The region's pairs in candidate (positional) order — memo keys
    /// are positional route tuples, so order and multiplicity matter.
    pairs: Vec<SdPair>,
    /// FNV-1a over every member's candidate route structure (route
    /// counts, hop counts, edge ids), so a changed candidate *list* for
    /// an unchanged pair — a repaired route, a different fidelity
    /// filter — still invalidates.
    routes_hash: u64,
    /// `(node id, capacity)` for every node some candidate touches,
    /// ascending by node id.
    qubits: Vec<(u32, u32)>,
    /// `(edge id, capacity)` for every edge some candidate touches,
    /// ascending by edge id.
    channels: Vec<(u32, u32)>,
}

/// Computes every static component's session identity: its region key
/// (the pair multiset, sorted — static components have disjoint pair
/// multisets, so the key is unique within a slot and stable across
/// slots) and its [`RegionFingerprint`].
fn region_identities(
    ctx: &PerSlotContext<'_>,
    pairs: &[SdPair],
    routes: &[Vec<RouteData>],
    comp_pairs: &[Vec<usize>],
) -> (Vec<Box<[SdPair]>>, Vec<RegionFingerprint>) {
    let mut keys = Vec::with_capacity(comp_pairs.len());
    let mut fps = Vec::with_capacity(comp_pairs.len());
    for members in comp_pairs {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        let mut nodes: Vec<u32> = Vec::new();
        let mut edges: Vec<u32> = Vec::new();
        for &i in members {
            mix(routes[i].len() as u64);
            for route in &routes[i] {
                mix(route.hops as u64);
                for ev in &route.edges {
                    mix(ev.edge.index() as u64 + 1);
                    edges.push(ev.edge.index() as u32);
                    nodes.push(ev.u.index() as u32);
                    nodes.push(ev.v.index() as u32);
                }
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        edges.sort_unstable();
        edges.dedup();
        let region_pairs: Vec<SdPair> = members.iter().map(|&i| pairs[i]).collect();
        let mut key = region_pairs.clone();
        key.sort_unstable();
        keys.push(key.into_boxed_slice());
        fps.push(RegionFingerprint {
            pairs: region_pairs,
            routes_hash: h,
            qubits: nodes
                .iter()
                .map(|&v| (v, ctx.snapshot.qubits(NodeId(v))))
                .collect(),
            channels: edges
                .iter()
                .map(|&e| (e, ctx.snapshot.channels(EdgeId(e))))
                .collect(),
        });
    }
    (keys, fps)
}

/// The heap state a [`SelectorSession`] lends to one slot's
/// [`ProfileEvaluator`] and takes back on
/// [`ProfileEvaluator::retire`]. Memos and epochs are per static
/// region, aligned with the evaluator's component ids.
#[derive(Debug)]
struct SessionParts {
    epochs: Vec<u64>,
    scratch: Option<Scratch>,
    memos: Vec<Memo>,
    dyn_memos: Vec<Memo>,
    lambda_exact: LambdaMemo,
    lambda_dense: Vec<f64>,
    lambda_dense_valid: bool,
    report: InvalidationReport,
}

impl SessionParts {
    /// Parts for a stand-alone (sessionless) evaluator: everything
    /// empty, every epoch 1 so no entry can pre-date it.
    fn fresh(components: usize) -> Self {
        SessionParts {
            epochs: vec![1; components],
            scratch: None,
            memos: Vec::new(),
            dyn_memos: Vec::new(),
            lambda_exact: LambdaMemo::new(),
            lambda_dense: Vec::new(),
            lambda_dense_valid: false,
            report: InvalidationReport {
                regions: components as u32,
                regions_fresh: components as u32,
                ..InvalidationReport::default()
            },
        }
    }
}

/// One static region's slot-spanning memo state, parked in the session
/// between the slots that use it.
#[derive(Debug)]
struct RegionState {
    /// The region's private memo epoch; entries stamped differently are
    /// stale. Bumped (from the session-wide counter) exactly when the
    /// region's own fingerprint — or the shared context — changes.
    epoch: u64,
    fingerprint: RegionFingerprint,
    memo: Memo,
    dyn_memo: Memo,
    /// The session lend count when this region last appeared in a slot
    /// (TTL pruning).
    last_used: u64,
}

/// How one slot's regions fared against the session's parked state —
/// the invalidation ledger behind the churn-recovery metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvalidationReport {
    /// Static regions in the slot.
    pub regions: u32,
    /// Regions whose parked memos were flushed (fingerprint or shared
    /// context changed — under global invalidation, any change anywhere).
    pub regions_flushed: u32,
    /// Regions with no parked state (first sighting, or TTL-pruned).
    pub regions_fresh: u32,
    /// Memo entries (both levels) carried in live across the slot
    /// boundary.
    pub memo_entries_retained: u64,
    /// Memo entries invalidated by the flushes above.
    pub memo_entries_flushed: u64,
    /// Exact-tuple λ seeds currently stored (λ survives any churn).
    pub lambda_entries: u64,
}

impl InvalidationReport {
    /// Whether every region carried its memos across the slot boundary.
    pub fn fully_retained(&self) -> bool {
        self.regions_flushed == 0 && self.regions_fresh == 0
    }
}

/// Per-component memo maps whose stale population exceeds this are
/// cleared (keeping capacity) instead of carried further — the bound
/// that keeps a long-lived session's memory proportional to one slot's
/// working set rather than to the whole run.
const MEMO_PRUNE_LEN: usize = 8192;

/// The exact-tuple λ store is cleared once it exceeds this many
/// entries: unlike the memos it is *never* invalidated by context
/// drift, so an unboundedly long run over a rich pair universe would
/// otherwise grow it without limit. Losing it only costs warm-start
/// quality on the next revisit of each tuple.
const LAMBDA_PRUNE_LEN: usize = 65_536;

/// Parked regions unused for this many lends are dropped: a region that
/// has not appeared for a while (its pairs left the request mix, or a
/// topology change re-cut the partition) is unlikely to return with an
/// identical fingerprint, and its memos are pure memory until it does.
const REGION_TTL: u64 = 16;

/// Hard cap on parked regions, guarding a workload that cycles through
/// many distinct partitions faster than the TTL can retire them.
const REGION_CAP: usize = 512;

/// Persistent route-selection state spanning slots — the slot-lifetime
/// counterpart of the per-slot [`ProfileEvaluator`].
///
/// A session is owned by a policy (or any other driver that makes one
/// selection per slot) for the lifetime of a run and threaded through
/// [`crate::route_selection::RouteSelector::select_in`]. It carries:
///
/// * the recycled [`RouteAssembler`] arena, instance husks, and every
///   dense scratch buffer (epoch-stamped node maps, union-find, CSR
///   staging) — steady-state slots allocate no evaluator storage;
/// * the two memo levels, epoch-stamped: entries stay live exactly as
///   long as the slot fingerprint (prices, capacities, pairs, candidate
///   routes, method, options) is unchanged, and one integer bump
///   invalidates all of them when it is not;
/// * the λ warm-start stores (active only when the allocation method is
///   `RelaxAndRound` with `warm_start`): a dense per-constraint-identity
///   vector — valid across slots because constraint identity is
///   topological (node / edge / budget) and the optimal duals drift
///   smoothly with the price `q_t` — plus an exact-tuple memo keyed by
///   member `(pair, route)` identity, which re-seeds a re-visited
///   sub-instance with its *own* most recent prices;
/// * the previous slot's selected route per [`SdPair`], which seeds the
///   next slot's Gibbs chain / greedy start for pairs present in
///   consecutive slots when [`EvalOptions::warm_profile_seed`] is set.
///
/// # Lifetime and invalidation invariants
///
/// * A session assumes one fixed topology between [`SelectorSession::reset`]
///   calls: candidate route indices and constraint identities are only
///   comparable across slots on the same network. Policies reset their
///   session whenever [`crate::policy::RoutingPolicy::reset`] runs, so
///   fresh trials share nothing. (Candidate *repair* under link churn is
///   fine — a region whose candidates changed flushes itself via its
///   fingerprint; only node/edge *renumbering* requires a reset.)
/// * Memo entries are **region-scoped**: each static region parks its
///   memos under its own fingerprint and epoch, and is flushed exactly
///   when its *own* sub-context changes — its members, their candidate
///   routes, or a capacity on a node/edge those candidates touch — or
///   when the shared context (price, `V`, budget, method, options)
///   drifts. A link failure in one region leaves every other region's
///   memos live: no cold restart for the unaffected parts of the
///   network. [`SelectorSession::set_global_invalidation`] restores the
///   old flush-everything rule for ablation.
/// * λ entries are never invalidated by context drift — a dual seed is
///   advisory, and every warm solve still certifies the same
///   feasibility and duality-gap guarantees as a cold one (capped warm
///   budget, cold fallback) — they are only cleared by `reset`.
/// * The remembered previous-slot profile is validated by route
///   *identity* (edge list), not by index: a repair that reshuffles a
///   pair's candidate list relocates the remembered route, and a route
///   that no longer exists is simply forgotten — a stale index can
///   never leak into a seed.
/// * With `warm_profile_seed` off and `warm_start` off, a session-built
///   evaluator is **bit-identical** to a fresh
///   [`ProfileEvaluator::new`] per slot (enforced by the
///   `session_matches_fresh_per_slot` and `churn_matches_cold_rebuild`
///   proptests).
#[derive(Debug, Default)]
pub struct SelectorSession {
    /// Monotone epoch source: flushed or fresh regions draw their next
    /// epoch from here, so no retired map's stale entries can ever
    /// resurrect under a recycled epoch.
    epoch_counter: u64,
    shared: Option<SharedFingerprint>,
    /// Parked per-region memo state, keyed by the region's sorted pair
    /// multiset.
    regions: HashMap<Box<[SdPair]>, RegionState>,
    scratch: Option<Scratch>,
    lambda_exact: LambdaMemo,
    lambda_dense: Vec<f64>,
    lambda_dense_valid: bool,
    /// Previous slot's selected route per pair, by identity.
    prev_selected: HashMap<SdPair, PrevRoute>,
    /// Lend counter (drives region TTL pruning).
    lends: u64,
    /// Ablation switch: `true` re-enables the pre-region behavior where
    /// *any* context change flushes *every* region.
    global_invalidation: bool,
    last_invalidation: InvalidationReport,
}

/// A remembered previous-slot selection: the route's index in last
/// slot's candidate list plus its identity (edge sequence), so the next
/// slot can detect that churn repair removed or relocated the route.
#[derive(Debug, Clone)]
struct PrevRoute {
    index: u32,
    edges: Box<[EdgeId]>,
}

impl PrevRoute {
    /// Finds this route in `routes`: the stored index when it still
    /// holds the identical route (the steady-state fast path), else a
    /// linear scan by edge-list identity, else `None` (the route was
    /// dropped by candidate repair).
    fn locate(&self, routes: &[Path]) -> Option<usize> {
        let idx = self.index as usize;
        if routes
            .get(idx)
            .is_some_and(|r| r.edges() == &self.edges[..])
        {
            return Some(idx);
        }
        routes.iter().position(|r| r.edges() == &self.edges[..])
    }
}

impl SelectorSession {
    /// An empty session (no cross-slot state yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all cross-slot state for a fresh trial: parked region
    /// memos, λ stores, and the previous selected profile. Recycled
    /// buffer capacity is kept — it carries no semantic state.
    pub fn reset(&mut self) {
        self.shared = None;
        self.regions.clear();
        self.lambda_exact.clear();
        self.lambda_dense.iter_mut().for_each(|l| *l = 0.0);
        self.lambda_dense_valid = false;
        self.prev_selected.clear();
        self.last_invalidation = InvalidationReport::default();
        // `epoch_counter` and `lends` keep counting: epochs stay
        // monotone for the life of the session.
    }

    /// Switches between region-scoped invalidation (default, `false`)
    /// and the global flush-everything rule (`true`): under global
    /// invalidation any fingerprint change — shared or in any region —
    /// flushes every region's memos, reproducing the pre-region
    /// behavior for ablation and benchmarking.
    pub fn set_global_invalidation(&mut self, on: bool) {
        self.global_invalidation = on;
    }

    /// Whether the global flush-everything ablation rule is active.
    pub fn global_invalidation(&self) -> bool {
        self.global_invalidation
    }

    /// The invalidation ledger of the most recent slot (what the last
    /// [`ProfileEvaluator::new_in`] retained vs flushed).
    pub fn last_invalidation(&self) -> InvalidationReport {
        self.last_invalidation
    }

    /// Number of regions currently parked in the session.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The route index this session remembers for `pair` from the
    /// previous slot's selection, if any.
    pub fn previous_route(&self, pair: SdPair) -> Option<usize> {
        self.prev_selected.get(&pair).map(|r| r.index as usize)
    }

    /// Number of pairs with a remembered previous-slot route.
    pub fn remembered_pairs(&self) -> usize {
        self.prev_selected.len()
    }

    /// Number of exact-tuple λ seeds currently stored.
    pub fn lambda_entries(&self) -> usize {
        self.lambda_exact.len()
    }

    /// The warm starting profile for `candidates`, or `None` unless a
    /// strict *majority* (more than half) of the candidate pairs carry
    /// a remembered previous-slot route — a seed dominated by fallback
    /// entries is not a warm start, and selectors shrink their search
    /// budget on seeded slots (see `GibbsConfig::warm_iterations`), so
    /// low-coverage slots must run the full cold search instead.
    /// Remembered pairs start on last slot's route, located by edge-list
    /// identity (so a candidate list reshuffled by churn repair still
    /// seeds the same physical route, and a removed route falls back
    /// instead of aliasing whatever now sits at its old index); the
    /// remaining pairs fall back to their shortest candidate (index 0).
    /// Pairs repeated in the request set (multi-EC) all seed from the
    /// one remembered route of that pair.
    pub fn seed_indices(&self, candidates: &[Candidates<'_>]) -> Option<Vec<usize>> {
        let mut remembered = 0usize;
        let seed: Vec<usize> = candidates
            .iter()
            .map(|c| {
                match self
                    .prev_selected
                    .get(&c.pair)
                    .and_then(|p| p.locate(c.routes))
                {
                    Some(idx) => {
                        remembered += 1;
                        idx
                    }
                    None => 0,
                }
            })
            .collect();
        (remembered * 2 > candidates.len()).then_some(seed)
    }

    /// Records this slot's selection as the seed source for the next
    /// slot. Replaces the previous record wholesale: only pairs served
    /// in the *immediately* preceding slot seed the next one.
    pub fn record_selection(&mut self, candidates: &[Candidates<'_>], indices: &[usize]) {
        debug_assert_eq!(candidates.len(), indices.len());
        self.prev_selected.clear();
        for (c, &i) in candidates.iter().zip(indices) {
            self.prev_selected.insert(
                c.pair,
                PrevRoute {
                    index: i as u32,
                    edges: c.routes[i].edges().into(),
                },
            );
        }
    }

    fn next_epoch(&mut self) -> u64 {
        self.epoch_counter += 1;
        self.epoch_counter
    }

    /// Lends the recycled buffers out for one slot: pulls each region's
    /// parked memos out by key, flushes (epoch-bumps) exactly the
    /// regions whose fingerprint — or the shared context — changed, and
    /// TTL-prunes parked regions that have not appeared recently.
    fn lend(
        &mut self,
        shared: SharedFingerprint,
        keys: &[Box<[SdPair]>],
        fps: &[RegionFingerprint],
    ) -> SessionParts {
        self.lends += 1;
        let shared_mismatch = self.shared.as_ref() != Some(&shared);
        self.shared = Some(shared);
        if self.lambda_exact.len() > LAMBDA_PRUNE_LEN {
            self.lambda_exact.clear();
        }

        let n = keys.len();
        let mut states: Vec<Option<RegionState>> =
            keys.iter().map(|k| self.regions.remove(k)).collect();
        let mut flush = vec![shared_mismatch; n];
        let mut any_changed = shared_mismatch;
        for (i, st) in states.iter().enumerate() {
            match st {
                Some(s) if s.fingerprint == fps[i] => {}
                Some(_) => {
                    flush[i] = true;
                    any_changed = true;
                }
                None => any_changed = true,
            }
        }
        if self.global_invalidation && any_changed {
            flush.iter_mut().for_each(|f| *f = true);
        }

        let mut report = InvalidationReport {
            regions: n as u32,
            lambda_entries: self.lambda_exact.len() as u64,
            ..InvalidationReport::default()
        };
        let mut epochs = Vec::with_capacity(n);
        let mut memos = Vec::with_capacity(n);
        let mut dyn_memos = Vec::with_capacity(n);
        for (i, st) in states.iter_mut().enumerate() {
            match st.take() {
                Some(mut s) => {
                    let entries = (s.memo.len() + s.dyn_memo.len()) as u64;
                    if flush[i] {
                        s.epoch = self.next_epoch();
                        report.regions_flushed += 1;
                        report.memo_entries_flushed += entries;
                    } else {
                        report.memo_entries_retained += entries;
                    }
                    epochs.push(s.epoch);
                    memos.push(s.memo);
                    dyn_memos.push(s.dyn_memo);
                }
                None => {
                    report.regions_fresh += 1;
                    epochs.push(self.next_epoch());
                    memos.push(Memo::new());
                    dyn_memos.push(Memo::new());
                }
            }
        }

        let lends = self.lends;
        self.regions
            // qdn-lint: allow(unordered-iter, reason="TTL prune; the predicate is a pure per-entry function, so visit order cannot affect which entries survive")
            .retain(|_, s| lends.saturating_sub(s.last_used) <= REGION_TTL);
        if self.regions.len() > REGION_CAP {
            self.regions.clear();
        }
        self.last_invalidation = report;
        SessionParts {
            epochs,
            scratch: self.scratch.take(),
            memos,
            dyn_memos,
            lambda_exact: std::mem::take(&mut self.lambda_exact),
            lambda_dense: std::mem::take(&mut self.lambda_dense),
            lambda_dense_valid: self.lambda_dense_valid,
            report,
        }
    }

    /// Serializes every piece of cross-slot state into a
    /// [`SessionSnapshot`] with canonical (sorted) entry order, so equal
    /// sessions produce byte-identical snapshots regardless of hash-map
    /// iteration order.
    ///
    /// The snapshot is *complete*: region memos (both levels, with their
    /// epochs), the λ stores, the previous selected profile, the shared
    /// fingerprint, and the epoch/lend counters all round-trip. Anything
    /// less — say, only the λ stores — would let a restored session
    /// diverge from the uninterrupted run on the first memo hit the
    /// original would have had. The recycled scratch arena is *not*
    /// captured (it carries no semantic state and is rebuilt lazily).
    pub fn snapshot(&self) -> SessionSnapshot {
        fn memo_entries(memo: &Memo) -> Vec<MemoEntrySnapshot> {
            let mut out: Vec<MemoEntrySnapshot> = memo
                // qdn-lint: allow(unordered-iter, reason="snapshot building; entries are sorted by key immediately after collection")
                .iter()
                .map(|(k, e)| MemoEntrySnapshot {
                    key: k.to_vec(),
                    epoch: e.epoch,
                    alloc: e.alloc.as_ref().map(|a| a.to_vec()),
                })
                .collect();
            out.sort_unstable_by(|a, b| a.key.cmp(&b.key));
            out
        }
        let mut regions: Vec<RegionSnapshot> = self
            .regions
            // qdn-lint: allow(unordered-iter, reason="snapshot building; regions are sorted by key immediately after collection")
            .iter()
            .map(|(key, st)| RegionSnapshot {
                key: key.to_vec(),
                epoch: st.epoch,
                last_used: st.last_used,
                pairs: st.fingerprint.pairs.clone(),
                routes_hash: st.fingerprint.routes_hash,
                qubits: st.fingerprint.qubits.clone(),
                channels: st.fingerprint.channels.clone(),
                memo: memo_entries(&st.memo),
                dyn_memo: memo_entries(&st.dyn_memo),
            })
            .collect();
        regions.sort_unstable_by(|a, b| a.key.cmp(&b.key));
        let mut lambda_exact: Vec<LambdaEntrySnapshot> = self
            .lambda_exact
            // qdn-lint: allow(unordered-iter, reason="snapshot building; entries are sorted by key immediately after collection")
            .iter()
            .map(|(k, l)| LambdaEntrySnapshot {
                key: k.to_vec(),
                lambda: l.to_vec(),
            })
            .collect();
        lambda_exact.sort_unstable_by(|a, b| a.key.cmp(&b.key));
        let mut prev_selected: Vec<PrevSelectedSnapshot> = self
            .prev_selected
            // qdn-lint: allow(unordered-iter, reason="snapshot building; entries are sorted by pair immediately after collection")
            .iter()
            .map(|(&pair, r)| PrevSelectedSnapshot {
                pair,
                index: r.index,
                edges: r.edges.to_vec(),
            })
            .collect();
        prev_selected.sort_unstable_by_key(|p| p.pair);
        SessionSnapshot {
            version: SESSION_SNAPSHOT_VERSION,
            epoch_counter: self.epoch_counter,
            lends: self.lends,
            global_invalidation: self.global_invalidation,
            shared: self.shared.as_ref().map(|s| SharedSnapshot {
                v_bits: s.v_bits,
                price_bits: s.price_bits,
                budget: s.budget,
                method: s.method,
                options: s.options,
                nodes: s.nodes,
                edges: s.edges,
            }),
            regions,
            lambda_exact,
            lambda_dense: self.lambda_dense.clone(),
            lambda_dense_valid: self.lambda_dense_valid,
            prev_selected,
            last_invalidation: self.last_invalidation,
        }
    }

    /// Rebuilds a session from a snapshot taken by
    /// [`SelectorSession::snapshot`]. The restored session is
    /// behaviorally indistinguishable from the original: every decision
    /// it participates in is bit-identical to what the uninterrupted
    /// session would have produced (pinned by the
    /// `restored_session_matches_uninterrupted` proptest).
    pub fn restore(snapshot: &SessionSnapshot) -> Result<Self, String> {
        if snapshot.version != SESSION_SNAPSHOT_VERSION {
            return Err(format!(
                "session snapshot version {} (expected {SESSION_SNAPSHOT_VERSION})",
                snapshot.version
            ));
        }
        fn memo_map(entries: &[MemoEntrySnapshot]) -> Memo {
            entries
                .iter()
                .map(|e| {
                    (
                        e.key.clone().into_boxed_slice(),
                        MemoEntry {
                            epoch: e.epoch,
                            alloc: e.alloc.as_ref().map(|a| a.clone().into_boxed_slice()),
                        },
                    )
                })
                .collect()
        }
        Ok(SelectorSession {
            epoch_counter: snapshot.epoch_counter,
            shared: snapshot.shared.as_ref().map(|s| SharedFingerprint {
                v_bits: s.v_bits,
                price_bits: s.price_bits,
                budget: s.budget,
                method: s.method,
                options: s.options,
                nodes: s.nodes,
                edges: s.edges,
            }),
            regions: snapshot
                .regions
                .iter()
                .map(|r| {
                    (
                        r.key.clone().into_boxed_slice(),
                        RegionState {
                            epoch: r.epoch,
                            fingerprint: RegionFingerprint {
                                pairs: r.pairs.clone(),
                                routes_hash: r.routes_hash,
                                qubits: r.qubits.clone(),
                                channels: r.channels.clone(),
                            },
                            memo: memo_map(&r.memo),
                            dyn_memo: memo_map(&r.dyn_memo),
                            last_used: r.last_used,
                        },
                    )
                })
                .collect(),
            scratch: None,
            lambda_exact: snapshot
                .lambda_exact
                .iter()
                .map(|e| {
                    (
                        e.key.clone().into_boxed_slice(),
                        e.lambda.clone().into_boxed_slice(),
                    )
                })
                .collect(),
            lambda_dense: snapshot.lambda_dense.clone(),
            lambda_dense_valid: snapshot.lambda_dense_valid,
            prev_selected: snapshot
                .prev_selected
                .iter()
                .map(|p| {
                    (
                        p.pair,
                        PrevRoute {
                            index: p.index,
                            edges: p.edges.clone().into_boxed_slice(),
                        },
                    )
                })
                .collect(),
            lends: snapshot.lends,
            global_invalidation: snapshot.global_invalidation,
            last_invalidation: snapshot.last_invalidation,
        })
    }
}

/// Version tag of [`SessionSnapshot`]; bump on layout changes.
pub const SESSION_SNAPSHOT_VERSION: u32 = 1;

/// Serializable image of a [`SelectorSession`] (see
/// [`SelectorSession::snapshot`]). Entry order is canonical (sorted by
/// key), so equal sessions snapshot byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Layout version ([`SESSION_SNAPSHOT_VERSION`]).
    pub version: u32,
    epoch_counter: u64,
    lends: u64,
    global_invalidation: bool,
    shared: Option<SharedSnapshot>,
    regions: Vec<RegionSnapshot>,
    lambda_exact: Vec<LambdaEntrySnapshot>,
    lambda_dense: Vec<f64>,
    lambda_dense_valid: bool,
    prev_selected: Vec<PrevSelectedSnapshot>,
    last_invalidation: InvalidationReport,
}

/// Mirror of the private [`SharedFingerprint`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SharedSnapshot {
    v_bits: u64,
    price_bits: u64,
    budget: Option<u64>,
    method: AllocationMethod,
    options: EvalOptions,
    nodes: usize,
    edges: usize,
}

/// One parked region: its key, fingerprint, and both memo levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RegionSnapshot {
    /// The region key (sorted pair multiset).
    key: Vec<SdPair>,
    epoch: u64,
    last_used: u64,
    /// Fingerprint: pairs in candidate (positional) order.
    pairs: Vec<SdPair>,
    routes_hash: u64,
    qubits: Vec<(u32, u32)>,
    channels: Vec<(u32, u32)>,
    memo: Vec<MemoEntrySnapshot>,
    dyn_memo: Vec<MemoEntrySnapshot>,
}

/// One memoized allocation (route tuple → epoch-stamped result).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct MemoEntrySnapshot {
    key: Vec<u32>,
    epoch: u64,
    alloc: Option<Vec<u32>>,
}

/// One exact-tuple λ seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LambdaEntrySnapshot {
    key: Vec<u32>,
    lambda: Vec<f64>,
}

/// One remembered previous-slot route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PrevSelectedSnapshot {
    pair: SdPair,
    index: u32,
    edges: Vec<EdgeId>,
}

/// One static component's stored dual prices, dense over constraint keys
/// (node / edge / budget identity — see [`RouteAssembler`]). Constraint
/// identity sub-keys every dynamic group of the component, so group
/// solves share this store without any per-group bookkeeping.
#[derive(Debug, Clone)]
struct ComponentDual {
    lambda: Vec<f64>,
    valid: bool,
}

impl ComponentDual {
    fn absorb(&mut self, keys: &[u32], lambda: &[f64]) {
        debug_assert_eq!(keys.len(), lambda.len());
        for (&key, &l) in keys.iter().zip(lambda) {
            self.lambda[key as usize] = l;
        }
        self.valid = true;
    }
}

/// The outcome of one fresh sub-instance solve (a whole static component
/// or a single dynamic group).
struct ComponentSolve {
    /// The allocation (`None` = infeasible route combination).
    alloc: Option<Box<[u32]>>,
    /// `(constraint keys, final λ)` when a warm-capable solve ran.
    dual: Option<(Vec<u32>, Vec<f64>)>,
    /// Whether the dual iteration was actually seeded from stored λ.
    warm_started: bool,
}

/// Counters describing how much work the evaluator actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Profile evaluations served (objective-only or full).
    pub evaluations: u64,
    /// Static components answered from the level-1 (route tuple) memo.
    pub memo_hits: u64,
    /// Sub-instances built and solved. Under the dynamic partition each
    /// freshly solved dynamic group counts individually.
    pub components_solved: u64,
    /// Solves seeded from a stored neighboring-profile λ.
    pub warm_started: u64,
    /// Gauge: dynamic components across the whole profile, as of the
    /// last partition refresh. Static components whose sub-partition has
    /// not been computed yet (including all of them under
    /// [`PartitionMode::Static`]) count as one each.
    pub dynamic_components: u64,
    /// Dynamic groups that merged: each recomputed sub-partition adds,
    /// per new group, the number of distinct previous groups it spans
    /// minus one (relative to the last profile whose partition was
    /// computed for that component).
    pub component_merges: u64,
    /// Dynamic groups that split: the mirror image of
    /// [`EvalStats::component_merges`] — per previous group, the number
    /// of distinct new groups its members landed in, minus one.
    pub component_splits: u64,
    /// Gauge: pairs whose dynamic group (or whole static component) was
    /// freshly solved by the most recent evaluation; 0 when it was
    /// served entirely from the memos.
    pub pairs_resolved_last_move: u64,
    /// Gauge: static regions whose session memos were flushed when this
    /// evaluator was built (0 for sessionless evaluators).
    pub regions_flushed: u64,
    /// Gauge: static regions with no parked session state at build.
    pub regions_fresh: u64,
    /// Gauge: memo entries carried live across the slot boundary at
    /// build.
    pub memo_entries_retained: u64,
    /// Gauge: memo entries invalidated at build by region flushes.
    pub memo_entries_flushed: u64,
}

/// The incremental profile-evaluation engine. See the module docs.
#[derive(Debug)]
pub struct ProfileEvaluator<'a> {
    ctx: PerSlotContext<'a>,
    method: AllocationMethod,
    options: EvalOptions,
    pairs: Vec<SdPair>,
    /// `routes[i][r]` describes candidate `r` of pair `i`.
    routes: Vec<Vec<RouteData>>,
    /// Static partition: `comp_of_pair[i]` and the ascending pair lists.
    comp_of_pair: Vec<usize>,
    comp_pairs: Vec<Vec<usize>>,
    /// `comp_key_off[c]..comp_key_off[c+1]` slices component `c`'s route
    /// indices out of `Scratch::joint_key` (and its member positions out
    /// of the flat dynamic-partition state below).
    comp_key_off: Vec<usize>,
    /// Dynamic sub-partition state, flat in `comp_key_off` layout:
    /// per member position, its group id within the static component.
    dyn_group_of: Vec<u32>,
    /// The route tuple each component's sub-partition corresponds to.
    dyn_state_key: Vec<u32>,
    /// Whether a component's sub-partition has ever been computed.
    dyn_state_valid: Vec<bool>,
    /// Per component: number of dynamic groups in its sub-partition.
    dyn_group_count: Vec<u32>,
    /// `ln(swap_success)`; only meaningful when `lossy_swap`.
    ln_q: f64,
    lossy_swap: bool,
    budget: Option<u32>,
    scratch: Scratch,
    /// Per-component memo epochs this evaluator reads and writes;
    /// session-built evaluators inherit each region's current epoch.
    epochs: Vec<u64>,
    /// Session identity of each static component (region key = sorted
    /// pair multiset, plus the slot's region fingerprint) — what
    /// [`ProfileEvaluator::retire`] parks the memos under.
    region_keys: Vec<Box<[SdPair]>>,
    region_fps: Vec<RegionFingerprint>,
    /// Level-1 memos (per static component, keyed by route tuple).
    memos: Vec<Memo>,
    /// Level-2 memos (per static component, keyed by dynamic sub-key).
    dyn_memos: Vec<Memo>,
    /// Sub-key under construction (kept outside `Scratch` so it can be
    /// borrowed across `solve_component` calls).
    group_key: Vec<u32>,
    /// Pair ids of the dynamic group being solved.
    group_members: Vec<usize>,
    /// Exact-tuple λ key under construction.
    tuple_key: Vec<u32>,
    /// Per-static-component dual warm-start store (empty unless the
    /// method is `RelaxAndRound` with `warm_start` enabled).
    duals: Vec<ComponentDual>,
    /// Session-spanning λ stores (see [`SelectorSession`]): exact-tuple
    /// seeds and the dense per-constraint-identity vector. Written only
    /// when warm starts are enabled; passed back on retire regardless.
    lambda_exact: LambdaMemo,
    lambda_dense: Vec<f64>,
    lambda_dense_valid: bool,
    warm_opts: Option<RelaxedOptions>,
    /// `pair_memo[i][r]`: cached single-pair objective (outer `None` =
    /// not yet computed; inner `None` = infeasible).
    pair_memo: Vec<Vec<Option<Option<f64>>>>,
    stats: EvalStats,
}

impl<'a> ProfileEvaluator<'a> {
    /// Builds the evaluator for one slot: resolves candidate routes
    /// against the network, partitions pairs into static coupling
    /// components, and sizes the scratch buffers. The dynamic
    /// sub-partitions (when `options.partition` is
    /// [`PartitionMode::Dynamic`]) are computed lazily, per component,
    /// on the first evaluation that needs them.
    pub fn new(
        ctx: &PerSlotContext<'a>,
        candidates: &[Candidates<'_>],
        method: &AllocationMethod,
        options: EvalOptions,
    ) -> Self {
        Self::build(ctx, candidates, method, options, None)
    }

    /// [`ProfileEvaluator::new`] backed by a [`SelectorSession`]: the
    /// arena, scratch buffers, memo maps, and λ stores are borrowed from
    /// the session instead of freshly allocated. Memos are region-scoped
    /// — each static component pulls its parked memo maps by identity,
    /// and only the regions whose own sub-context (members, candidate
    /// routes, touched capacities) or the shared context changed are
    /// flushed (see the session docs for the invalidation invariants).
    /// Call [`ProfileEvaluator::retire`] when the slot's selection is
    /// done to hand the state back; dropping the evaluator instead
    /// merely forfeits the reuse (the session rebuilds fresh buffers
    /// next slot).
    pub fn new_in(
        session: &mut SelectorSession,
        ctx: &PerSlotContext<'a>,
        candidates: &[Candidates<'_>],
        method: &AllocationMethod,
        options: EvalOptions,
    ) -> Self {
        Self::build(ctx, candidates, method, options, Some(session))
    }

    /// Returns the recycled buffers, memos, and λ stores to `session`
    /// for the next slot. Each static component's memos are parked
    /// under its region key with the epoch they were stamped with, so
    /// the next slot that poses the same sub-problem — even after
    /// unrelated churn elsewhere — reads them back verbatim.
    pub fn retire(self, session: &mut SelectorSession) {
        session.scratch = Some(self.scratch);
        session.lambda_exact = self.lambda_exact;
        session.lambda_dense = self.lambda_dense;
        session.lambda_dense_valid = self.lambda_dense_valid;
        let last_used = session.lends;
        for ((((key, fingerprint), epoch), memo), dyn_memo) in self
            .region_keys
            .into_iter()
            .zip(self.region_fps)
            .zip(self.epochs)
            .zip(self.memos)
            .zip(self.dyn_memos)
        {
            session.epoch_counter = session.epoch_counter.max(epoch);
            session.regions.insert(
                key,
                RegionState {
                    epoch,
                    fingerprint,
                    memo,
                    dyn_memo,
                    last_used,
                },
            );
        }
    }

    fn build(
        ctx: &PerSlotContext<'a>,
        candidates: &[Candidates<'_>],
        method: &AllocationMethod,
        options: EvalOptions,
        session: Option<&mut SelectorSession>,
    ) -> Self {
        let k = candidates.len();
        let pairs: Vec<SdPair> = candidates.iter().map(|c| c.pair).collect();
        let routes: Vec<Vec<RouteData>> = candidates
            .iter()
            .map(|c| c.routes.iter().map(|r| resolve_route(ctx, r)).collect())
            .collect();

        // Static partition by candidate-route node sharing (edge sharing
        // implies node sharing). A slot budget couples everything.
        let mut dsu = qdn_solve::Dsu::new(k);
        if ctx.slot_budget.is_some() {
            for i in 1..k {
                dsu.union(0, i);
            }
        } else {
            let mut node_owner = vec![usize::MAX; ctx.network.node_count()];
            for (i, cand) in routes.iter().enumerate() {
                for route in cand {
                    for ev in &route.edges {
                        for node in [ev.u, ev.v] {
                            let owner = node_owner[node.index()];
                            if owner == usize::MAX {
                                node_owner[node.index()] = i;
                            } else if owner != i {
                                dsu.union(owner, i);
                            }
                        }
                    }
                }
            }
        }
        let mut comp_of_pair = vec![usize::MAX; k];
        let mut comp_pairs: Vec<Vec<usize>> = Vec::new();
        for i in 0..k {
            let root = dsu.find(i);
            let comp = if comp_of_pair[root] == usize::MAX {
                comp_pairs.push(Vec::new());
                let id = comp_pairs.len() - 1;
                comp_of_pair[root] = id;
                id
            } else {
                comp_of_pair[root]
            };
            comp_of_pair[i] = comp;
            comp_pairs[comp].push(i);
        }
        let mut comp_key_off = Vec::with_capacity(comp_pairs.len() + 1);
        comp_key_off.push(0);
        for pairs in &comp_pairs {
            comp_key_off.push(comp_key_off.last().unwrap() + pairs.len());
        }

        // The static partition is known, so each component's session
        // identity (region key + fingerprint) can be computed and the
        // matching parked memos pulled from the session region by
        // region.
        let (region_keys, region_fps) = region_identities(ctx, &pairs, &routes, &comp_pairs);
        let parts = match session {
            Some(s) => s.lend(
                SharedFingerprint::of(ctx, method, options),
                &region_keys,
                &region_fps,
            ),
            None => SessionParts::fresh(comp_pairs.len()),
        };

        let q = ctx.network.swap().success();
        let nodes = ctx.network.node_count();
        let edges = ctx.network.edge_count();
        let SessionParts {
            epochs,
            scratch,
            mut memos,
            mut dyn_memos,
            lambda_exact,
            mut lambda_dense,
            mut lambda_dense_valid,
            report,
        } = parts;
        let scratch = Scratch::recycled(scratch, nodes, edges, comp_pairs.len());
        for memo in [&mut memos, &mut dyn_memos] {
            memo.truncate(comp_pairs.len());
            memo.resize_with(comp_pairs.len(), Memo::new);
            for m in memo.iter_mut() {
                if m.len() > MEMO_PRUNE_LEN {
                    m.clear();
                }
            }
        }
        let warm_opts = match method {
            AllocationMethod::RelaxAndRound(o) if o.warm_start => Some(*o),
            _ => None,
        };
        let key_space = nodes + edges + 1;
        if lambda_dense.len() != key_space {
            // First use, or a topology change: the stored identities no
            // longer line up — start the dense store over.
            lambda_dense.clear();
            lambda_dense.resize(key_space, 0.0);
            lambda_dense_valid = false;
        }
        let duals = if warm_opts.is_some() {
            // Each component starts from the session's dense λ (the
            // previous slots' prices over the same topological
            // constraint identities) when one is carried — λ drifts
            // smoothly with `q_t`, so it is a high-quality first seed.
            vec![
                ComponentDual {
                    lambda: lambda_dense.clone(),
                    valid: lambda_dense_valid,
                };
                comp_pairs.len()
            ]
        } else {
            Vec::new()
        };
        let pair_memo = routes.iter().map(|c| vec![None; c.len()]).collect();
        let stats = EvalStats {
            // Unrefined components count as one dynamic group each.
            dynamic_components: comp_pairs.len() as u64,
            regions_flushed: report.regions_flushed as u64,
            regions_fresh: report.regions_fresh as u64,
            memo_entries_retained: report.memo_entries_retained,
            memo_entries_flushed: report.memo_entries_flushed,
            ..EvalStats::default()
        };
        ProfileEvaluator {
            ctx: *ctx,
            method: *method,
            options,
            pairs,
            routes,
            comp_of_pair,
            dyn_group_of: vec![0; k],
            dyn_state_key: vec![0; k],
            dyn_state_valid: vec![false; comp_pairs.len()],
            dyn_group_count: vec![1; comp_pairs.len()],
            comp_pairs,
            comp_key_off,
            ln_q: if q < 1.0 { q.ln() } else { 0.0 },
            lossy_swap: q < 1.0,
            budget: ctx.slot_budget.map(|b| b.min(u32::MAX as u64) as u32),
            scratch,
            epochs,
            region_keys,
            region_fps,
            memos,
            dyn_memos,
            group_key: Vec::new(),
            group_members: Vec::new(),
            tuple_key: Vec::new(),
            duals,
            lambda_exact,
            lambda_dense,
            lambda_dense_valid,
            warm_opts,
            pair_memo,
            stats,
        }
    }

    /// Number of SD pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of coupling components in the static partition.
    pub fn component_count(&self) -> usize {
        self.comp_pairs.len()
    }

    /// The evaluator options this engine was built with.
    pub fn options(&self) -> EvalOptions {
        self.options
    }

    /// Whether pair `i` is alone in its static component (the
    /// generalization of the Gibbs `parallel_isolated` notion).
    pub fn pair_is_isolated(&self, i: usize) -> bool {
        self.comp_pairs[self.comp_of_pair[i]].len() == 1
    }

    /// Whether fresh `RelaxAndRound` solves are being warm-started from
    /// stored dual prices.
    pub fn warm_start_enabled(&self) -> bool {
        self.warm_opts.is_some()
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Evaluates only the objective of the profile `indices`, re-solving
    /// just the dynamic groups (or static components) whose keys have
    /// not been seen before. Returns `None` when the profile is
    /// infeasible.
    ///
    /// Bit-identical to
    /// [`PerSlotContext::evaluate_objective`] on the equivalent profile.
    pub fn evaluate_objective(&mut self, indices: &[usize]) -> Option<f64> {
        self.stats.evaluations += 1;
        self.stats.pairs_resolved_last_move = 0;
        if self.pairs.is_empty() {
            return Some(0.0);
        }
        self.ensure_components(indices)?;
        Some(self.accumulate_objective(indices, None))
    }

    /// [`ProfileEvaluator::evaluate_objective`] with a declared
    /// single-pair move: the caller changed pair `moved` relative to its
    /// previous profile. The hint is advisory and currently unused
    /// beyond a bounds check — see the module docs ("Move hooks") for
    /// why it cannot be trusted (rejected-proposal reverts) and what
    /// the entry point is for.
    pub fn evaluate_objective_move(&mut self, indices: &[usize], moved: usize) -> Option<f64> {
        debug_assert!(moved < self.pairs.len());
        self.evaluate_objective(indices)
    }

    /// Fully evaluates the profile `indices`, returning per-route
    /// allocations plus the objective. Returns `None` when infeasible.
    ///
    /// Bit-identical to [`PerSlotContext::evaluate`] on the equivalent
    /// profile.
    pub fn evaluate(&mut self, indices: &[usize]) -> Option<ProfileEvaluation> {
        self.stats.evaluations += 1;
        self.stats.pairs_resolved_last_move = 0;
        if self.pairs.is_empty() {
            return Some(ProfileEvaluation {
                allocations: Vec::new(),
                objective: 0.0,
            });
        }
        self.ensure_components(indices)?;
        let mut allocations: Vec<Vec<u32>> = Vec::with_capacity(self.pairs.len());
        let objective = self.accumulate_objective(indices, Some(&mut allocations));
        Some(ProfileEvaluation {
            allocations,
            objective,
        })
    }

    /// [`ProfileEvaluator::evaluate`] with a declared single-pair move
    /// (see [`ProfileEvaluator::evaluate_objective_move`]).
    pub fn evaluate_move(&mut self, indices: &[usize], moved: usize) -> Option<ProfileEvaluation> {
        debug_assert!(moved < self.pairs.len());
        self.evaluate(indices)
    }

    /// Objective of pair `i` served alone with candidate `route_idx`
    /// (memoized). Matches the seed's "local evaluation" used for
    /// isolated pairs in Gibbs: the single-pair profile evaluated under
    /// this slot's context, including any slot budget.
    pub fn evaluate_pair_objective(&mut self, i: usize, route_idx: usize) -> Option<f64> {
        if let Some(cached) = self.pair_memo[i][route_idx] {
            return cached;
        }
        let route = &self.routes[i][route_idx];
        let instance = build_instance_for(
            &mut self.scratch,
            &self.ctx,
            self.budget,
            std::iter::once(route),
            false,
        );
        let objective = instance.ok().and_then(|inst| {
            let flat = self.method.allocate(&inst);
            let result = flat.map(|flat| {
                let swap_term = if self.lossy_swap {
                    route.swaps as f64 * self.ln_q
                } else {
                    0.0
                };
                inst.objective_int(&flat) + self.ctx.v_weight * swap_term
            });
            self.scratch.asm.recycle(inst);
            result
        });
        self.pair_memo[i][route_idx] = Some(objective);
        objective
    }

    /// Whether component `comp` is evaluated through the dynamic
    /// sub-partition. Singleton components have nothing to refine, and
    /// a slot budget couples every pair unconditionally (the same rule
    /// the static partition applies), so budgeted contexts skip the
    /// refresh machinery entirely instead of recomputing a
    /// known-trivial partition on every cold move.
    fn use_dynamic(&self, comp: usize) -> bool {
        self.options.partition == PartitionMode::Dynamic
            && self.budget.is_none()
            && self.comp_pairs[comp].len() > 1
    }

    /// Recomputes component `comp`'s dynamic sub-partition for the route
    /// tuple currently in `Scratch::joint_key`, if it differs from the
    /// tuple the stored sub-partition corresponds to. Updates the
    /// partition gauges and the merge/split churn counters.
    fn refresh_partition(&mut self, comp: usize) {
        let off = self.comp_key_off[comp];
        let end = self.comp_key_off[comp + 1];
        let m = end - off;
        if self.dyn_state_valid[comp]
            && self.dyn_state_key[off..end] == self.scratch.joint_key[off..end]
        {
            return;
        }
        // Budgeted contexts never reach here: the budget row couples
        // every member, so `use_dynamic` routes them straight to
        // `solve_whole` (the refinement would always be one group).
        debug_assert!(self.budget.is_none());
        let Scratch {
            part, joint_key, ..
        } = &mut self.scratch;
        let key = &joint_key[off..end];

        part.dsu.reset(m);
        part.epoch += 1;
        for (pos, &pair) in self.comp_pairs[comp].iter().enumerate() {
            let route = &self.routes[pair][key[pos] as usize];
            for ev in &route.edges {
                for node in [ev.u, ev.v] {
                    let ni = node.index();
                    if part.owner_mark[ni] == part.epoch {
                        let other = part.owner[ni] as usize;
                        part.dsu.union(other, pos);
                    } else {
                        part.owner_mark[ni] = part.epoch;
                        part.owner[ni] = pos as u32;
                    }
                }
            }
        }

        // Normalize group ids by smallest member position and stash the
        // previous labels for the churn counters.
        part.old_groups.clear();
        part.old_groups
            .extend_from_slice(&self.dyn_group_of[off..end]);
        part.group_map.clear();
        part.group_map.resize(m, u32::MAX);
        let mut count = 0u32;
        for pos in 0..m {
            let root = part.dsu.find(pos);
            let g = if part.group_map[root] == u32::MAX {
                part.group_map[root] = count;
                count += 1;
                count - 1
            } else {
                part.group_map[root]
            };
            self.dyn_group_of[off + pos] = g;
        }

        if self.dyn_state_valid[comp] {
            let new = &self.dyn_group_of[off..end];
            self.stats.component_merges +=
                distinct_excess(new, &part.old_groups, count, &mut part.labels);
            self.stats.component_splits += distinct_excess(
                &part.old_groups,
                new,
                self.dyn_group_count[comp],
                &mut part.labels,
            );
        }
        self.stats.dynamic_components += count as u64;
        self.stats.dynamic_components -= self.dyn_group_count[comp] as u64;
        self.dyn_group_count[comp] = count;
        self.dyn_state_key[off..end].copy_from_slice(key);
        self.dyn_state_valid[comp] = true;
    }

    /// Ensures every component's allocation for `indices` is in the
    /// level-1 memo and resolves all component keys into
    /// `Scratch::joint_key` (sliced by
    /// [`ProfileEvaluator::comp_key_off`]) so the accumulation pass does
    /// not rebuild them; `None` if any component is infeasible.
    ///
    /// A level-1 hit touches neither the partition nor the level-2 memo
    /// — the memoized re-evaluation path is exactly the single-level
    /// engine's. On a miss the component's sub-partition is refreshed
    /// and only the dynamic groups with unseen sub-keys are solved.
    fn ensure_components(&mut self, indices: &[usize]) -> Option<()> {
        debug_assert_eq!(indices.len(), self.pairs.len());
        // Resolve every component's key once, up front.
        self.scratch.joint_key.clear();
        for comp_pairs in &self.comp_pairs {
            self.scratch
                .joint_key
                .extend(comp_pairs.iter().map(|&i| indices[i] as u32));
        }

        // Components the parallel pre-pass solved this call (ascending);
        // they must not count as memo hits below.
        #[cfg(feature = "parallel")]
        let (fresh, parallel_infeasible) = self.solve_missing_parallel(indices);
        #[cfg(feature = "parallel")]
        if parallel_infeasible {
            return None;
        }
        #[cfg(not(feature = "parallel"))]
        let fresh: Vec<usize> = Vec::new();

        for comp in 0..self.comp_pairs.len() {
            let key = &self.scratch.joint_key[self.comp_key_off[comp]..self.comp_key_off[comp + 1]];
            if let Some(entry) = self.memos[comp]
                .get(key)
                .filter(|e| e.epoch == self.epochs[comp])
            {
                if fresh.binary_search(&comp).is_err() {
                    self.stats.memo_hits += 1;
                }
                entry.alloc.as_ref()?;
                continue;
            }
            let feasible = if self.use_dynamic(comp) {
                self.refresh_partition(comp);
                if self.dyn_group_count[comp] > 1 {
                    self.solve_groups(comp, indices)
                } else {
                    self.solve_whole(comp, indices)
                }
            } else {
                self.solve_whole(comp, indices)
            };
            if !feasible {
                return None;
            }
        }
        Some(())
    }

    /// Records a warm-capable solve's outcome in the λ stores: the
    /// component's dense store, the session-spanning dense store, and
    /// the exact-tuple memo under the key currently staged in
    /// `tuple_key` (the caller stages it iff warm starts are enabled,
    /// which is also the only case where `solve.dual` is `Some`).
    fn absorb_lambda(&mut self, comp: usize, solve: &ComponentSolve) {
        if solve.warm_started {
            self.stats.warm_started += 1;
        }
        let Some((keys, lambda)) = &solve.dual else {
            return;
        };
        self.duals[comp].absorb(keys, lambda);
        for (&key, &l) in keys.iter().zip(lambda.iter()) {
            self.lambda_dense[key as usize] = l;
        }
        self.lambda_dense_valid = true;
        self.lambda_exact
            .insert(self.tuple_key.as_slice().into(), lambda.as_slice().into());
    }

    /// Solves static component `comp` as one sub-instance and memoizes
    /// the result at level 1. Returns feasibility.
    fn solve_whole(&mut self, comp: usize, indices: &[usize]) -> bool {
        self.stats.components_solved += 1;
        self.stats.pairs_resolved_last_move += self.comp_pairs[comp].len() as u64;
        let exact = if self.warm_opts.is_some() {
            stage_tuple_key(
                &self.pairs,
                &self.comp_pairs[comp],
                indices,
                &mut self.tuple_key,
            );
            self.lambda_exact
                .get(self.tuple_key.as_slice())
                .map(|l| &l[..])
        } else {
            None
        };
        let warm = self.warm_opts.as_ref().map(|o| (o, &self.duals[comp]));
        let solve = solve_component(
            &mut self.scratch,
            &self.ctx,
            self.budget,
            &self.method,
            &self.routes,
            &self.comp_pairs[comp],
            indices,
            warm,
            exact,
        );
        self.absorb_lambda(comp, &solve);
        let feasible = solve.alloc.is_some();
        let key = self.scratch.joint_key[self.comp_key_off[comp]..self.comp_key_off[comp + 1]]
            .to_vec()
            .into_boxed_slice();
        self.memos[comp].insert(
            key,
            MemoEntry {
                epoch: self.epochs[comp],
                alloc: solve.alloc,
            },
        );
        feasible
    }

    /// Solves the unseen dynamic groups of component `comp` (level-2
    /// memo), then gathers the group allocations into the component's
    /// level-1 entry. Returns feasibility.
    fn solve_groups(&mut self, comp: usize, indices: &[usize]) -> bool {
        let off = self.comp_key_off[comp];
        let end = self.comp_key_off[comp + 1];
        let mut feasible = true;
        for g in 0..self.dyn_group_count[comp] {
            self.group_key.clear();
            self.group_members.clear();
            for pos in 0..(end - off) {
                if self.dyn_group_of[off + pos] == g {
                    self.group_key.push(pos as u32);
                    self.group_key.push(self.scratch.joint_key[off + pos]);
                    self.group_members.push(self.comp_pairs[comp][pos]);
                }
            }
            if let Some(entry) = self.dyn_memos[comp]
                .get(self.group_key.as_slice())
                .filter(|e| e.epoch == self.epochs[comp])
            {
                if entry.alloc.is_none() {
                    feasible = false;
                    break;
                }
                continue;
            }
            self.stats.components_solved += 1;
            self.stats.pairs_resolved_last_move += self.group_members.len() as u64;
            let exact = if self.warm_opts.is_some() {
                stage_tuple_key(
                    &self.pairs,
                    &self.group_members,
                    indices,
                    &mut self.tuple_key,
                );
                self.lambda_exact
                    .get(self.tuple_key.as_slice())
                    .map(|l| &l[..])
            } else {
                None
            };
            let warm = self.warm_opts.as_ref().map(|o| (o, &self.duals[comp]));
            let solve = solve_component(
                &mut self.scratch,
                &self.ctx,
                self.budget,
                &self.method,
                &self.routes,
                &self.group_members,
                indices,
                warm,
                exact,
            );
            self.absorb_lambda(comp, &solve);
            let ok = solve.alloc.is_some();
            self.dyn_memos[comp].insert(
                self.group_key.as_slice().into(),
                MemoEntry {
                    epoch: self.epochs[comp],
                    alloc: solve.alloc,
                },
            );
            if !ok {
                feasible = false;
                break;
            }
        }
        if !feasible {
            let key: Box<[u32]> = self.scratch.joint_key[off..end].into();
            self.memos[comp].insert(
                key,
                MemoEntry {
                    epoch: self.epochs[comp],
                    alloc: None,
                },
            );
            return false;
        }
        self.gather_groups(comp);
        true
    }

    /// Assembles component `comp`'s level-1 allocation by scattering its
    /// dynamic groups' level-2 allocations back into component variable
    /// order. Every group must be memoized feasible.
    fn gather_groups(&mut self, comp: usize) {
        let off = self.comp_key_off[comp];
        let end = self.comp_key_off[comp + 1];
        let m = end - off;
        // Per-member variable offsets within the component.
        let Scratch {
            pos_off,
            gathered,
            spans,
            joint_key,
            ..
        } = &mut self.scratch;
        pos_off.clear();
        let mut total = 0usize;
        for pos in 0..m {
            pos_off.push(total);
            let pair = self.comp_pairs[comp][pos];
            total += self.routes[pair][joint_key[off + pos] as usize].hops;
        }
        gathered.clear();
        gathered.resize(total, 0);
        for g in 0..self.dyn_group_count[comp] {
            self.group_key.clear();
            spans.clear();
            for pos in 0..m {
                if self.dyn_group_of[off + pos] == g {
                    self.group_key.push(pos as u32);
                    self.group_key.push(joint_key[off + pos]);
                    let pair = self.comp_pairs[comp][pos];
                    let hops = self.routes[pair][joint_key[off + pos] as usize].hops;
                    spans.push((pos_off[pos], hops));
                }
            }
            let entry = self.dyn_memos[comp]
                .get(self.group_key.as_slice())
                .expect("group memoized by solve_groups");
            debug_assert_eq!(entry.epoch, self.epochs[comp]);
            let alloc = entry
                .alloc
                .as_deref()
                .expect("group feasible by solve_groups");
            scatter_segments(alloc, spans.iter().copied(), gathered);
        }
        let key: Box<[u32]> = joint_key[off..end].into();
        self.memos[comp].insert(
            key,
            MemoEntry {
                epoch: self.epochs[comp],
                alloc: Some(gathered.as_slice().into()),
            },
        );
    }

    /// Pre-solves all missing work items of `indices` — dynamic groups,
    /// or whole components where the partition does not refine — on the
    /// shared work-stealing pool ([`threadpool::current`]), and returns
    /// the component ids it fully memoized at level 1 (ascending) plus
    /// whether any item turned out infeasible. Bit-identical to the
    /// serial path at every pool width: each item's solve is independent
    /// and results are gathered and merged in item order — the same
    /// order the serial loop solves and absorbs them, so λ absorption
    /// sees identical state either way. Each worker thread keeps one
    /// recycled solver scratch across items *and across calls*
    /// (thread-local), so the steady state allocates nothing
    /// network-sized. An infeasibility observed by any task stops the
    /// remaining solves early (ROADMAP item g): skipped items are simply
    /// not memoized, matching the serial path's short-circuit.
    #[cfg(feature = "parallel")]
    fn solve_missing_parallel(&mut self, indices: &[usize]) -> (Vec<usize>, bool) {
        use std::cell::RefCell;
        use std::sync::atomic::{AtomicBool, Ordering};

        /// Sentinel group id for "solve the whole component".
        const WHOLE: u32 = u32::MAX;

        std::thread_local! {
            /// Per-worker (scratch, members) recycled across pool tasks.
            static WORKER_SCRATCH: RefCell<(Option<Scratch>, Vec<usize>)> =
                const { RefCell::new((None, Vec::new())) };
        }

        let mut items: Vec<(usize, u32)> = Vec::new();
        for comp in 0..self.comp_pairs.len() {
            let off = self.comp_key_off[comp];
            let end = self.comp_key_off[comp + 1];
            if self.memos[comp]
                .get(&self.scratch.joint_key[off..end])
                .is_some_and(|e| e.epoch == self.epochs[comp])
            {
                continue;
            }
            if self.use_dynamic(comp) {
                self.refresh_partition(comp);
                if self.dyn_group_count[comp] > 1 {
                    for g in 0..self.dyn_group_count[comp] {
                        self.group_key.clear();
                        for pos in 0..(end - off) {
                            if self.dyn_group_of[off + pos] == g {
                                self.group_key.push(pos as u32);
                                self.group_key.push(self.scratch.joint_key[off + pos]);
                            }
                        }
                        if self.dyn_memos[comp]
                            .get(self.group_key.as_slice())
                            .is_none_or(|e| e.epoch != self.epochs[comp])
                        {
                            items.push((comp, g));
                        }
                    }
                    continue;
                }
            }
            items.push((comp, WHOLE));
        }
        if items.len() < 2 {
            return (Vec::new(), false);
        }
        let ctx = self.ctx;
        let budget = self.budget;
        let method = self.method;
        let warm_opts = self.warm_opts;
        let routes = &self.routes;
        let pairs = &self.pairs;
        let comp_pairs = &self.comp_pairs;
        let comp_key_off = &self.comp_key_off;
        let dyn_group_of = &self.dyn_group_of;
        let duals = &self.duals;
        let lambda_exact = &self.lambda_exact;
        let infeasible = AtomicBool::new(false);
        type ItemSolve = (usize, u32, usize, Vec<u32>, ComponentSolve);
        // One pool task per item, gathered in item order by
        // `map_indexed`; a task that observes the infeasibility flag
        // returns `None` (its item stays unmemoized).
        let results: Vec<Option<ItemSolve>> =
            threadpool::current().map_indexed(items.len(), |item_idx| {
                if infeasible.load(Ordering::Relaxed) {
                    return None;
                }
                let (comp, g) = items[item_idx];
                WORKER_SCRATCH.with(|cell| {
                    let mut state = cell.borrow_mut();
                    let (slot, members) = &mut *state;
                    let mut scratch = Scratch::recycled(
                        slot.take(),
                        ctx.network.node_count(),
                        ctx.network.edge_count(),
                        0,
                    );
                    let off = comp_key_off[comp];
                    members.clear();
                    for (pos, &pair) in comp_pairs[comp].iter().enumerate() {
                        if g == WHOLE || dyn_group_of[off + pos] == g {
                            members.push(pair);
                        }
                    }
                    let mut tuple_key = Vec::new();
                    let exact = if warm_opts.is_some() {
                        stage_tuple_key(pairs, members, indices, &mut tuple_key);
                        lambda_exact.get(tuple_key.as_slice()).map(|l| &l[..])
                    } else {
                        None
                    };
                    let warm = warm_opts.as_ref().map(|o| (o, &duals[comp]));
                    let solve = solve_component(
                        &mut scratch,
                        &ctx,
                        budget,
                        &method,
                        routes,
                        members,
                        indices,
                        warm,
                        exact,
                    );
                    if solve.alloc.is_none() {
                        infeasible.store(true, Ordering::Relaxed);
                    }
                    let n_pairs = members.len();
                    *slot = Some(scratch);
                    Some((comp, g, n_pairs, tuple_key, solve))
                })
            });
        let any_infeasible = infeasible.into_inner();
        let mut fresh = Vec::new();
        for (comp, g, n_pairs, tuple_key, solve) in results.into_iter().flatten() {
            self.stats.components_solved += 1;
            self.stats.pairs_resolved_last_move += n_pairs as u64;
            self.tuple_key = tuple_key;
            self.absorb_lambda(comp, &solve);
            let off = self.comp_key_off[comp];
            let end = self.comp_key_off[comp + 1];
            let entry = MemoEntry {
                epoch: self.epochs[comp],
                alloc: solve.alloc,
            };
            if g == WHOLE {
                let key: Box<[u32]> = self.scratch.joint_key[off..end].into();
                self.memos[comp].insert(key, entry);
                fresh.push(comp);
            } else {
                self.group_key.clear();
                for pos in 0..(end - off) {
                    if self.dyn_group_of[off + pos] == g {
                        self.group_key.push(pos as u32);
                        self.group_key.push(self.scratch.joint_key[off + pos]);
                    }
                }
                self.dyn_memos[comp].insert(self.group_key.as_slice().into(), entry);
                // The serial loop's level-1 miss path gathers the groups
                // (all level-2 hits by then) into the level-1 entry.
            }
        }
        fresh.sort_unstable();
        (fresh, any_infeasible)
    }

    /// Gathers the memoized component allocations in joint variable order
    /// and accumulates the objective exactly as
    /// [`AllocationInstance::objective_int`] would on the joint instance
    /// (same terms, same order), plus the profile's swap term. Optionally
    /// copies out per-route allocations.
    ///
    /// All referenced components must already be memoized feasible at
    /// level 1, and `Scratch::joint_key` must hold the profile's
    /// resolved keys (both established by `ensure_components`).
    fn accumulate_objective(
        &mut self,
        indices: &[usize],
        mut allocations: Option<&mut Vec<Vec<u32>>>,
    ) -> f64 {
        self.scratch.cursors.iter_mut().for_each(|c| *c = 0);
        // One memo lookup per component over the pre-resolved keys,
        // hoisted out of the pair loop — rebuilding the key per *pair*
        // would make the memo-hit path quadratic in component size.
        let flats: Vec<&[u32]> = (0..self.comp_pairs.len())
            .map(|comp| {
                let key =
                    &self.scratch.joint_key[self.comp_key_off[comp]..self.comp_key_off[comp + 1]];
                let entry = self.memos[comp]
                    .get(key)
                    .expect("component memoized by ensure_components");
                debug_assert_eq!(entry.epoch, self.epochs[comp]);
                entry
                    .alloc
                    .as_deref()
                    .expect("component feasible by ensure_components")
            })
            .collect();
        let mut objective = 0.0;
        let mut total_swaps = 0u64;
        for (i, &route_idx) in indices.iter().enumerate() {
            let comp = self.comp_of_pair[i];
            let flat = flats[comp];
            let route = &self.routes[i][route_idx];
            let seg = &flat[self.scratch.cursors[comp]..self.scratch.cursors[comp] + route.hops];
            self.scratch.cursors[comp] += route.hops;
            for (ev, &n) in route.edges.iter().zip(seg) {
                objective +=
                    self.ctx.v_weight * ln_success(ev.p, n as f64) - self.ctx.unit_price * n as f64;
            }
            total_swaps += route.swaps;
            if let Some(out) = allocations.as_deref_mut() {
                out.push(seg.to_vec());
            }
        }
        if self.lossy_swap {
            objective += self.ctx.v_weight * (total_swaps as f64 * self.ln_q);
        }
        objective
    }
}

/// For each group `0..n_groups` of `groups`, counts the distinct values
/// `labels` assigns to that group's positions, and returns the summed
/// excess over one. With `groups` = the new partition and `labels` = the
/// old labels this counts merges; swapped, it counts splits.
fn distinct_excess(groups: &[u32], labels: &[u32], n_groups: u32, seen: &mut Vec<u32>) -> u64 {
    debug_assert_eq!(groups.len(), labels.len());
    let mut excess = 0u64;
    for g in 0..n_groups {
        seen.clear();
        for (&pg, &label) in groups.iter().zip(labels) {
            if pg == g && !seen.contains(&label) {
                seen.push(label);
            }
        }
        excess += (seen.len() as u64).saturating_sub(1);
    }
    excess
}

/// Resolves one candidate [`Path`] into per-edge data.
fn resolve_route(ctx: &PerSlotContext<'_>, route: &Path) -> RouteData {
    let edges: Vec<EdgeVar> = route
        .edges()
        .iter()
        .map(|&edge| {
            let (u, v) = ctx.network.graph().endpoints(edge);
            EdgeVar {
                edge,
                u,
                v,
                p: ctx.network.link(edge).channel_success(),
            }
        })
        .collect();
    RouteData {
        hops: edges.len(),
        swaps: SwapModel::swaps_for_hops(route.hops()) as u64,
        edges,
    }
}

/// Builds the [`AllocationInstance`] for the given routes via the shared
/// [`assemble_instance`] layout routine — the same code path
/// [`PerSlotContext::build_instance`] uses, so a component's (or dynamic
/// group's) sub-instance is structurally the joint instance restricted
/// to it. With `want_keys`, the constraint keys land in
/// `Scratch::con_keys`.
fn build_instance_for<'r>(
    scratch: &mut Scratch,
    ctx: &PerSlotContext<'_>,
    budget: Option<u32>,
    routes: impl Iterator<Item = &'r RouteData>,
    want_keys: bool,
) -> Result<AllocationInstance, qdn_solve::SolveError> {
    let edges = routes.flat_map(|route| route.edges.iter().map(|ev| (ev.edge, ev.u, ev.v, ev.p)));
    let keys_out = want_keys.then_some(&mut scratch.con_keys);
    assemble_instance(
        &mut scratch.asm,
        ctx.snapshot,
        edges,
        budget,
        ctx.v_weight,
        ctx.unit_price,
        keys_out,
    )
}

/// Stages the exact-tuple λ key of a sub-instance into `out`: per
/// member (ascending), its pair endpoints and selected route index —
/// the identity under which [`SelectorSession`] remembers final dual
/// prices across slots.
fn stage_tuple_key(pairs: &[SdPair], members: &[usize], indices: &[usize], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(members.len() * 3);
    for &i in members {
        out.push(pairs[i].source().index() as u32);
        out.push(pairs[i].destination().index() as u32);
        out.push(indices[i] as u32);
    }
}

/// Builds and solves one sub-instance (a whole static component or a
/// single dynamic group, `members` = its pair ids ascending), recycling
/// the instance storage afterwards. `alloc == None` means the route
/// combination is infeasible. With `warm`, a `RelaxAndRound` solve is
/// seeded from the component's stored λ (when valid) and the final
/// prices are returned for the caller to absorb into the store; an
/// `exact` seed — this very sub-instance's most recent final λ, from
/// the session's tuple memo — takes precedence over the gathered
/// component store when its length matches the instance.
#[allow(clippy::too_many_arguments)]
fn solve_component(
    scratch: &mut Scratch,
    ctx: &PerSlotContext<'_>,
    budget: Option<u32>,
    method: &AllocationMethod,
    routes: &[Vec<RouteData>],
    members: &[usize],
    indices: &[usize],
    warm: Option<(&RelaxedOptions, &ComponentDual)>,
    exact: Option<&[f64]>,
) -> ComponentSolve {
    let route_iter = members.iter().map(|&i| &routes[i][indices[i]]);
    if let Some((options, dual)) = warm {
        let Ok(instance) = build_instance_for(scratch, ctx, budget, route_iter, true) else {
            return ComponentSolve {
                alloc: None,
                dual: None,
                warm_started: false,
            };
        };
        // The same member set and routes assemble the same constraint
        // order, so a stored exact seed lines up position-for-position;
        // the length check only guards against a topology change racing
        // a stale store (which `SelectorSession::reset` rules out).
        let exact = exact.filter(|l| l.len() == scratch.con_keys.len());
        if exact.is_none() && dual.valid {
            let Scratch { warm, con_keys, .. } = &mut *scratch;
            warm.clear();
            warm.extend(con_keys.iter().map(|&k| dual.lambda[k as usize]));
        }
        let warm_lambda = match exact {
            Some(l) => Some(l),
            None => dual.valid.then_some(scratch.warm.as_slice()),
        };
        // Count only seeds the solver actually engages: an all-zero
        // gathered λ makes `solve_relaxed_warm` run the plain cold path.
        let warm_started = warm_lambda.is_some_and(|w| w.iter().any(|&l| l > 0.0));
        let solution =
            solve_relaxed_warm(&instance, options, warm_lambda).expect("validated instance solves");
        let alloc = round_down_and_fill(&instance, &solution.x)
            .ok()
            .map(Vec::into_boxed_slice);
        let keys = scratch.con_keys.clone();
        scratch.asm.recycle(instance);
        ComponentSolve {
            alloc,
            dual: Some((keys, solution.lambda)),
            warm_started,
        }
    } else {
        let alloc = match build_instance_for(scratch, ctx, budget, route_iter, false) {
            Ok(instance) => {
                let flat = method.allocate(&instance);
                scratch.asm.recycle(instance);
                flat.map(Vec::into_boxed_slice)
            }
            Err(_) => None,
        };
        ComponentSolve {
            alloc,
            dual: None,
            warm_started: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route_selection::Candidates;
    use qdn_net::network::QdnNetworkBuilder;
    use qdn_net::routes::{CandidateRoutes, RouteLimits};
    use qdn_net::{CapacitySnapshot, QdnNetwork};
    use qdn_physics::link::LinkModel;

    /// Two disjoint diamonds plus one extra pair inside the first.
    fn two_diamonds() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..8).map(|_| b.add_node(10)).collect();
        let good = LinkModel::new(0.85).unwrap();
        let bad = LinkModel::new(0.25).unwrap();
        b.add_edge(n[0], n[1], 5, good).unwrap();
        b.add_edge(n[1], n[3], 5, good).unwrap();
        b.add_edge(n[0], n[2], 5, bad).unwrap();
        b.add_edge(n[2], n[3], 5, bad).unwrap();
        b.add_edge(n[4], n[5], 5, good).unwrap();
        b.add_edge(n[5], n[7], 5, good).unwrap();
        b.add_edge(n[4], n[6], 5, bad).unwrap();
        b.add_edge(n[6], n[7], 5, bad).unwrap();
        b.build()
    }

    /// Two single-route corridors (A: 0-1-3, B: 4-5-7) bridged by a pair
    /// C (8↔9) whose two routes pass through A's node 1 or B's node 5 —
    /// so C's *choice* decides which corridor it couples to, while the
    /// candidate union chains all three pairs into one static component.
    fn bridged_corridors() -> QdnNetwork {
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..10).map(|_| b.add_node(10)).collect();
        let l = LinkModel::new(0.8).unwrap();
        b.add_edge(n[0], n[1], 5, l).unwrap();
        b.add_edge(n[1], n[3], 5, l).unwrap();
        b.add_edge(n[4], n[5], 5, l).unwrap();
        b.add_edge(n[5], n[7], 5, l).unwrap();
        b.add_edge(n[8], n[1], 5, l).unwrap();
        b.add_edge(n[1], n[9], 5, l).unwrap();
        b.add_edge(n[8], n[5], 5, l).unwrap();
        b.add_edge(n[5], n[9], 5, l).unwrap();
        b.build()
    }

    fn owned_candidates(net: &QdnNetwork, pairs: &[SdPair]) -> Vec<(SdPair, Vec<Path>)> {
        let mut cr = CandidateRoutes::new(RouteLimits::paper_default());
        pairs
            .iter()
            .map(|&p| (p, cr.routes(net, p).to_vec()))
            .collect()
    }

    fn to_cands(owned: &[(SdPair, Vec<Path>)]) -> Vec<Candidates<'_>> {
        owned
            .iter()
            .map(|(pair, routes)| Candidates {
                pair: *pair,
                routes,
            })
            .collect()
    }

    fn profile_of<'a>(cands: &[Candidates<'a>], indices: &[usize]) -> Vec<(SdPair, &'a Path)> {
        cands
            .iter()
            .zip(indices)
            .map(|(c, &i)| (c.pair, &c.routes[i]))
            .collect()
    }

    #[test]
    fn disjoint_pairs_form_two_components() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let eval = ProfileEvaluator::new(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            EvalOptions::default(),
        );
        assert_eq!(eval.component_count(), 2);
        assert!(eval.pair_is_isolated(0));
        assert!(eval.pair_is_isolated(1));
        assert!(!eval.warm_start_enabled());
        assert_eq!(eval.options().partition, PartitionMode::Dynamic);
    }

    #[test]
    fn overlapping_pairs_share_a_component() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(1), NodeId(2)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let eval = ProfileEvaluator::new(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            EvalOptions::default(),
        );
        assert_eq!(eval.component_count(), 2);
        assert!(!eval.pair_is_isolated(0));
        assert!(!eval.pair_is_isolated(1));
        assert!(eval.pair_is_isolated(2));
    }

    #[test]
    fn budget_couples_all_pairs() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::myopic(&net, &snap, 20);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let mut eval = ProfileEvaluator::new(
            &ctx,
            &cands,
            &AllocationMethod::Greedy,
            EvalOptions::default(),
        );
        assert_eq!(eval.component_count(), 1);
        // A budget couples everything unconditionally, so the dynamic
        // mode skips refinement outright: even spatially disjoint
        // routes stay one group and the partition never churns.
        eval.evaluate_objective(&[0, 0]);
        assert_eq!(eval.stats().dynamic_components, 1);
        assert_eq!(eval.stats().component_splits, 0);
    }

    #[test]
    fn matches_full_rebuild_everywhere() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        for (v, price) in [(800.0, 1.0), (100.0, 0.0), (2500.0, 25.0)] {
            let ctx = PerSlotContext::oscar(&net, &snap, v, price);
            let pairs = [
                SdPair::new(NodeId(0), NodeId(3)).unwrap(),
                SdPair::new(NodeId(1), NodeId(2)).unwrap(),
                SdPair::new(NodeId(4), NodeId(7)).unwrap(),
            ];
            let owned = owned_candidates(&net, &pairs);
            let cands = to_cands(&owned);
            for method in [
                AllocationMethod::RelaxAndRound(RelaxedOptions {
                    method: qdn_solve::DualMethod::Accelerated,
                    ..RelaxedOptions::default()
                }),
                AllocationMethod::RelaxAndRound(RelaxedOptions {
                    method: qdn_solve::DualMethod::Subgradient,
                    ..RelaxedOptions::default()
                }),
                AllocationMethod::Greedy,
                AllocationMethod::Minimal,
            ] {
                for partition in [PartitionMode::Static, PartitionMode::Dynamic] {
                    let options = EvalOptions {
                        partition,
                        warm_profile_seed: false,
                    };
                    let mut eval = ProfileEvaluator::new(&ctx, &cands, &method, options);
                    // Every profile in the (small) product space.
                    let radix: Vec<usize> = cands.iter().map(|c| c.routes.len()).collect();
                    let mut indices = vec![0usize; cands.len()];
                    'product_space: loop {
                        let profile = profile_of(&cands, &indices);
                        let reference = ctx.evaluate(&profile, &method);
                        let incremental = eval.evaluate(&indices);
                        match (&reference, &incremental) {
                            (None, None) => {}
                            (Some(r), Some(x)) => {
                                assert_eq!(r.objective.to_bits(), x.objective.to_bits());
                                assert_eq!(r.allocations, x.allocations);
                            }
                            _ => panic!("feasibility mismatch at {indices:?} ({partition:?})"),
                        }
                        assert_eq!(
                            ctx.evaluate_objective(&profile, &method).map(f64::to_bits),
                            eval.evaluate_objective(&indices).map(f64::to_bits)
                        );
                        let mut pos = 0;
                        loop {
                            if pos == indices.len() {
                                // Odometer wrapped: this combination is
                                // exhausted; move on to the next one.
                                break 'product_space;
                            }
                            indices[pos] += 1;
                            if indices[pos] < radix[pos] {
                                break;
                            }
                            indices[pos] = 0;
                            pos += 1;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn memo_hits_accumulate_on_revisits() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let mut eval = ProfileEvaluator::new(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            EvalOptions::default(),
        );
        let a = eval.evaluate_objective(&[0, 0]).unwrap();
        let solved_once = eval.stats().components_solved;
        let b = eval.evaluate_objective(&[0, 0]).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(eval.stats().components_solved, solved_once);
        assert!(eval.stats().memo_hits >= 2);
        assert_eq!(eval.stats().pairs_resolved_last_move, 0);
        // Moving only pair 1 must not re-solve pair 0's component.
        eval.evaluate_objective_move(&[0, 1], 1);
        assert_eq!(eval.stats().components_solved, solved_once + 1);
        assert_eq!(eval.stats().pairs_resolved_last_move, 1);
    }

    #[test]
    fn dynamic_partition_stats_track_moves() {
        // Candidate union chains A–C–B into one static component, but a
        // concrete profile couples C to exactly one corridor: moving C
        // splits it out of one group and merges it into the other.
        let net = bridged_corridors();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(), // A, single route 0-1-3
            SdPair::new(NodeId(4), NodeId(7)).unwrap(), // B, single route 4-5-7
            SdPair::new(NodeId(8), NodeId(9)).unwrap(), // C, routes via 1 or 5
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        assert_eq!(cands[0].routes.len(), 1);
        assert_eq!(cands[1].routes.len(), 1);
        assert_eq!(cands[2].routes.len(), 2);
        let via_a = cands[2]
            .routes
            .iter()
            .position(|r| r.contains_node(NodeId(1)))
            .expect("one C route crosses corridor A");
        let via_b = 1 - via_a;

        let mut eval = ProfileEvaluator::new(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            EvalOptions::default(),
        );
        assert_eq!(eval.component_count(), 1, "candidate union chains all");
        assert_eq!(eval.stats().dynamic_components, 1, "unrefined gauge");

        // First evaluation: C rides corridor A → groups {A,C} and {B}.
        eval.evaluate_objective(&[0, 0, via_a]).unwrap();
        let s = eval.stats();
        assert_eq!(s.dynamic_components, 2);
        assert_eq!((s.component_merges, s.component_splits), (0, 0));
        assert_eq!(s.components_solved, 2);
        assert_eq!(s.pairs_resolved_last_move, 3);

        // Re-evaluation: level-1 hit; gauges reset, counters untouched.
        eval.evaluate_objective(&[0, 0, via_a]).unwrap();
        let s = eval.stats();
        assert_eq!(s.pairs_resolved_last_move, 0);
        assert_eq!(s.components_solved, 2);
        assert_eq!(s.memo_hits, 1);

        // Move C to corridor B: {A,C},{B} → {A},{B,C} — one split (C
        // leaves A's group), one merge (C joins B's), and every group
        // key is new, so all three pairs re-solve.
        eval.evaluate_objective_move(&[0, 0, via_b], 2).unwrap();
        let s = eval.stats();
        assert_eq!(s.dynamic_components, 2);
        assert_eq!((s.component_merges, s.component_splits), (1, 1));
        assert_eq!(s.components_solved, 4);
        assert_eq!(s.pairs_resolved_last_move, 3);

        // Move back: the tuple was seen → level-1 hit, no partition
        // churn, nothing re-solved.
        eval.evaluate_objective_move(&[0, 0, via_a], 2).unwrap();
        let s = eval.stats();
        assert_eq!((s.component_merges, s.component_splits), (1, 1));
        assert_eq!(s.components_solved, 4);
        assert_eq!(s.pairs_resolved_last_move, 0);

        // The dynamic path is bit-identical to the static engine on the
        // same walk.
        let mut static_eval = ProfileEvaluator::new(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            EvalOptions::static_partition(),
        );
        for indices in [[0, 0, via_a], [0, 0, via_b]] {
            assert_eq!(
                static_eval.evaluate_objective(&indices).map(f64::to_bits),
                eval.evaluate_objective(&indices).map(f64::to_bits),
            );
        }
        // The static engine never refines: its gauge stays at the
        // component count and its churn counters at zero.
        let s = static_eval.stats();
        assert_eq!(s.dynamic_components, 1);
        assert_eq!((s.component_merges, s.component_splits), (0, 0));
    }

    #[test]
    fn pair_objective_matches_single_pair_profile() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let method = AllocationMethod::default();
        let mut eval = ProfileEvaluator::new(&ctx, &cands, &method, EvalOptions::default());
        for (i, cand) in cands.iter().enumerate() {
            for r in 0..cand.routes.len() {
                let single = [(cand.pair, &cand.routes[r])];
                let reference = ctx.evaluate(&single, &method).map(|e| e.objective);
                let got = eval.evaluate_pair_objective(i, r);
                assert_eq!(reference.map(f64::to_bits), got.map(f64::to_bits));
                // Second call is served from the memo.
                assert_eq!(got, eval.evaluate_pair_objective(i, r));
            }
        }
    }

    #[test]
    fn infeasible_profile_is_none_and_cached() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::clamped(&net, vec![10; 8], vec![0; 8]);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [SdPair::new(NodeId(0), NodeId(3)).unwrap()];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let mut eval = ProfileEvaluator::new(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            EvalOptions::default(),
        );
        assert!(eval.evaluate_objective(&[0]).is_none());
        let solved = eval.stats().components_solved;
        assert!(eval.evaluate(&[0]).is_none());
        assert_eq!(eval.stats().components_solved, solved);
    }

    #[test]
    fn infeasible_multi_pair_group_is_cached() {
        // Zero channel capacity makes every group infeasible; the
        // dynamic path must cache the verdict at level 1 so the retry
        // does not re-solve.
        let net = bridged_corridors();
        let snap = CapacitySnapshot::clamped(&net, vec![10; 10], vec![0; 8]);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
            SdPair::new(NodeId(8), NodeId(9)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let mut eval = ProfileEvaluator::new(
            &ctx,
            &cands,
            &AllocationMethod::default(),
            EvalOptions::default(),
        );
        assert!(eval.evaluate_objective(&[0, 0, 0]).is_none());
        let solved = eval.stats().components_solved;
        assert!(eval.evaluate_objective(&[0, 0, 0]).is_none());
        assert_eq!(eval.stats().components_solved, solved);
    }

    #[test]
    fn empty_profile_is_zero() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let mut eval = ProfileEvaluator::new(
            &ctx,
            &[],
            &AllocationMethod::default(),
            EvalOptions::default(),
        );
        assert_eq!(eval.evaluate_objective(&[]), Some(0.0));
        let ev = eval.evaluate(&[]).unwrap();
        assert!(ev.allocations.is_empty());
        assert_eq!(ev.objective, 0.0);
    }

    #[test]
    fn region_scoped_flush_spares_untouched_regions() {
        // Two disjoint diamonds → two static regions. A capacity change
        // inside the second diamond must flush only its region: the
        // first diamond's memos survive the slot boundary and answer
        // without re-solving.
        let net = two_diamonds();
        let full = CapacitySnapshot::full(&net);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let method = AllocationMethod::default();
        let options = EvalOptions::default();

        let mut session = SelectorSession::new();
        let ctx = PerSlotContext::oscar(&net, &full, 800.0, 1.0);
        let mut eval = ProfileEvaluator::new_in(&mut session, &ctx, &cands, &method, options);
        let before = eval.evaluate_objective(&[0, 0]).unwrap();
        assert_eq!(eval.stats().components_solved, 2);
        eval.retire(&mut session);
        assert_eq!(session.region_count(), 2);

        // Slot 2: edge 4 (the 4–5 link) loses a channel — only the
        // second diamond's candidates touch it.
        let mut channels = vec![5u32; 8];
        channels[4] = 4;
        let cut = CapacitySnapshot::clamped(&net, vec![10; 8], channels);
        let ctx2 = PerSlotContext::oscar(&net, &cut, 800.0, 1.0);
        let mut eval = ProfileEvaluator::new_in(&mut session, &ctx2, &cands, &method, options);
        let report = session.last_invalidation();
        assert_eq!(report.regions, 2);
        assert_eq!(report.regions_flushed, 1, "{report:?}");
        assert_eq!(report.regions_fresh, 0, "{report:?}");
        assert!(report.memo_entries_retained >= 1, "{report:?}");
        assert!(report.memo_entries_flushed >= 1, "{report:?}");
        let after = eval.evaluate_objective(&[0, 0]).unwrap();
        let s = eval.stats();
        assert_eq!(s.memo_hits, 1, "diamond 1 answered from retained memo");
        assert_eq!(s.components_solved, 1, "only diamond 2 re-solved");
        // Retained-memo answers are bit-identical to a fresh evaluator
        // under the same slot context.
        let fresh = ProfileEvaluator::new(&ctx2, &cands, &method, options)
            .evaluate_objective(&[0, 0])
            .unwrap();
        assert_eq!(after.to_bits(), fresh.to_bits());
        let _ = before;
        eval.retire(&mut session);

        // Slot 3: identical context — everything retained, all hits.
        let mut eval = ProfileEvaluator::new_in(&mut session, &ctx2, &cands, &method, options);
        assert!(session.last_invalidation().fully_retained());
        eval.evaluate_objective(&[0, 0]).unwrap();
        assert_eq!(eval.stats().components_solved, 0);
        assert_eq!(eval.stats().memo_hits, 2);
        eval.retire(&mut session);
    }

    #[test]
    fn multi_region_cut_flushes_only_touched_regions() {
        // A correlated outage hits several regions in one slot: with
        // four disjoint diamonds (four static regions), cutting
        // capacity in two of them must flush exactly those two — the
        // session must not degrade to a global flush just because more
        // than one region changed (PR 9).
        let mut b = QdnNetworkBuilder::new();
        let n: Vec<_> = (0..16).map(|_| b.add_node(10)).collect();
        let good = LinkModel::new(0.85).unwrap();
        let bad = LinkModel::new(0.25).unwrap();
        for d in 0..4 {
            let o = 4 * d;
            b.add_edge(n[o], n[o + 1], 5, good).unwrap();
            b.add_edge(n[o + 1], n[o + 3], 5, good).unwrap();
            b.add_edge(n[o], n[o + 2], 5, bad).unwrap();
            b.add_edge(n[o + 2], n[o + 3], 5, bad).unwrap();
        }
        let net = b.build();
        let pairs: Vec<SdPair> = (0..4)
            .map(|d| SdPair::new(NodeId(4 * d), NodeId(4 * d + 3)).unwrap())
            .collect();
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let method = AllocationMethod::default();
        let options = EvalOptions::default();

        let mut session = SelectorSession::new();
        let full = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &full, 800.0, 1.0);
        let mut eval = ProfileEvaluator::new_in(&mut session, &ctx, &cands, &method, options);
        eval.evaluate_objective(&[0, 0, 0, 0]).unwrap();
        assert_eq!(eval.stats().components_solved, 4);
        eval.retire(&mut session);
        assert_eq!(session.region_count(), 4);

        // Slot 2: diamonds 1 and 2 each lose a channel on their good
        // arm — two regions invalidated together, two untouched.
        let mut channels = vec![5u32; 16];
        channels[4] = 4; // diamond 1's 4–5 link
        channels[8] = 4; // diamond 2's 8–9 link
        let cut = CapacitySnapshot::clamped(&net, vec![10; 16], channels);
        let ctx2 = PerSlotContext::oscar(&net, &cut, 800.0, 1.0);
        let mut eval = ProfileEvaluator::new_in(&mut session, &ctx2, &cands, &method, options);
        let report = session.last_invalidation();
        assert_eq!(report.regions, 4);
        assert_eq!(report.regions_flushed, 2, "{report:?}");
        assert_eq!(report.regions_fresh, 0, "{report:?}");
        assert!(report.memo_entries_retained >= 2, "{report:?}");
        let after = eval.evaluate_objective(&[0, 0, 0, 0]).unwrap();
        let s = eval.stats();
        assert_eq!(s.memo_hits, 2, "diamonds 0 and 3 answer from memos");
        assert_eq!(s.components_solved, 2, "only the cut diamonds re-solve");
        // Retained memos are bit-identical to a fresh evaluator.
        let fresh = ProfileEvaluator::new(&ctx2, &cands, &method, options)
            .evaluate_objective(&[0, 0, 0, 0])
            .unwrap();
        assert_eq!(after.to_bits(), fresh.to_bits());
        eval.retire(&mut session);
    }

    #[test]
    fn global_invalidation_ablation_flushes_everything() {
        let net = two_diamonds();
        let full = CapacitySnapshot::full(&net);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(4), NodeId(7)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        let method = AllocationMethod::default();
        let options = EvalOptions::default();

        let mut session = SelectorSession::new();
        session.set_global_invalidation(true);
        assert!(session.global_invalidation());
        let ctx = PerSlotContext::oscar(&net, &full, 800.0, 1.0);
        let mut eval = ProfileEvaluator::new_in(&mut session, &ctx, &cands, &method, options);
        eval.evaluate_objective(&[0, 0]).unwrap();
        eval.retire(&mut session);

        let mut channels = vec![5u32; 8];
        channels[4] = 4;
        let cut = CapacitySnapshot::clamped(&net, vec![10; 8], channels);
        let ctx2 = PerSlotContext::oscar(&net, &cut, 800.0, 1.0);
        let mut eval = ProfileEvaluator::new_in(&mut session, &ctx2, &cands, &method, options);
        let report = session.last_invalidation();
        assert_eq!(report.regions_flushed, 2, "global mode flushes all");
        eval.evaluate_objective(&[0, 0]).unwrap();
        assert_eq!(eval.stats().components_solved, 2, "no region survives");
        assert_eq!(eval.stats().memo_hits, 0);
        eval.retire(&mut session);
    }

    #[test]
    fn stale_route_seed_relocates_or_forgets() {
        // Satellite regression: a carried-over profile must be matched
        // by route identity, not index, once churn repair reshuffles or
        // removes candidates.
        let net = two_diamonds();
        let pair = SdPair::new(NodeId(0), NodeId(3)).unwrap();
        let owned = owned_candidates(&net, &[pair]);
        let cands = to_cands(&owned);
        assert!(cands[0].routes.len() >= 2);

        let mut session = SelectorSession::new();
        session.record_selection(&cands, &[1]);
        assert_eq!(session.previous_route(pair), Some(1));

        // Unchanged candidates: the remembered index is used verbatim.
        assert_eq!(session.seed_indices(&cands), Some(vec![1]));

        // Reordered candidates: the remembered route is relocated by
        // its edge list, not trusted at its stored index.
        let mut reordered = owned[0].1.clone();
        reordered.reverse();
        let selected = owned[0].1[1].clone();
        let where_now = reordered.iter().position(|r| *r == selected).unwrap();
        let re_cands = [Candidates {
            pair,
            routes: &reordered,
        }];
        assert_eq!(session.seed_indices(&re_cands), Some(vec![where_now]));

        // The remembered route dropped entirely (churn removed it): the
        // pair is no longer remembered, and with zero remembered pairs
        // there is no warm seed at all — never an aliased index.
        let without: Vec<Path> = owned[0]
            .1
            .iter()
            .filter(|r| **r != selected)
            .cloned()
            .collect();
        let gone_cands = [Candidates {
            pair,
            routes: &without,
        }];
        assert_eq!(session.seed_indices(&gone_cands), None);
    }

    #[test]
    fn eval_options_serde_round_trip() {
        for options in [
            EvalOptions::default(),
            EvalOptions::static_partition(),
            EvalOptions::warm_seeded(),
        ] {
            let json = serde_json::to_string(&options).unwrap();
            assert!(json.contains("\"partition\""), "{json}");
            assert!(json.contains("\"warm_profile_seed\""), "{json}");
            let back: EvalOptions = serde_json::from_str(&json).unwrap();
            assert_eq!(options, back);
        }
        // Loud compat breaks: both fields are required.
        assert!(serde_json::from_str::<EvalOptions>("{}").is_err());
        assert!(serde_json::from_str::<EvalOptions>(r#"{"partition":"Dynamic"}"#).is_err());
    }

    #[test]
    fn warm_start_reuses_neighbor_lambda_and_agrees() {
        let net = two_diamonds();
        let snap = CapacitySnapshot::full(&net);
        let ctx = PerSlotContext::oscar(&net, &snap, 800.0, 1.0);
        let pairs = [
            SdPair::new(NodeId(0), NodeId(3)).unwrap(),
            SdPair::new(NodeId(1), NodeId(2)).unwrap(),
        ];
        let owned = owned_candidates(&net, &pairs);
        let cands = to_cands(&owned);
        for dual_method in [
            qdn_solve::DualMethod::Accelerated,
            qdn_solve::DualMethod::Subgradient,
        ] {
            let warm_method = AllocationMethod::RelaxAndRound(RelaxedOptions {
                warm_start: true,
                method: dual_method,
                ..RelaxedOptions::default()
            });
            let cold_method = AllocationMethod::RelaxAndRound(RelaxedOptions {
                method: dual_method,
                ..RelaxedOptions::default()
            });
            let mut warm_eval =
                ProfileEvaluator::new(&ctx, &cands, &warm_method, EvalOptions::default());
            let mut cold_eval =
                ProfileEvaluator::new(&ctx, &cands, &cold_method, EvalOptions::default());
            assert!(warm_eval.warm_start_enabled());

            // First evaluation is cold everywhere (no stored λ yet).
            let w0 = warm_eval.evaluate_objective(&[0, 0]).unwrap();
            let c0 = cold_eval.evaluate_objective(&[0, 0]).unwrap();
            assert_eq!(w0.to_bits(), c0.to_bits(), "no λ stored: must match cold");
            assert_eq!(warm_eval.stats().warm_started, 0);

            // Fresh tuples now warm-start from the neighboring profile's λ
            // and agree with the cold path within the solver tolerance.
            let radix: Vec<usize> = cands.iter().map(|c| c.routes.len()).collect();
            let mut checked = 0;
            for r0 in 0..radix[0] {
                for r1 in 0..radix[1] {
                    let warm = warm_eval.evaluate_objective(&[r0, r1]);
                    let cold = cold_eval.evaluate_objective(&[r0, r1]);
                    match (warm, cold) {
                        (None, None) => {}
                        (Some(w), Some(c)) => {
                            let tol = 0.05 * (1.0 + c.abs());
                            assert!(
                                (w - c).abs() <= tol,
                                "[{r0},{r1}]: warm {w} vs cold {c} (tol {tol})"
                            );
                            checked += 1;
                        }
                        (w, c) => panic!("feasibility diverged at [{r0},{r1}]: {w:?} vs {c:?}"),
                    }
                }
            }
            assert!(checked >= 2, "route space too small to exercise warm path");
            assert!(
                warm_eval.stats().warm_started > 0,
                "warm starts never engaged ({dual_method:?}): {:?}",
                warm_eval.stats()
            );
        }
    }
}
